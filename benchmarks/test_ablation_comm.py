"""Ablation: shared-nothing communication vs one shared queue pair.

§4.5: per-module QPs keep the fault handler's fetch from queueing behind
prefetch batches and cleaner write-backs. This ablation funnels every
module through a single QP and measures the head-of-line blocking on a
write-heavy sequential pass (maximal cleaner traffic + prefetch traffic).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 16 * MIB


def run(shared: bool):
    workload = SequentialWorkload(WORKING_SET)
    system = make_system("dilos-readahead",
                         local_bytes_for(WORKING_SET, 0.125),
                         shared_single_qp=shared)
    result = workload.run(system, "write")
    queues = system.kernel.comm.queue_count
    return result.gb_per_s, queues


def measure():
    return {"shared-nothing": run(False), "single shared QP": run(True)}


def test_ablation_shared_nothing_comm(benchmark):
    results = bench_once(benchmark, measure)
    emit(format_table(
        "Ablation: per-module QPs vs one shared QP (seq write, 12.5%)",
        ["design", "GB/s", "QPs"],
        [[name, gbps, queues] for name, (gbps, queues) in results.items()]))

    split_gbps, split_queues = results["shared-nothing"]
    shared_gbps, shared_queues = results["single shared QP"]
    assert split_queues > 1
    assert shared_queues == 1
    # Head-of-line blocking costs throughput under combined fault +
    # prefetch + write-back traffic.
    assert split_gbps > 1.10 * shared_gbps
