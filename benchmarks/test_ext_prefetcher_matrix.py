"""Extension: prefetcher x access-pattern capability matrix.

§4.3's argument is that general-purpose prefetchers each cover a slice of
the pattern space and guides cover the rest. This bench maps the slices:
the same cold region walked in six orders under every prefetcher, scored
in microseconds per access.

Expected structure (asserted):
* sequential — every prefetcher helps; readahead is at home;
* strided / reverse — readahead is blind (it only looks forward from the
  fault), trend and the stride table both lock on;
* interleaved twin streams — the majority vote breaks (alternating
  deltas), while readahead (window around each fault) and the per-stream
  stride table both cope;
* uniform random — nobody helps (the Figure 10(a) regime);
* zipf — the hot set caches; prefetching is irrelevant.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.patterns import PATTERNS, PatternWorkload

SYSTEMS = ("dilos-none", "dilos-readahead", "dilos-trend", "dilos-stride")
WORKING_SET = 6 * MIB


def measure():
    matrix = {}
    for pattern in PATTERNS:
        row = {}
        for kind in SYSTEMS:
            workload = PatternWorkload(pattern, WORKING_SET)
            system = make_system(
                kind, local_bytes_for(workload.footprint_bytes, 0.125))
            row[kind] = workload.run(system).us_per_access
        matrix[pattern] = row
    return matrix


def test_ext_prefetcher_pattern_matrix(benchmark):
    matrix = bench_once(benchmark, measure)
    emit(format_table(
        "Extension: us/access by pattern x prefetcher (12.5% local)",
        ["pattern"] + [k.split("-")[1] for k in SYSTEMS],
        [[pattern] + [matrix[pattern][k] for k in SYSTEMS]
         for pattern in PATTERNS]))

    def cell(pattern, kind):
        return matrix[pattern][kind]

    # Sequential: all prefetchers well ahead of none; readahead at home.
    for kind in SYSTEMS[1:]:
        assert cell("sequential", kind) < 0.6 * cell("sequential", "dilos-none")
    assert cell("sequential", "dilos-readahead") == \
        min(cell("sequential", k) for k in SYSTEMS)
    # Strided and reverse: readahead is blind, trend and stride lock on.
    for pattern in ("strided", "reverse"):
        assert cell(pattern, "dilos-readahead") > 0.9 * cell(pattern, "dilos-none")
        assert cell(pattern, "dilos-trend") < 0.6 * cell(pattern, "dilos-none")
        assert cell(pattern, "dilos-stride") < 0.6 * cell(pattern, "dilos-none")
    # Interleaved twin streams: the majority vote breaks; the others cope.
    assert cell("interleaved", "dilos-trend") > \
        2.0 * cell("interleaved", "dilos-stride")
    assert cell("interleaved", "dilos-readahead") < \
        0.6 * cell("interleaved", "dilos-none")
    # Random: nobody gains more than noise.
    base = cell("random", "dilos-none")
    for kind in SYSTEMS[1:]:
        assert abs(cell("random", kind) - base) < 0.15 * base
    # Zipf: the hot set caches; prefetching is irrelevant.
    base = cell("zipf", "dilos-none")
    for kind in SYSTEMS[1:]:
        assert abs(cell("zipf", kind) - base) < 0.15 * base
