"""Extension: stop-and-copy migration cost and post-migration warmup.

§5.2 lists live migration as future work (NIC state cannot move). The
memory-image half is implemented in ``repro.core.migration``; this bench
measures what a deployment would care about: downtime scales with the
image, the restored node is correct, and its warmup is pure demand paging
whose cost shrinks as the new node gets more local memory.
"""

import pytest

from conftest import bench_once, emit

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig
from repro.core.migration import checkpoint, restore
from repro.harness import format_table, make_system


def run_one(ws_mib):
    source = make_system("dilos-readahead", 1 * MIB)
    region = source.mmap(ws_mib * MIB, name="app")
    pages = region.size // PAGE_SIZE
    for i in range(pages):
        source.memory.write(region.base + i * PAGE_SIZE,
                            i.to_bytes(4, "little") * 8)
    image = checkpoint(source)
    warmups = {}
    for target_mib in (1, 2 * ws_mib):
        target = restore(image, DilosConfig(local_mem_bytes=target_mib * MIB,
                                            remote_mem_bytes=64 * MIB))
        t0 = target.clock.now
        for i in range(pages):
            got = target.memory.read(region.base + i * PAGE_SIZE, 32)
            assert got == i.to_bytes(4, "little") * 8, "migration corrupted data"
        warmups[target_mib] = target.clock.now - t0
    return image, warmups


def measure():
    out = {}
    for ws_mib in (2, 4, 8):
        image, warmups = run_one(ws_mib)
        out[ws_mib] = (image.image_bytes, image.downtime_us, warmups)
    return out


def test_ext_migration_cost(benchmark):
    results = bench_once(benchmark, measure)
    rows = []
    for ws_mib, (image_bytes, downtime, warmups) in results.items():
        rows.append([f"{ws_mib} MiB", image_bytes // 1024, downtime / 1000,
                     min(warmups.values()) / 1000, max(warmups.values()) / 1000])
    emit(format_table(
        "Extension: stop-and-copy migration",
        ["working set", "image (KiB)", "downtime (ms)",
         "warmup best (ms)", "warmup worst (ms)"], rows))

    downtimes = [results[ws][1] for ws in (2, 4, 8)]
    # Downtime scales roughly linearly with the image.
    assert downtimes[0] < downtimes[1] < downtimes[2]
    assert downtimes[2] / downtimes[0] == pytest.approx(4.0, rel=0.3)
    # A bigger target cache warms up at least as fast (fewer re-evictions).
    for _ws, (_bytes, _dt, warmups) in results.items():
        small, big = warmups[1], max(w for k, w in warmups.items() if k != 1)
        assert big <= small * 1.05

