"""Ablation: unified page table vs swap-cache indirection.

The paper's first design claim (§4.1/§6): mapping fetched and prefetched
pages directly into the page table removes the minor-fault storm that the
Linux swap cache imposes. This ablation re-introduces a swap cache inside
DiLOS (prefetched pages park unmapped; first access pays a minor fault to
map them) and measures what the unified page table buys.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 16 * MIB


def run(swap_cache_mode: bool):
    workload = SequentialWorkload(WORKING_SET)
    system = make_system("dilos-readahead",
                         local_bytes_for(WORKING_SET, 0.125),
                         swap_cache_mode=swap_cache_mode)
    result = workload.run(system, "read", verify=True)
    return result.gb_per_s, result.metrics


def measure():
    return {"unified": run(False), "swap-cache": run(True)}


def test_ablation_swap_cache(benchmark):
    results = bench_once(benchmark, measure)
    rows = []
    for name, (gbps, metrics) in results.items():
        rows.append([name, gbps, metrics["major_faults"],
                     metrics["minor_faults"]])
    emit(format_table(
        "Ablation: unified page table vs swap cache (seq read, 12.5%)",
        ["design", "GB/s", "major", "minor"], rows))

    unified_gbps, unified_metrics = results["unified"]
    cached_gbps, cached_metrics = results["swap-cache"]
    # The indirection converts prefetch hits into minor faults...
    assert cached_metrics["minor_faults"] > 2 * unified_metrics["minor_faults"]
    # ...and costs real throughput.
    assert unified_gbps > 1.15 * cached_gbps
