"""Figure 9: GAPBS PageRank and betweenness centrality on a Twitter-shaped
power-law graph.

Paper shape: with plenty of memory DiLOS loses PageRank to Fastswap (OSv's
synchronization primitives cost more than Linux's), but under the
memory-constrained 12.5% setting DiLOS wins both — up to 76% on BC, whose
pointer-heavy traversal is the more random access pattern.
"""

from conftest import bench_once, emit

from repro.harness import local_bytes_for, make_system, ratio_table
from repro.harness.experiment import Measurement, pick, sweep_ratios
from repro.apps.gapbs import (
    BetweennessWorkload,
    CsrGraph,
    PageRankWorkload,
    generate_power_law_graph,
)

SYSTEMS = ("fastswap", "dilos-readahead")
RATIOS = (0.125, 0.50, 1.0)

N, M = 8192, 120_000
OFFSETS, EDGES = generate_power_law_graph(n=N, target_m=M, seed=3)
FOOTPRINT = (len(OFFSETS) + len(EDGES)) * 8


def run_pagerank():
    tops = set()

    def runner(kind, ratio):
        system = make_system(kind, local_bytes_for(FOOTPRINT, ratio))
        graph = CsrGraph(system, OFFSETS, EDGES)
        result = PageRankWorkload(iterations=3).run(system, graph)
        tops.add(result.top_vertex)
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")

    ms = sweep_ratios("pagerank", runner, SYSTEMS, RATIOS)
    assert len(tops) == 1, "systems disagree on the top-ranked vertex"
    return ms


def run_bc():
    tops = set()
    sources = BetweennessWorkload(n_sources=2).pick_sources(
        CsrGraph(make_system("dilos-none", 64 * 1024 * 1024), OFFSETS, EDGES))

    def runner(kind, ratio):
        system = make_system(kind, local_bytes_for(FOOTPRINT, ratio))
        graph = CsrGraph(system, OFFSETS, EDGES)
        result = BetweennessWorkload(n_sources=2).run(system, graph,
                                                      sources=sources)
        tops.add(result.top_vertex)
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")

    ms = sweep_ratios("bc", runner, SYSTEMS, RATIOS)
    assert len(tops) == 1, "systems disagree on the top-centrality vertex"
    return ms


def test_fig9a_pagerank(benchmark):
    ms = bench_once(benchmark, run_pagerank)
    emit(ratio_table("Figure 9(a): GAPBS PageRank processing time", ms))
    # Full memory: Fastswap (Linux sync) is at least competitive —
    # DiLOS pays OSv's synchronization overhead (paper: DiLOS longer).
    assert pick(ms, "fastswap", 1.0).value < \
        1.10 * pick(ms, "dilos-readahead", 1.0).value
    # Memory-constrained: DiLOS ahead.
    assert pick(ms, "dilos-readahead", 0.125).value < \
        pick(ms, "fastswap", 0.125).value


def test_fig9b_betweenness(benchmark):
    ms = bench_once(benchmark, run_bc)
    emit(ratio_table("Figure 9(b): GAPBS betweenness centrality time", ms))
    # The random-access workload: DiLOS clearly ahead at 12.5%
    # (paper: up to 76% higher performance).
    tight_fast = pick(ms, "fastswap", 0.125).value
    tight_dilos = pick(ms, "dilos-readahead", 0.125).value
    assert tight_dilos < 0.85 * tight_fast
