"""Figure 6: fault-handler latency breakdown, DiLOS vs Fastswap.

Paper: DiLOS completely hides reclamation, nearly eliminates page
allocation, and cuts total handling latency by ~49% versus Fastswap
(sequential read, prefetch off for both).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 12 * MIB


def measure():
    out = {}
    for kind, prefetch_off in (("fastswap", None), ("dilos-none", None)):
        workload = SequentialWorkload(WORKING_SET)
        system = make_system(kind, local_bytes_for(WORKING_SET, 0.125))
        workload.run(system, "read")
        out[kind] = system.kernel.breakdown.averages()
    return out


COMPONENTS = ("exception", "software", "fetch", "reclaim")


def test_fig6_latency_breakdown(benchmark):
    breakdowns = bench_once(benchmark, measure)
    fastswap = breakdowns["fastswap"]
    dilos = breakdowns["dilos-none"]
    rows = [[name, fastswap.get(name, 0.0), dilos.get(name, 0.0)]
            for name in COMPONENTS]
    rows.append(["TOTAL", sum(fastswap.values()), sum(dilos.values())])
    emit(format_table(
        "Figure 6: fault-handler breakdown, sequential read (us/fault)",
        ["component", "Fastswap", "DiLOS"], rows))

    total_fastswap = sum(fastswap.values())
    total_dilos = sum(dilos.values())
    # DiLOS completely hides reclamation (paper: no reclaim bar at all).
    assert dilos["reclaim"] == 0.0
    assert fastswap["reclaim"] > 0.0
    # DiLOS' software path is a fraction of the swap subsystem's.
    assert dilos["software"] < 0.4 * fastswap["software"]
    # Both pay the same hardware exception cost.
    assert abs(dilos["exception"] - fastswap["exception"]) < 1e-6
    # Total reduction in the 35-65% band around the paper's 49%.
    reduction = 1.0 - total_dilos / total_fastswap
    assert 0.25 < reduction < 0.70
