"""pytest-benchmark wall-clock suite over the simulator's hot kernels.

Unlike the figure/table benchmarks in ``benchmarks/``, which measure the
*simulated* systems, this suite measures the *simulator*: how fast the
host executes each hot kernel defined in :mod:`repro.harness.perf`.
``python -m repro perf`` runs the same kernels standalone (with the
regression gate and ``BENCH_perf.json`` output); this module makes them
available under pytest-benchmark's statistics and comparison machinery::

    pytest benchmarks/perf -m perf --benchmark-only
    pytest benchmarks/perf -m perf --benchmark-autosave --benchmark-compare

Each kernel asserts its own metrics digest stays fixed across rounds, so
a benchmark run doubles as a determinism check.
"""

from __future__ import annotations

import pytest

from repro.harness.perf import CASES

pytestmark = pytest.mark.perf


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_hot_path(benchmark, case):
    checksums = set()

    def kernel():
        run = case.fn()
        checksums.add((run.checksum, run.sim_us))
        return run

    run = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert len(checksums) == 1, (
        f"{case.name}: non-deterministic across rounds: {checksums}")
    benchmark.extra_info["sim_us"] = run.sim_us
    benchmark.extra_info["ops"] = run.ops
    benchmark.extra_info["checksum"] = run.checksum
