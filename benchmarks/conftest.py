"""Shared helpers for the paper-reproduction benchmarks.

Each module in this directory regenerates one table or figure from the
paper at simulation scale: it runs the experiment grid once (via
``bench_once`` so pytest-benchmark records the wall time), prints the
paper-style table, and asserts the paper's qualitative *shape* — who wins,
by roughly what factor, where the crossovers fall. Absolute magnitudes
belong to the authors' testbed, not to this simulator.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import sys


def bench_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiments are deterministic simulations — repeated rounds would
    measure the host, not the system under study.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a results table so ``-s`` (or the captured report) shows it."""
    sys.stdout.write("\n" + text + "\n")
