"""Table 3: page-fault counts during sequential read, all four systems.

Paper (20 GB read): Fastswap 655,737 major + 4,587,164 minor; DiLOS
no-prefetch 5,242,880 major (every page, no minor); DiLOS readahead /
trend match Fastswap's major count but incur ~25% fewer minors, because
prefetched pages are mapped directly into the unified page table instead
of parking in a swap cache.
"""

from conftest import bench_once, emit

from repro.common.units import MIB, PAGE_SIZE
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 16 * MIB
SYSTEMS = ("fastswap", "dilos-none", "dilos-readahead", "dilos-trend")


def measure():
    counts = {}
    for kind in SYSTEMS:
        workload = SequentialWorkload(WORKING_SET)
        system = make_system(kind, local_bytes_for(WORKING_SET, 0.125))
        metrics = workload.run(system, "read").metrics
        counts[kind] = (metrics["major_faults"], metrics["minor_faults"])
    return counts


def test_table3_fault_counts(benchmark):
    counts = bench_once(benchmark, measure)
    pages = WORKING_SET // PAGE_SIZE
    emit(format_table(
        "Table 3: page faults during sequential read (12.5% local)",
        ["system", "major", "minor", "total"],
        [[k, counts[k][0], counts[k][1], sum(counts[k])] for k in SYSTEMS]))

    fastswap_major, fastswap_minor = counts["fastswap"]
    # DiLOS without prefetching majors on essentially every cold page and
    # has no minor faults at all (nothing is ever half-arrived).
    none_major, none_minor = counts["dilos-none"]
    assert none_minor == 0
    assert none_major > 0.75 * pages
    # With prefetching, DiLOS' major count lands near Fastswap's (both are
    # one major per readahead window).
    for kind in ("dilos-readahead", "dilos-trend"):
        major, minor = counts[kind]
        assert 0.5 * fastswap_major < major < 2.0 * fastswap_major
        # The unified page table eliminates swap-cache minors; what's left
        # (waits on in-flight pages) is well below Fastswap's minor count.
        assert minor < 0.75 * fastswap_minor
        assert major + minor < fastswap_major + fastswap_minor
