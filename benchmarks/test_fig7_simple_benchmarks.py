"""Figure 7: quicksort, k-means, snappy compress/decompress completion
times across local-memory ratios.

Paper shapes:
* 7(a) quicksort — Fastswap degrades ~39% from 100% to 12.5% local;
  DiLOS only ~12%; DiLOS up to 1.39x faster at 12.5%.
* 7(b) k-means — irregular access stresses reclamation; DiLOS up to
  2.71x faster than Fastswap at 12.5%.
* 7(c,d) snappy — sequential; AIFM's background prefetcher wins at 12.5%
  with DiLOS within ~10% and DiLOS-TCP within ~25%, Fastswap 35-40%
  behind; at 100% AIFM is no faster than DiLOS (deref checks).
"""

from conftest import bench_once, emit

from repro.harness import local_bytes_for, make_system, ratio_table
from repro.harness.experiment import Measurement, pick, sweep_ratios
from repro.apps.quicksort import QuicksortWorkload
from repro.apps.kmeans import KMeansWorkload
from repro.apps.snappy import SnappyWorkload

RATIOS = (0.125, 0.25, 0.50, 1.0)
PAGING = ("fastswap", "dilos-none", "dilos-readahead", "dilos-trend")


def run_quicksort():
    def runner(kind, ratio):
        workload = QuicksortWorkload(count=1 << 16)
        system = make_system(kind, local_bytes_for(workload.footprint_bytes,
                                                   ratio))
        result = workload.run(system, verify=True)
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")
    return sweep_ratios("quicksort", runner, PAGING, RATIOS)


def run_kmeans():
    def runner(kind, ratio):
        workload = KMeansWorkload(n_points=1 << 15, iterations=3)
        system = make_system(kind, local_bytes_for(workload.footprint_bytes,
                                                   ratio))
        result = workload.run(system)
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")
    return sweep_ratios("kmeans", runner, PAGING, RATIOS)


def run_snappy(mode):
    systems = ("fastswap", "dilos-readahead", "dilos-tcp", "aifm")

    def runner(kind, ratio):
        workload = SnappyWorkload(n_files=3, file_bytes=384 * 1024)
        system = make_system(kind, local_bytes_for(workload.footprint_bytes,
                                                   ratio))
        if kind.startswith("aifm"):
            result = (workload.run_compress_aifm(system) if mode == "compress"
                      else workload.run_decompress_aifm(system))
        else:
            result = (workload.run_compress(system) if mode == "compress"
                      else workload.run_decompress(system))
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")
    return sweep_ratios(f"snappy-{mode}", runner, systems, (0.125, 0.50, 1.0))


def test_fig7a_quicksort(benchmark):
    ms = bench_once(benchmark, run_quicksort)
    emit(ratio_table("Figure 7(a): quicksort completion time", ms))
    fast_tight = pick(ms, "fastswap", 0.125).value
    fast_full = pick(ms, "fastswap", 1.0).value
    dilos_tight = pick(ms, "dilos-readahead", 0.125).value
    dilos_full = pick(ms, "dilos-readahead", 1.0).value
    # Fastswap degrades far more than DiLOS as memory shrinks.
    assert fast_tight / fast_full > 1.25
    assert dilos_tight / dilos_full < fast_tight / fast_full
    # DiLOS wins at 12.5% (paper: up to 1.39x).
    assert dilos_tight < fast_tight


def test_fig7b_kmeans(benchmark):
    ms = bench_once(benchmark, run_kmeans)
    emit(ratio_table("Figure 7(b): k-means completion time", ms))
    fast_tight = pick(ms, "fastswap", 0.125).value
    dilos_tight = pick(ms, "dilos-readahead", 0.125).value
    # Irregular access + reclamation stress: DiLOS well ahead (paper 2.71x).
    assert dilos_tight < 0.75 * fast_tight
    # Everyone is happier with full memory.
    assert pick(ms, "fastswap", 1.0).value < fast_tight


def test_fig7cd_snappy(benchmark):
    compress = bench_once(benchmark, run_snappy, "compress")
    decompress = run_snappy("decompress")
    emit(ratio_table("Figure 7(c): snappy compression", compress))
    emit(ratio_table("Figure 7(d): snappy decompression", decompress))
    for ms in (compress, decompress):
        aifm_tight = pick(ms, "aifm", 0.125).value
        dilos_tight = pick(ms, "dilos-readahead", 0.125).value
        tcp_tight = pick(ms, "dilos-tcp", 0.125).value
        fast_tight = pick(ms, "fastswap", 0.125).value
        # At 12.5%: AIFM at worst ~matches DiLOS; DiLOS within ~25% of the
        # winner; Fastswap clearly last (paper: 35-40% slowdown).
        assert aifm_tight < 1.15 * dilos_tight
        assert dilos_tight < 1.4 * aifm_tight
        assert tcp_tight < fast_tight
        assert fast_tight == max(
            pick(ms, kind, 0.125).value
            for kind in ("fastswap", "dilos-readahead", "dilos-tcp", "aifm"))
        # At 100%: AIFM is "similar to or slower than DiLOS" (paper).
        # Decompression allocates its output as fresh AIFM objects, which
        # dodges first-touch faults, so allow it a modest advantage there.
        assert pick(ms, "aifm", 1.0).value > \
            0.80 * pick(ms, "dilos-readahead", 1.0).value
