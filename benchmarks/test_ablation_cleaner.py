"""Ablation: how eager must the background page manager be?

§4.4's cleaner/reclaimer "always keeps a few free pages by eagerly
evicting the local cache". This sweep varies the background thread's
wakeup period on a write-heavy pass: wake too rarely and the free list
runs dry, pushing reclamation back onto the fault path (direct reclaims —
the Fastswap failure mode DiLOS exists to avoid).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 12 * MIB
PERIODS_US = (2.5, 5.0, 20.0, 80.0, 320.0)


def measure():
    out = {}
    for period in PERIODS_US:
        workload = SequentialWorkload(WORKING_SET)
        system = make_system("dilos-readahead",
                             local_bytes_for(WORKING_SET, 0.125),
                             cleaner_period_us=period)
        result = workload.run(system, "write")
        out[period] = (result.gb_per_s,
                       result.metrics["direct_reclaims"],
                       result.metrics["pages_cleaned"])
    return out


def test_ablation_cleaner_period(benchmark):
    results = bench_once(benchmark, measure)
    emit(format_table(
        "Ablation: background-manager wakeup period (seq write, 12.5%)",
        ["period (us)", "GB/s", "direct reclaims", "pages cleaned"],
        [[period, *results[period]] for period in PERIODS_US]))

    eager_gbps, eager_directs, _ = results[5.0]
    lazy_gbps, lazy_directs, _ = results[320.0]
    # An eager manager keeps the fault path reclaim-free...
    assert eager_directs == 0
    # ...while a lazy one leaks reclamation into the fault path and pays
    # for it in throughput.
    assert lazy_directs > 0
    assert lazy_gbps < 0.9 * eager_gbps
    # Past "eager enough" there is nothing left to win.
    assert results[2.5][0] == max(v[0] for v in results.values()) or \
        results[2.5][0] > 0.9 * eager_gbps
