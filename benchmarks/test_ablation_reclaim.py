"""Ablation: eager background reclamation vs direct reclaim on the fault
path.

§4.4: DiLOS' page manager keeps free frames between watermarks so the
fault handler only ever pops a free list. This ablation disables the
background thread, making the fault path reclaim inline exactly like the
kernel-paging baselines, and measures both the latency-breakdown change
and the end-to-end cost.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.kmeans import KMeansWorkload


def run(direct_only: bool):
    workload = KMeansWorkload(n_points=1 << 14, iterations=3)
    system = make_system("dilos-none",
                         local_bytes_for(workload.footprint_bytes, 0.125),
                         direct_reclaim_only=direct_only)
    result = workload.run(system)
    breakdown = system.kernel.breakdown.averages()
    return (result.elapsed_us / 1000.0, breakdown.get("reclaim", 0.0),
            result.metrics["direct_reclaims"])


def measure():
    return {"background (DiLOS)": run(False), "direct-reclaim": run(True)}


def test_ablation_background_reclaim(benchmark):
    results = bench_once(benchmark, measure)
    emit(format_table(
        "Ablation: background vs fault-path reclamation (k-means, 12.5%)",
        ["design", "time (ms)", "reclaim us/fault", "direct reclaims"],
        [[name, *vals] for name, vals in results.items()]))

    bg_time, bg_reclaim, bg_directs = results["background (DiLOS)"]
    dr_time, dr_reclaim, dr_directs = results["direct-reclaim"]
    # The DiLOS design keeps reclamation entirely off the fault path...
    assert bg_reclaim == 0.0
    assert bg_directs == 0
    # ...while the ablation pays it inline, visibly in the breakdown and
    # in completion time (the Figure 1 -> Figure 6 delta, isolated).
    assert dr_reclaim > 0.0
    assert dr_directs > 0
    assert dr_time > 1.05 * bg_time
