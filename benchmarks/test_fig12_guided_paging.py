"""Figure 12: wire bandwidth during DEL and GET with guided paging.

Paper: populate small values, DEL ~70% of the keyspace (leaving pages
full of dead chunks), then serve GETs. The allocator guide's vectorized
(<=3-segment) transfers cut bandwidth by ~12% during the DEL phase and
~29% during the GET phase.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.alloc import Mimalloc, MimallocGuide
from repro.apps.redis import DelGetWorkload, RedisServer

RATIO = 0.25  # the paper limits local memory to ~25% of post-DEL usage


def run(guided: bool):
    workload = DelGetWorkload(n_keys=8000, value_bytes=128, n_queries=2500)
    system = make_system("dilos-none",
                         local_bytes_for(workload.footprint_bytes, RATIO),
                         remote_bytes=512 * MIB, guided_paging=guided)
    alloc = Mimalloc(system, arena_bytes=256 * MIB)
    if guided:
        system.kernel.register_allocator_guide(MimallocGuide(alloc))
    server = RedisServer(system, alloc)
    workload.populate(server)
    system.clock.advance(5000)
    stats = system.kernel.comm.stats
    del_start = stats.total_bytes
    t_del_start = system.clock.now
    workload.run_del_phase(server)
    system.clock.advance(8000)  # let cleaning/eviction drain
    del_bytes = stats.total_bytes - del_start
    get_start = stats.total_bytes
    workload.run_get_phase(server)
    get_bytes = stats.total_bytes - get_start
    return del_bytes, get_bytes


def measure():
    return {"guided": run(True), "baseline": run(False)}


def test_fig12_guided_paging_bandwidth(benchmark):
    results = bench_once(benchmark, measure)
    base_del, base_get = results["baseline"]
    guided_del, guided_get = results["guided"]
    emit(format_table(
        "Figure 12: wire traffic during DEL / GET phases (bytes)",
        ["config", "DEL phase", "GET phase"],
        [["full-page paging", base_del, base_get],
         ["guided paging", guided_del, guided_get],
         ["reduction %", 100 * (1 - guided_del / base_del),
          100 * (1 - guided_get / base_get)]]))

    # DEL-phase traffic shrinks (paper: ~12%; here ~5%, since our DEL
    # only reads headers while Redis also rewrites in-page metadata).
    assert guided_del < 0.98 * base_del
    # GET-phase traffic shrinks more (paper: ~29%) — fetches carry only
    # the live ~30% of each page, vector-capped at three segments.
    assert guided_get < 0.85 * base_get
    # And the GET reduction exceeds the DEL reduction, as in the figure.
    assert (1 - guided_get / base_get) > (1 - guided_del / base_del)
