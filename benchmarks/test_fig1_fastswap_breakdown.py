"""Figure 1: Fastswap's page-fault-handler latency breakdown.

Paper: fetching the remote page is the largest component (~46%); direct
reclamation adds ~29% in the average case and disappears in the
no-reclamation case; the hardware exception + OS handler entry is 0.57 us.
"""

from conftest import bench_once, emit

from repro.common.units import MIB, PAGE_SIZE
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 12 * MIB


def run_average():
    """Sequential read at 12.5% local: reclaim pressure on every fetch."""
    workload = SequentialWorkload(WORKING_SET)
    system = make_system("fastswap", local_bytes_for(WORKING_SET, 0.125))
    workload.run(system, "read")
    return system.kernel.breakdown.averages()


def run_no_reclamation():
    """Plenty of local memory, data starts remote: fetches never reclaim."""
    system = make_system("fastswap", int(WORKING_SET * 2.5))
    region = system.mmap(WORKING_SET, name="data")
    pages = WORKING_SET // PAGE_SIZE
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE, b"\x11" * 64)
    # Spill: touching a scratch region evicts the data set, then releasing
    # the scratch leaves ample free frames for reclamation-free fetches.
    scratch = system.mmap(2 * WORKING_SET, name="scratch")
    for i in range(2 * pages):
        system.memory.write(scratch.base + i * PAGE_SIZE, b"\x22" * 8)
    system.clock.advance(20_000)
    system.munmap(scratch)
    system.kernel.breakdown.reset()
    for i in range(pages):
        system.memory.read(region.base + i * PAGE_SIZE, 64)
    return system.kernel.breakdown.averages()


def measure():
    return run_average(), run_no_reclamation()


COMPONENTS = ("exception", "software", "fetch", "reclaim")


def test_fig1_fastswap_fault_breakdown(benchmark):
    average, no_reclaim = bench_once(benchmark, measure)
    rows = [[name, average.get(name, 0.0), no_reclaim.get(name, 0.0)]
            for name in COMPONENTS]
    rows.append(["TOTAL", sum(average.values()), sum(no_reclaim.values())])
    emit(format_table(
        "Figure 1: Fastswap fault-handler breakdown (us/fault)",
        ["component", "average", "no reclamation"], rows))

    total_avg = sum(average.values())
    # Fetch is the largest component (paper: 46%).
    assert average["fetch"] == max(average.values())
    assert 0.30 < average["fetch"] / total_avg < 0.70
    # Hardware exception + OS entry = 0.57 us.
    assert abs(average["exception"] - 0.57) < 1e-6
    # Reclamation is significant on average (paper: ~29%)...
    assert average["reclaim"] / total_avg > 0.10
    # ...and absent without memory pressure.
    assert no_reclaim["reclaim"] < 0.05
    assert sum(no_reclaim.values()) < total_avg
