"""Table 1: major/minor fault split on Fastswap, sequential read.

Paper (20 GB read, 2.5 GB local): 655,737 major (12.5%) vs 4,587,164 minor
(87.5%) — exactly one major per readahead cluster of 8, with every
prefetched page paying a swap-cache minor fault.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 16 * MIB


def measure():
    workload = SequentialWorkload(WORKING_SET)
    system = make_system("fastswap", local_bytes_for(WORKING_SET, 0.125))
    result = workload.run(system, "read")
    return result.metrics


def test_table1_fault_split(benchmark):
    metrics = bench_once(benchmark, measure)
    major = metrics["major_faults"]
    minor = metrics["minor_faults"]
    total = major + minor
    emit(format_table(
        "Table 1: page faults, sequential read on Fastswap (12.5% local)",
        ["kind", "count", "%"],
        [["Major page fault", major, 100.0 * major / total],
         ["Minor page fault", minor, 100.0 * minor / total],
         ["Total", total, 100.0]]))
    # The 12.5%/87.5% split of a window-8 readahead into the swap cache.
    assert 0.08 < major / total < 0.20
    assert minor / total > 0.78
