"""Figure 2: one-sided RDMA latency across object sizes.

Paper: reads/writes of 64 B - 16 KiB between two nodes; fetching a 4 KiB
page adds only ~0.6 us over a 128 B object, so IO amplification barely
moves fetch latency (§3.1).
"""

from conftest import bench_once, emit

from repro.common.clock import Clock
from repro.common.units import MIB
from repro.mem.remote import MemoryNode
from repro.net.latency import LatencyModel
from repro.net.qp import NetStats, QueuePair
from repro.harness import format_table

SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


def measure():
    model = LatencyModel()
    node = MemoryNode(1 * MIB)
    rows = []
    for size in SIZES:
        read_clock = Clock()
        read_qp = QueuePair("r", read_clock, model, node, NetStats())
        completion = read_qp.post_read(0, size)
        read_lat = completion.time
        write_clock = Clock()
        write_qp = QueuePair("w", write_clock, model, node, NetStats())
        completion = write_qp.post_write(0, b"\x00" * size)
        rows.append((size, read_lat, completion.time))
    return rows


def test_fig2_rdma_latency(benchmark):
    rows = bench_once(benchmark, measure)
    emit(format_table("Figure 2: RDMA latency vs object size",
                      ["size (B)", "read (us)", "write (us)"], rows))
    lat = {size: (r, w) for size, r, w in rows}
    # Monotone in size, for both verbs.
    reads = [lat[s][0] for s in SIZES]
    writes = [lat[s][1] for s in SIZES]
    assert reads == sorted(reads)
    assert writes == sorted(writes)
    # The paper's headline: 4 KiB costs only ~0.6 us more than 128 B.
    delta = lat[4096][0] - lat[128][0]
    assert 0.4 < delta < 0.8
    # Small-object latency is in the microsecond class.
    assert 1.0 < lat[128][0] < 2.5
    # Writes are cheaper than reads at every size.
    assert all(lat[s][1] < lat[s][0] for s in SIZES)
