"""Table 2: sequential read/write throughput (GB/s), 12.5% local memory.

Paper (GB/s): Fastswap 0.98 / 0.49; DiLOS no-prefetch 1.24 / 1.14; DiLOS
readahead 3.74 / 3.49; DiLOS trend-based 3.73 / 3.49.

Shape asserted here: DiLOS-no-prefetch beats Fastswap on reads; both DiLOS
prefetchers are ~3x or better over Fastswap; Fastswap's writes collapse to
about half its reads (inline frontswap stores), while DiLOS' writes stay
close to its reads (background cleaning).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload

SYSTEMS = ("fastswap", "dilos-none", "dilos-readahead", "dilos-trend")
WORKING_SET = 16 * MIB


def measure():
    throughput = {}
    for kind in SYSTEMS:
        for mode in ("read", "write"):
            workload = SequentialWorkload(WORKING_SET)
            system = make_system(kind, local_bytes_for(WORKING_SET, 0.125))
            result = workload.run(system, mode, verify=(mode == "read"))
            throughput[(kind, mode)] = result.gb_per_s
    return throughput


def test_table2_sequential_throughput(benchmark):
    tp = bench_once(benchmark, measure)
    emit(format_table(
        "Table 2: sequential throughput, 12.5% local (GB/s)",
        ["system", "read", "write"],
        [[k, tp[(k, "read")], tp[(k, "write")]] for k in SYSTEMS]))

    fastswap_r = tp[("fastswap", "read")]
    fastswap_w = tp[("fastswap", "write")]
    # DiLOS without any prefetcher already beats Fastswap (unified page
    # table + background reclaim alone).
    assert tp[("dilos-none", "read")] > fastswap_r
    assert tp[("dilos-none", "write")] > 1.5 * fastswap_w
    # Prefetchers lift DiLOS ~3x over Fastswap (paper: 3.7-3.8x).
    assert tp[("dilos-readahead", "read")] > 2.5 * fastswap_r
    assert tp[("dilos-trend", "read")] > 2.5 * fastswap_r
    # Prefetching beats no-prefetch by a wide margin (paper: ~3x).
    assert tp[("dilos-readahead", "read")] > 2.0 * tp[("dilos-none", "read")]
    # Fastswap writes collapse to roughly half its reads (paper: 0.49/0.98).
    assert fastswap_w < 0.65 * fastswap_r
    # DiLOS writes stay close to its reads (paper: 3.49/3.74).
    assert tp[("dilos-readahead", "write")] > 0.8 * tp[("dilos-readahead", "read")]
