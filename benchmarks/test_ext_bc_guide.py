"""Extension: an app-aware guide for graph traversal.

§4.3's guide API is claimed to generalize beyond Redis; this bench
demonstrates it on betweenness centrality, whose BFS knows its next
adjacency reads a whole frontier in advance. The guide subpage-fetches CSR
offsets and prefetches each upcoming vertex's slice of the edge array —
turning the workload the general-purpose prefetchers are worst at
(Figure 9(b)) into a prefetchable one.
"""

from conftest import bench_once, emit

from repro.harness import format_table, local_bytes_for, make_system
from repro.apps.gapbs import (
    BcFrontierGuide,
    BetweennessWorkload,
    CsrGraph,
    generate_power_law_graph,
)

N, M = 8192, 120_000


def measure():
    offsets, edges = generate_power_law_graph(n=N, target_m=M, seed=3)
    footprint = (len(offsets) + len(edges)) * 8
    workload = BetweennessWorkload(n_sources=2)
    out = {}
    tops = set()
    for variant in ("readahead", "trend", "app-aware"):
        kind = "dilos-readahead" if variant == "app-aware" \
            else f"dilos-{variant}"
        system = make_system(kind, local_bytes_for(footprint, 0.125))
        graph = CsrGraph(system, offsets, edges)
        guide = None
        if variant == "app-aware":
            guide = BcFrontierGuide(graph)
            guide.bind(system)
        result = workload.run(system, graph,
                              sources=workload.pick_sources(graph),
                              guide=guide)
        tops.add(result.top_vertex)
        out[variant] = (result.elapsed_us / 1000.0,
                        result.metrics["major_faults"],
                        result.metrics["minor_faults"])
    assert len(tops) == 1, "guide changed the algorithm's result"
    return out


def test_ext_bc_frontier_guide(benchmark):
    results = bench_once(benchmark, measure)
    emit(format_table(
        "Extension: BC with an app-aware frontier guide (12.5% local)",
        ["prefetcher", "time (ms)", "major", "minor"],
        [[name, *vals] for name, vals in results.items()]))

    base_time = results["readahead"][0]
    guided_time = results["app-aware"][0]
    # General-purpose prefetchers cannot predict frontier-order access
    # (readahead ~= trend), but the guide can: >=25% faster.
    assert abs(results["trend"][0] - base_time) < 0.35 * base_time
    assert guided_time < 0.75 * base_time
    # Mechanism check: majors converted into prefetch hits/waits.
    assert results["app-aware"][1] < 0.8 * results["readahead"][1]
