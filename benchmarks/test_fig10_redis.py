"""Figure 10: Redis request throughput — GET (4 KiB / 64 KiB / mixed) and
LRANGE — across systems and prefetchers.

Paper shapes, memory-constrained (12.5% local):
* DiLOS without any prefetcher already beats Fastswap by 1.37-1.52x;
* general-purpose prefetchers help GET (objects spanning multiple pages
  become predictable; weakest on 4 KiB objects) — up to 2.51x Fastswap;
* on LRANGE (pointer-chasing quicklists) readahead and trend gain nothing
  over no-prefetch;
* the app-aware guide matches the others on GET and beats them by ~62% on
  LRANGE (2.21x Fastswap).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.alloc import Mimalloc
from repro.apps.redis import (
    GetWorkload,
    LRangeWorkload,
    RedisPrefetchGuide,
    RedisServer,
)

VARIANTS = ("fastswap", "dilos-none", "dilos-readahead", "dilos-trend",
            "dilos-app-aware")
RATIO = 0.125


def build_server(variant: str, footprint: int):
    guide = None
    kind = variant
    if variant == "dilos-app-aware":
        kind = "dilos-readahead"
        guide = RedisPrefetchGuide()
    system = make_system(kind, local_bytes_for(footprint, RATIO),
                         remote_bytes=512 * MIB)
    alloc = Mimalloc(system, arena_bytes=256 * MIB)
    return RedisServer(system, alloc, guide=guide)


def run_get(value_size):
    sizing = {4096: (900, 1800), 65536: (120, 400), "mixed": (220, 700)}
    n_keys, n_queries = sizing[value_size]
    out = {}
    stats = {}
    for variant in VARIANTS:
        workload = GetWorkload(value_size=value_size, n_keys=n_keys,
                               n_queries=n_queries)
        server = build_server(variant, workload.footprint_bytes)
        workload.populate(server)
        server.system.clock.advance(5000)
        result = workload.drive(server, verify=True)
        out[variant] = result.requests_per_second
        stats[variant] = result
    return out, stats


def run_lrange():
    out = {}
    stats = {}
    for variant in VARIANTS:
        workload = LRangeWorkload(n_lists=400, elems_per_list=64,
                                  n_queries=700)
        server = build_server(variant, workload.footprint_bytes)
        workload.populate(server)
        server.system.clock.advance(5000)
        result = workload.drive(server, verify=True)
        out[variant] = result.requests_per_second
        stats[variant] = result
    return out, stats


def measure_all():
    return {
        "GET 4KB": run_get(4096)[0],
        "GET 64KB": run_get(65536)[0],
        "GET mixed": run_get("mixed")[0],
        "LRANGE": run_lrange()[0],
    }


def test_fig10_redis_throughput(benchmark):
    results = bench_once(benchmark, measure_all)
    emit(format_table(
        "Figure 10: Redis throughput, 12.5% local (requests/s)",
        ["system"] + list(results),
        [[v] + [results[w][v] for w in results] for v in VARIANTS]))

    for workload, tp in results.items():
        # DiLOS beats Fastswap in every configuration (paper: all of
        # Figure 10), even without a prefetcher (1.37-1.52x).
        assert tp["dilos-none"] > 1.2 * tp["fastswap"], workload
        for variant in VARIANTS[1:]:
            assert tp[variant] > tp["fastswap"], (workload, variant)

    # GET 64KB: multi-page objects make prefetching effective (paper: up
    # to 63% over no-prefetch).
    assert results["GET 64KB"]["dilos-trend"] > \
        1.2 * results["GET 64KB"]["dilos-none"]
    assert results["GET 64KB"]["dilos-readahead"] > \
        1.2 * results["GET 64KB"]["dilos-none"]
    # GET 4KB: small objects blunt the prefetchers — their relative gain
    # is clearly smaller than on 64 KiB objects, and trend-based (which
    # needs a stride) gains essentially nothing on random 4 KiB keys.
    gain_4k = (results["GET 4KB"]["dilos-readahead"]
               / results["GET 4KB"]["dilos-none"])
    gain_64k = (results["GET 64KB"]["dilos-readahead"]
                / results["GET 64KB"]["dilos-none"])
    assert gain_64k > gain_4k * 1.1
    assert results["GET 4KB"]["dilos-trend"] < \
        1.15 * results["GET 4KB"]["dilos-none"]
    # LRANGE: general-purpose prefetchers gain nothing on pointer chasing...
    for variant in ("dilos-readahead", "dilos-trend"):
        assert results["LRANGE"][variant] < \
            1.10 * results["LRANGE"]["dilos-none"], variant
    # ...but the app-aware guide breaks the pattern (paper: +62%).
    assert results["LRANGE"]["dilos-app-aware"] > \
        1.3 * results["LRANGE"]["dilos-readahead"]
    # And on GET the guide performs on par with the general prefetchers.
    assert results["GET mixed"]["dilos-app-aware"] > \
        0.85 * results["GET mixed"]["dilos-readahead"]
