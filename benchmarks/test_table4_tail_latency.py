"""Table 4: tail latency of GET (mixed) and LRANGE, memory-constrained.

Paper (ms, 2.5 GB local): Fastswap worst everywhere (GET p99 10.0,
LRANGE p99 25.8); DiLOS-no-prefetch cuts both; prefetchers cut GET tails
further (3.0); only the app-aware guide cuts the LRANGE tail (25.8 ->
14.6, 28% below Fastswap and 18% below the other DiLOS variants).
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.alloc import Mimalloc
from repro.apps.redis import (
    GetWorkload,
    LRangeWorkload,
    RedisPrefetchGuide,
    RedisServer,
)

VARIANTS = ("fastswap", "dilos-none", "dilos-readahead", "dilos-trend",
            "dilos-app-aware")
RATIO = 0.125


def build_server(variant, footprint):
    guide = None
    kind = variant
    if variant == "dilos-app-aware":
        kind = "dilos-readahead"
        guide = RedisPrefetchGuide()
    system = make_system(kind, local_bytes_for(footprint, RATIO),
                         remote_bytes=512 * MIB)
    return RedisServer(system, Mimalloc(system, arena_bytes=256 * MIB),
                       guide=guide)


def measure():
    tails = {}
    for variant in VARIANTS:
        get_wl = GetWorkload(value_size="mixed", n_keys=220, n_queries=900)
        server = build_server(variant, get_wl.footprint_bytes)
        get_wl.populate(server)
        server.system.clock.advance(5000)
        get_stats = get_wl.drive(server)
        lr_wl = LRangeWorkload(n_lists=400, elems_per_list=64, n_queries=900)
        server = build_server(variant, lr_wl.footprint_bytes)
        lr_wl.populate(server)
        server.system.clock.advance(5000)
        lr_stats = lr_wl.drive(server)
        tails[variant] = (get_stats.latencies.pct(99),
                          get_stats.latencies.pct(99.9),
                          lr_stats.latencies.pct(99),
                          lr_stats.latencies.pct(99.9))
    return tails


def test_table4_tail_latency(benchmark):
    tails = bench_once(benchmark, measure)
    emit(format_table(
        "Table 4: tail latency, 12.5% local (us)",
        ["system", "GET p99", "GET p99.9", "LRANGE p99", "LRANGE p99.9"],
        [[v, *tails[v]] for v in VARIANTS]))

    fast = tails["fastswap"]
    none = tails["dilos-none"]
    ra = tails["dilos-readahead"]
    aware = tails["dilos-app-aware"]
    # Fastswap has the worst tails across the board.
    for variant in VARIANTS[1:]:
        assert tails[variant][0] < fast[0], variant  # GET p99
        assert tails[variant][2] < fast[2], variant  # LRANGE p99
    # Prefetchers cut the GET tail below no-prefetch (paper: 6.2 -> 3.0).
    assert ra[0] < none[0]
    # Only the app-aware guide cuts the LRANGE tail below the
    # general-purpose prefetchers (paper: 18.0 -> 14.6).
    assert aware[2] < 0.95 * ra[2]
    assert aware[2] < 0.80 * fast[2]
