"""Figure 8: NYC-taxi analytics on the DataFrame library.

Paper shape: with ample memory (100%) AIFM is 50-83% slower than the
others (dereference checks); DiLOS beats AIFM by up to 54% (and even
DiLOS-TCP by ~14%); Fastswap's completion more than doubles as local
memory shrinks to 12.5% while DiLOS and AIFM degrade only mildly. All
systems must compute identical answers.
"""

from conftest import bench_once, emit

from repro.harness import local_bytes_for, make_system, ratio_table
from repro.harness.experiment import Measurement, pick, sweep_ratios
from repro.apps.dataframe import TaxiAnalyticsWorkload

SYSTEMS = ("fastswap", "dilos-readahead", "dilos-tcp", "aifm")
RATIOS = (0.125, 0.25, 0.50, 1.0)
ROWS = 1 << 16


def run_grid():
    answers = {}

    def runner(kind, ratio):
        workload = TaxiAnalyticsWorkload(rows=ROWS)
        system = make_system(kind, local_bytes_for(workload.footprint_bytes,
                                                   ratio))
        result = (workload.run_aifm(system) if kind.startswith("aifm")
                  else workload.run(system))
        answers.setdefault("reference", result.answers)
        for key, value in answers["reference"].items():
            got = result.answers[key]
            if abs(got - value) > 1e-6 * max(1.0, abs(value)):
                raise AssertionError(
                    f"{kind}@{ratio} disagrees on {key}: {got} vs {value}")
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms")

    return sweep_ratios("taxi", runner, SYSTEMS, RATIOS)


def test_fig8_dataframe_taxi(benchmark):
    ms = bench_once(benchmark, run_grid)
    emit(ratio_table("Figure 8: NYC taxi on DataFrame, completion time", ms))

    # 100% local: AIFM pays deref checks — slower than every paging system
    # (paper: 50-83% slower).
    aifm_full = pick(ms, "aifm", 1.0).value
    for kind in ("fastswap", "dilos-readahead", "dilos-tcp"):
        assert aifm_full > 1.2 * pick(ms, kind, 1.0).value
    # 12.5%: DiLOS beats AIFM (paper: up to 54%); DiLOS-TCP also ahead.
    assert pick(ms, "dilos-readahead", 0.125).value < \
        pick(ms, "aifm", 0.125).value
    assert pick(ms, "dilos-tcp", 0.125).value < pick(ms, "aifm", 0.125).value
    # Fastswap's completion more than doubles across the sweep; DiLOS and
    # AIFM degrade far more gently.
    fast_degr = pick(ms, "fastswap", 0.125).value / pick(ms, "fastswap", 1.0).value
    dilos_degr = (pick(ms, "dilos-readahead", 0.125).value
                  / pick(ms, "dilos-readahead", 1.0).value)
    aifm_degr = pick(ms, "aifm", 0.125).value / aifm_full
    assert fast_degr > 2.0
    assert dilos_degr < 0.75 * fast_degr
    assert aifm_degr < 0.75 * fast_degr
