"""Extension: DiLOS vs Fastswap across backing media (§5.1 discussion).

The paper argues its design "can improve disk-based swapping performance
also", but that on slow devices "the I/O will be the dominant overhead
hiding performance improvements", while "modern NVMe drives provide enough
performance" for the design to stay valid. We sweep identical sequential
reads over four device profiles — only the device constants change, every
kernel-software cost stays fixed — and check exactly that story: DiLOS'
relative advantage is largest on RDMA, still real on NVMe, and gone on
spinning disk.
"""

from conftest import bench_once, emit

from repro.common.units import MIB
from repro.harness import format_table, local_bytes_for, make_system
from repro.net.media import MEDIA_PROFILES
from repro.apps.seqrw import SequentialWorkload

WORKING_SET = 8 * MIB
MEDIA = ("rdma-100g", "nvme-flash", "sata-ssd", "hdd")


def measure():
    out = {}
    for medium in MEDIA:
        profile = MEDIA_PROFILES[medium]
        speeds = {}
        for kind in ("fastswap", "dilos-readahead"):
            workload = SequentialWorkload(WORKING_SET)
            system = make_system(kind, local_bytes_for(WORKING_SET, 0.125),
                                 latency=profile())
            speeds[kind] = workload.run(system, "read").gb_per_s
        out[medium] = speeds
    return out


def test_ext_backing_media_sweep(benchmark):
    results = bench_once(benchmark, measure)
    rows = []
    speedups = {}
    for medium in MEDIA:
        fast = results[medium]["fastswap"]
        dilos = results[medium]["dilos-readahead"]
        speedups[medium] = dilos / fast
        rows.append([medium, fast, dilos, speedups[medium]])
    emit(format_table(
        "Extension: seq read by backing medium (GB/s, 12.5% local)",
        ["medium", "Fastswap", "DiLOS", "DiLOS speedup"], rows))

    # The software-path advantage shrinks monotonically as the device
    # slows down...
    assert speedups["rdma-100g"] >= speedups["nvme-flash"] >= \
        speedups["sata-ssd"] >= speedups["hdd"]
    # ...stays meaningful on NVMe (the paper's "design would be valid for
    # NVMe drives")...
    assert speedups["nvme-flash"] > 1.02
    # ...and is irrelevant once the device costs milliseconds.
    assert speedups["hdd"] < 1.02
    # Absolute throughput also orders by medium, for both systems.
    for kind in ("fastswap", "dilos-readahead"):
        series = [results[m][kind] for m in MEDIA]
        assert series == sorted(series, reverse=True)
