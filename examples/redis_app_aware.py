#!/usr/bin/env python3
"""Redis on DiLOS: general-purpose prefetchers vs the app-aware guide.

Reproduces the §6.3 story end-to-end at example scale:

* GET workloads — prefetchers help once objects span multiple pages;
* LRANGE over quicklists — pointer chasing defeats readahead and
  trend-based prefetching, but the app-aware guide (Figure 11) chases
  node structs with subpage fetches and wins decisively;
* guided paging (Figure 12) — after DEL-ing 70% of a keyspace, the
  allocator guide's scatter-gather transfers skip the dead bytes.

Run:  python examples/redis_app_aware.py
"""

from repro.common.units import MIB, format_bytes
from repro.harness import local_bytes_for, make_system
from repro.alloc import Mimalloc, MimallocGuide
from repro.apps.redis import (
    DelGetWorkload,
    GetWorkload,
    LRangeWorkload,
    RedisPrefetchGuide,
    RedisServer,
)

VARIANTS = ("dilos-none", "dilos-readahead", "dilos-trend", "dilos-app-aware")


def build_server(variant, footprint, guided_paging=False):
    guide = None
    kind = variant
    if variant == "dilos-app-aware":
        kind = "dilos-readahead"
        guide = RedisPrefetchGuide()
    system = make_system(kind, local_bytes_for(footprint, 0.125),
                         remote_bytes=512 * MIB, guided_paging=guided_paging)
    alloc = Mimalloc(system, arena_bytes=256 * MIB)
    if guided_paging:
        system.kernel.register_allocator_guide(MimallocGuide(alloc))
    return RedisServer(system, alloc, guide=guide)


def throughput_section() -> None:
    print("== request throughput at 12.5% local memory ==")
    header = f"{'variant':18s} {'GET 64KB':>12s} {'LRANGE':>12s}"
    print(header)
    for variant in VARIANTS:
        get_wl = GetWorkload(value_size=65536, n_keys=100, n_queries=300)
        server = build_server(variant, get_wl.footprint_bytes)
        get_wl.populate(server)
        server.system.clock.advance(5000)
        get_rps = get_wl.drive(server).requests_per_second

        lr_wl = LRangeWorkload(n_lists=300, elems_per_list=64, n_queries=500)
        server = build_server(variant, lr_wl.footprint_bytes)
        lr_wl.populate(server)
        server.system.clock.advance(5000)
        lr_rps = lr_wl.drive(server).requests_per_second
        print(f"{variant:18s} {get_rps:>10,.0f}/s {lr_rps:>10,.0f}/s")
    print("-> readahead/trend help GET but not LRANGE;")
    print("   the app-aware guide wins LRANGE by chasing quicklist nodes.\n")


def guided_paging_section() -> None:
    print("== guided paging: wire traffic after DEL-ing 70% of keys ==")
    for guided in (False, True):
        wl = DelGetWorkload(n_keys=6000, value_bytes=128, n_queries=1500)
        server = build_server("dilos-none", wl.footprint_bytes,
                              guided_paging=guided)
        wl.populate(server)
        server.system.clock.advance(5000)
        wl.run_del_phase(server)
        server.system.clock.advance(8000)
        stats = server.system.kernel.comm.stats
        before = stats.total_bytes
        wl.run_get_phase(server)
        label = "guided (SG vectors)" if guided else "full-page paging  "
        print(f"  {label}: {format_bytes(stats.total_bytes - before)} "
              f"moved during the GET phase")
    print("-> the allocator guide ships only live chunks (<=3 segments).")


def main() -> None:
    throughput_section()
    guided_paging_section()


if __name__ == "__main__":
    main()
