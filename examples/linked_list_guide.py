#!/usr/bin/env python3
"""Writing your own app-aware prefetch guide — the Figure 5 pattern.

A linked list whose nodes each live on a different page is the worst case
for general-purpose prefetchers: the next page is named by a pointer
*inside* the current page. The paper's answer (§4.3): on a fault, issue a
tiny *subpage* fetch for just the node struct on the guide's own queue —
it arrives ~0.6 us before the full 4 KiB page — read the ``next`` pointer
out of it, and prefetch the next page early, recursively.

This example builds that list, traverses it with and without the guide,
and prints the speedup.

Run:  python examples/linked_list_guide.py
"""

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem, GuideContext, PrefetchGuide

NODES = 1024
NODE_BYTES = 16  # [next: u64][value: u64]
CHAIN_DEPTH = 4


def build_list(system, region):
    """One node per page, shuffled so page order != list order."""
    import random
    rng = random.Random(7)
    pages = list(range(NODES))
    rng.shuffle(pages)
    node_vas = [region.base + p * PAGE_SIZE for p in pages]
    for i, va in enumerate(node_vas):
        next_va = node_vas[i + 1] if i + 1 < NODES else 0
        system.memory.write(va, next_va.to_bytes(8, "little")
                            + (i * 3).to_bytes(8, "little"))
    return node_vas[0]


def traverse(system, head):
    """The application: plain pointer chasing, no guide knowledge."""
    total = 0
    node = head
    while node:
        raw = system.memory.read(node, NODE_BYTES)
        system.cpu_cycles(40)  # per-node work
        node = int.from_bytes(raw[:8], "little")
        total += int.from_bytes(raw[8:], "little")
    return total


class LinkedListGuide(PrefetchGuide):
    """The guide: chases `next` pointers via subpage fetches (Figure 5)."""

    def __init__(self):
        self.chased = set()

    def on_fault(self, ctx: GuideContext, va: int) -> bool:
        self._chase(ctx, va - (va % PAGE_SIZE) + (va % PAGE_SIZE), CHAIN_DEPTH)
        return True  # claimed: skip the general-purpose prefetcher

    def _chase(self, ctx, node_va, depth):
        if depth <= 0 or node_va == 0 or node_va in self.chased:
            return
        self.chased.add(node_va)

        def on_node(raw: bytes) -> None:
            next_va = int.from_bytes(raw[:8], "little")
            if next_va:
                ctx.prefetch_page(next_va)          # full page, early
                self._chase(ctx, next_va, depth - 1)  # keep running ahead

        ctx.fetch_subpage(node_va, 8, on_node)      # just the next pointer


def run(with_guide: bool) -> float:
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=64 * MIB,
                                     prefetcher="readahead"))
    region = system.mmap(NODES * PAGE_SIZE, name="list")
    head = build_list(system, region)
    if with_guide:
        system.kernel.register_prefetch_guide(LinkedListGuide())
    # Spill the list out of the 1 MiB local cache.
    scratch = system.mmap(2 * MIB, name="scratch")
    for i in range(scratch.size // PAGE_SIZE):
        system.memory.write(scratch.base + i * PAGE_SIZE, b"x")
    system.clock.advance(5000)

    t0 = system.clock.now
    checksum = traverse(system, head)
    elapsed = system.clock.now - t0
    expected = sum(i * 3 for i in range(NODES))
    assert checksum == expected, "traversal returned wrong data"
    return elapsed


def main() -> None:
    baseline = run(with_guide=False)
    guided = run(with_guide=True)
    print(f"traverse {NODES} far-memory nodes (one per page):")
    print(f"  general-purpose readahead : {baseline / 1000:.2f} ms")
    print(f"  app-aware linked-list guide: {guided / 1000:.2f} ms")
    print(f"  speedup: {baseline / guided:.2f}x")
    assert guided < baseline


if __name__ == "__main__":
    main()
