#!/usr/bin/env python3
"""Quickstart: boot a DiLOS computing node, use disaggregated memory.

Boots a simulated computing node with a small local DRAM attached to a
remote memory node, maps a working set four times larger than local
memory, writes and reads it back through the paging subsystem, and prints
what happened underneath: faults, prefetches, evictions, wire traffic.

Run:  python examples/quickstart.py
"""

from repro.common.units import MIB, PAGE_SIZE, format_bytes
from repro.core import DilosConfig, DilosSystem


def main() -> None:
    config = DilosConfig(
        local_mem_bytes=4 * MIB,      # the computing node's local cache
        remote_mem_bytes=256 * MIB,   # the memory node
        prefetcher="readahead",       # none | readahead | trend
    )
    system = DilosSystem(config)
    print(f"booted {system.name}: {format_bytes(config.local_mem_bytes)} "
          f"local, {format_bytes(config.remote_mem_bytes)} remote")

    # MAP_DDC memory: pages migrate between local DRAM and the memory node.
    region = system.mmap(16 * MIB, name="working-set")
    pages = region.size // PAGE_SIZE
    print(f"mapped {format_bytes(region.size)} of disaggregated memory "
          f"({pages} pages, 4x local DRAM)")

    print("writing a pattern over the whole region ...")
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE,
                            i.to_bytes(8, "little") * 8)

    print("reading it back sequentially ...")
    t0 = system.clock.now
    corrupt = 0
    for i in range(pages):
        data = system.memory.read(region.base + i * PAGE_SIZE, 64)
        if data != i.to_bytes(8, "little") * 8:
            corrupt += 1
    elapsed = system.clock.now - t0

    metrics = system.metrics()
    throughput = pages * PAGE_SIZE / elapsed / 1000.0
    print(f"\nread {format_bytes(pages * PAGE_SIZE)} in "
          f"{elapsed / 1000:.2f} simulated ms  ->  {throughput:.2f} GB/s")
    print(f"data integrity: {'OK' if corrupt == 0 else f'{corrupt} BAD PAGES'}")
    print("\nwhat the paging subsystem did:")
    for key in ("major_faults", "minor_faults", "first_touch_faults",
                "prefetches_issued", "pages_evicted", "pages_cleaned",
                "direct_reclaims"):
        print(f"  {key:22s} {metrics[key]:>10,}")
    print(f"  {'wire bytes read':22s} "
          f"{format_bytes(metrics['net_bytes_read']):>10}")
    print(f"  {'wire bytes written':22s} "
          f"{format_bytes(metrics['net_bytes_written']):>10}")
    print(f"  {'prefetch hit ratio':22s} "
          f"{metrics['prefetch_hit_ratio']:>10.2f}")
    assert corrupt == 0
    assert metrics["direct_reclaims"] == 0, \
        "DiLOS must never reclaim on the fault path"
    print("\nnote: direct_reclaims == 0 — reclamation stayed in the "
          "background, the paper's central design goal.")


if __name__ == "__main__":
    main()
