#!/usr/bin/env python3
"""Trace-driven kernel comparison.

Records the memory behaviour of one quicksort run — every load/store with
its compute gaps — then replays the identical access sequence on DiLOS
(three prefetchers) and Fastswap. Trace-driven replay removes every
source of variation except the paging subsystem, which is the §3
methodology behind the paper's motivation numbers.

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro.common.units import MIB
from repro.harness import local_bytes_for, make_system
from repro.harness.trace import TraceRecorder
from repro.apps.quicksort import QuicksortWorkload


def main() -> None:
    workload = QuicksortWorkload(count=1 << 15)
    local = local_bytes_for(workload.footprint_bytes, 0.125)

    print("recording a quicksort run (DiLOS, 12.5% local) ...")
    source = make_system("dilos-readahead", local)
    recorder = TraceRecorder(source)
    workload.run(source, verify=True)
    trace = recorder.finish()
    print(f"captured {len(trace):,} accesses, "
          f"{trace.bytes_accessed / MIB:.1f} MiB moved\n")

    print(f"{'kernel':22s} {'replay (ms)':>12s} {'major':>8s} {'minor':>8s}")
    for kind in ("fastswap", "dilos-none", "dilos-readahead",
                 "dilos-stride"):
        system = make_system(kind, local)
        metrics = trace.replay(system)
        print(f"{kind:22s} {metrics['replay_us'] / 1000:>12.2f} "
              f"{metrics['major_faults']:>8,} {metrics['minor_faults']:>8,}")
    print("\n-> identical byte-for-byte access sequence; only the paging")
    print("   subsystem differs, so every gap in the table is paging design:")
    print("   Fastswap's swap-cache software path vs DiLOS' unified page")
    print("   table, and how much of the trace each prefetcher predicts.")


if __name__ == "__main__":
    main()
