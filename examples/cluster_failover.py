#!/usr/bin/env python3
"""Fault-tolerant disaggregated memory: surviving a memory-node crash.

§5.1 leaves multi-node support and fault tolerance as future work and
names the standard recipes. This example runs the same DiLOS application
on three remote-memory backends, kills a memory node mid-run, and shows
who survives:

* sharded (capacity only)      -> data loss;
* replicated (primary+mirror)  -> reads fail over, zero data loss;
* parity-striped (RAID-5-ish)  -> pages rebuilt by XOR, zero data loss.

Run:  python examples/cluster_failover.py
"""

from repro.common.units import MIB, PAGE_SIZE, format_bytes
from repro.core import DilosConfig, DilosSystem
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory, ShardedMemory
from repro.mem.remote import MemoryNode, NodeFailedError

WORKING_SET = 8 * MIB


def run_scenario(label, backend, victim):
    config = DilosConfig(local_mem_bytes=1 * MIB, remote_mem_bytes=32 * MIB)
    system = DilosSystem(config, memory_backend=backend)
    region = system.mmap(WORKING_SET, name="app")
    pages = region.size // PAGE_SIZE
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE,
                            i.to_bytes(4, "little") * 8)
    system.clock.advance(8000)  # background cleaning drains to the cluster

    victim.fail()  # <- a memory node crashes

    corrupt = unreachable = 0
    for i in range(pages):
        try:
            data = system.memory.read(region.base + i * PAGE_SIZE, 32)
        except NodeFailedError:
            unreachable += 1
            continue
        if data != i.to_bytes(4, "little") * 8:
            corrupt += 1
    counters = getattr(backend, "counters", None)
    extras = []
    if counters is not None:
        for key in ("failover_reads", "degraded_reads",
                    "reconstruction_bytes"):
            if counters.get(key):
                extras.append(f"{key}={counters.get(key):,}")
    status = ("OK — all data intact" if corrupt == unreachable == 0
              else f"LOST {unreachable} pages unreachable, {corrupt} corrupt")
    print(f"  {label:28s} {status}"
          + (f"  [{', '.join(extras)}]" if extras else ""))
    return unreachable == corrupt == 0


def main() -> None:
    print(f"writing {format_bytes(WORKING_SET)} through DiLOS, then killing "
          f"one memory node:\n")

    nodes = [MemoryNode(16 * MIB, name=f"shard{i}") for i in range(2)]
    sharded_ok = run_scenario("sharded (no redundancy)",
                              ShardedMemory(nodes), victim=nodes[0])

    nodes = [MemoryNode(32 * MIB, name=f"replica{i}") for i in range(2)]
    replicated_ok = run_scenario("replicated (primary+mirror)",
                                 ReplicatedMemory(nodes), victim=nodes[0])

    nodes = [MemoryNode(16 * MIB, name=f"stripe{i}") for i in range(4)]
    parity_ok = run_scenario("parity-striped (3 data + 1 P)",
                             ParityStripedMemory(nodes), victim=nodes[1])

    print("\n-> replication pays 2x memory, parity pays 1/k extra;")
    print("   both keep an unmodified DiLOS application running through a")
    print("   memory-node crash.")
    assert not sharded_ok and replicated_ok and parity_ok


if __name__ == "__main__":
    main()
