#!/usr/bin/env python3
"""NYC-taxi analytics on far memory: DiLOS vs Fastswap vs AIFM (Figure 8).

Runs the same six-query analytics job (derive trip duration, aggregate by
passenger count, filter long trips, fare statistics, distance/fare
covariance) on a synthetic taxi-shaped data set across three systems and
two local-memory ratios, verifying that every system computes identical
answers — the compatibility story in one table.

Run:  python examples/dataframe_taxi.py
"""

from repro.harness import local_bytes_for, make_system
from repro.apps.dataframe import TaxiAnalyticsWorkload

SYSTEMS = ("fastswap", "dilos-readahead", "dilos-tcp", "aifm")
RATIOS = (0.125, 1.0)
ROWS = 1 << 16


def main() -> None:
    workload = TaxiAnalyticsWorkload(rows=ROWS)
    print(f"analytics over {ROWS:,} synthetic taxi trips "
          f"({workload.footprint_bytes // (1 << 20)} MiB of columns)\n")
    reference = None
    print(f"{'system':18s} " + " ".join(f"{int(r * 100):>3d}% local (ms)"
                                        for r in RATIOS))
    for kind in SYSTEMS:
        cells = []
        for ratio in RATIOS:
            system = make_system(
                kind, local_bytes_for(workload.footprint_bytes, ratio))
            result = (workload.run_aifm(system) if kind.startswith("aifm")
                      else workload.run(system))
            if reference is None:
                reference = result.answers
            for key, value in reference.items():
                got = result.answers[key]
                assert abs(got - value) <= 1e-6 * max(1.0, abs(value)), \
                    f"{kind} disagrees on {key}"
            cells.append(result.elapsed_us / 1000.0)
        print(f"{kind:18s} " + " ".join(f"{c:>14.2f}" for c in cells))

    print("\nanswers (identical on every system):")
    for key, value in reference.items():
        print(f"  {key:22s} {value:,.3f}")
    print("\n-> AIFM pays dereference checks even at 100% local memory;")
    print("   Fastswap collapses at 12.5%; DiLOS runs the unmodified code")
    print("   and stays close to its full-memory time (the paper's claim).")


if __name__ == "__main__":
    main()
