#!/usr/bin/env python
"""End-to-end LLM workload smoke: the exactness contracts the inference
model lives by, on the exact paths a user drives:

* **compatibility invariant** — the decoded token stream and the KV-cache
  bytes are a pure function of the request seeds: identical across
  kernels (DiLOS, Fastswap, the AIFM port), local-memory ratios, and
  the batch/scalar execution engines;
* **prefill/decode disaggregation** — every P:D split decodes the same
  stream as the single-node run, with a non-trivial KV transfer between
  the tenants, and a faulty wire changes timing but never a token;
* **parallel sweep** — the ``--jobs`` fan-out path produces measurements
  byte-identical to the serial run;
* **serving red/green** — the ``llm_flash_crowd`` preset holds TTFT p99
  inside the SLO with its token bucket and violates it without, and the
  whole run is bit-identical across two invocations.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/llm_smoke.py
"""

from __future__ import annotations

import sys

from repro.apps.llm import PD_CONFIG, LlmWorkload, PdSweepRunner, run_pd
from repro.harness import local_bytes_for, make_system
from repro.harness.experiment import sweep_ratios
from repro.harness.scenarios import build_serve_scenario
from repro.mem import batch


def _single(kind: str, ratio: float, batch_on=None):
    workload = LlmWorkload(n_requests=6, seed=31, config=PD_CONFIG,
                           prompt_min=24, prompt_max=56,
                           out_min=8, out_max=16)
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, ratio))
    if batch_on is None:
        result = workload.run(system)
    else:
        with batch.force(batch_on):
            result = workload.run(system)
    return result


def check_compatibility_invariant():
    reference = _single("dilos-readahead", 1.0)
    want = (reference.token_digest, reference.kv_digest)
    runs = [("dilos-readahead", 0.125, None), ("dilos-readahead", 0.5, None),
            ("fastswap", 0.25, None), ("aifm-rdma", 0.25, None),
            ("dilos-readahead", 0.25, True), ("dilos-readahead", 0.25, False)]
    for kind, ratio, batch_on in runs:
        result = _single(kind, ratio, batch_on)
        got = (result.token_digest, result.kv_digest)
        if got != want:
            raise AssertionError(
                f"{kind}@{ratio} (batch={batch_on}): token/KV digests "
                "diverged from the all-local DiLOS run — paging or the "
                "execution engine perturbed a byte")
    return reference


def check_pd_disaggregation(reference):
    want = (reference.token_digest, reference.kv_digest)
    for split in ("3:1", "2:2", "1:3"):
        pd = run_pd("dilos-readahead", ratio=0.25, split=split,
                    n_requests=6, seed=31)
        if (pd.token_digest, pd.kv_digest) != want:
            raise AssertionError(
                f"P:D {split}: disaggregated token stream diverged from "
                "the single-node run")
        if pd.kv_transfer_bytes == 0:
            raise AssertionError(f"P:D {split}: no KV was transferred "
                                 "between prefill and decode tenants")
    faulty = run_pd("dilos-readahead", ratio=0.25, split="1:2",
                    n_requests=6, seed=31,
                    net_faults="drop=0.02,delay=0.02,delay_us=10,seed=7")
    if (faulty.token_digest, faulty.kv_digest) != want:
        raise AssertionError("P:D under net faults: a dropped/delayed "
                             "transfer changed the decoded stream")


def check_parallel_sweep():
    splits, ratios = ["2:2", "1:3"], [0.25, 1.0]

    def grid(jobs):
        runner = PdSweepRunner("dilos-readahead", n_requests=6)
        cells = sweep_ratios("llm", runner, splits, ratios,
                             backend="sharded:2", jobs=jobs)
        return [(c.system, c.ratio, c.value, c.extra) for c in cells]

    serial, fanned = grid(None), grid(2)
    if serial != fanned:
        raise AssertionError("sweep --jobs drifted from the serial run — "
                             "the fan-out path is not byte-identical")
    return serial


def check_serving_red_green():
    first = build_serve_scenario("llm_flash_crowd").serve()
    second = build_serve_scenario("llm_flash_crowd").serve()
    if first.trace_digest != second.trace_digest \
            or first.snapshot.digest() != second.snapshot.digest():
        raise AssertionError("llm_flash_crowd drifted across two "
                             "identical runs")
    slo = first.spec.slo_us
    if first.slo_violations != 0 or first.ttft.get("p99", 0.0) >= slo:
        raise AssertionError(
            f"llm_flash_crowd: token bucket failed to hold TTFT p99 "
            f"({first.ttft.get('p99', 0):.1f} us vs {slo:g} us, "
            f"{first.slo_violations} violations)")
    red = build_serve_scenario("llm_flash_crowd", naive=True).serve()
    if red.ttft.get("p99", 0.0) <= slo:
        raise AssertionError(
            f"llm_flash_crowd: naive TTFT p99 {red.ttft.get('p99', 0):.1f} "
            f"us sits inside the {slo:g} us SLO — the overload "
            "demonstration is vacuous")
    return first, red


def main() -> int:
    reference = check_compatibility_invariant()
    print(f"compatibility: {reference.decoded_tokens} tokens identical "
          "across 3 kernels x 4 ratios x batch/scalar "
          f"(token digest {reference.token_digest[:12]})")
    check_pd_disaggregation(reference)
    print("disaggregation: 3 P:D splits + faulty wire decode the "
          "single-node stream, KV transfers engaged")
    cells = check_parallel_sweep()
    print(f"sweep: {len(cells)} grid cells byte-identical serial vs "
          "--jobs 2")
    green, red = check_serving_red_green()
    print(f"llm_flash_crowd: TTFT p99 {green.ttft['p99']:.1f} us / 0 "
          f"violations / {green.shed} shed (naive: TTFT p99 "
          f"{red.ttft['p99']:.1f} us) -- deterministic")
    print("llm smoke: compatibility invariant and serving story hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
