#!/usr/bin/env python
"""End-to-end rack smoke: sweep the placement × oversubscription grid
and check the acceptance properties of the topology layer:

* **determinism** — every cell is bit-identical across two invocations
  (request-trace digest and metrics digest both match), and the fanned
  out sweep (``jobs=2``) is byte-identical to the serial one.
* **locality-vs-load** — under a non-blocking ToR the two placements
  tie on routing, but ``locality`` never crosses the trunk while
  ``load`` does; once the ToR oversubscribes, the trunk queueing the
  ``load`` run pays shows up in its p99 relative to ``locality``'s.
* **stranding** — ``locality`` placement strands free slots when
  tenants stripe unevenly over the compute nodes; ``load`` strands at
  most a rounding remainder.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/rack_smoke.py
"""

from __future__ import annotations

import json
import sys

from repro.sim.rack import make_rack, sweep_rack

SERVE = ("poisson:rate=400k,clients=1m,slo=2ms,requests=600,"
         "seed=29,balance=round_robin")
PLACEMENTS = ["locality", "load"]
OVERSUBS = [1.0, 4.0]
FIXED = dict(tenants=6, serve=SERVE, n_keys=32)


def cell(rows, placement, oversub):
    for row in rows:
        if row["placement"] == placement and row["oversub"] == oversub:
            return row
    raise AssertionError(f"missing cell {placement}/{oversub:g}")


def check_determinism():
    serial = sweep_rack(PLACEMENTS, OVERSUBS, jobs=1, **FIXED)
    again = sweep_rack(PLACEMENTS, OVERSUBS, jobs=1, **FIXED)
    if json.dumps(serial, sort_keys=True) != json.dumps(again,
                                                       sort_keys=True):
        raise AssertionError("rack sweep drifted across two serial runs")
    fanned = sweep_rack(PLACEMENTS, OVERSUBS, jobs=2, **FIXED)
    if json.dumps(serial, sort_keys=True) != json.dumps(fanned,
                                                       sort_keys=True):
        raise AssertionError("jobs=2 sweep is not byte-identical to the "
                             "serial one")
    return serial


def check_tradeoff(rows):
    for oversub in OVERSUBS:
        locality = cell(rows, "locality", oversub)
        load = cell(rows, "load", oversub)
        if locality["trunk_crossings"] != 0:
            raise AssertionError(
                f"locality placement crossed the trunk "
                f"{locality['trunk_crossings']:.0f} times at "
                f"oversub={oversub:g} — homes are wrong")
        if load["trunk_crossings"] == 0:
            raise AssertionError(
                f"load placement never crossed the trunk at "
                f"oversub={oversub:g} — the contrast is vacuous")
    contended = cell(rows, "load", OVERSUBS[-1])
    if contended["trunk_queue_us"] <= 0:
        raise AssertionError(
            "oversubscribed trunk shows no queueing under load placement")
    if contended["p99_us"] <= cell(rows, "locality", OVERSUBS[-1])["p99_us"]:
        raise AssertionError(
            "load placement's trunk queueing did not show up in p99 vs "
            "locality under an oversubscribed ToR")


def check_stranding():
    # 6 tenants over 4 compute nodes double up two homes.
    locality = make_rack(tenants=6, placement="locality", serve=SERVE,
                         n_keys=32)
    load = make_rack(tenants=6, placement="load", serve=SERVE, n_keys=32)
    if locality.pool.stranded_slots == 0:
        raise AssertionError("uneven striping stranded nothing under "
                             "locality placement")
    if load.pool.stranded_slots >= locality.pool.stranded_slots:
        raise AssertionError(
            f"load placement stranded {load.pool.stranded_slots} slots, "
            f"not less than locality's {locality.pool.stranded_slots}")
    return locality.pool.stranded_slots, load.pool.stranded_slots


def main() -> int:
    rows = check_determinism()
    print(f"rack sweep: {len(rows)} cells deterministic, "
          "jobs=2 == serial")
    check_tradeoff(rows)
    worst = cell(rows, "load", OVERSUBS[-1])
    best = cell(rows, "locality", OVERSUBS[-1])
    print(f"oversub={OVERSUBS[-1]:g}: locality p99 {best['p99_us']:.2f} us "
          f"(0 trunk crossings) vs load p99 {worst['p99_us']:.2f} us "
          f"({worst['trunk_crossings']:.0f} crossings, trunk queue "
          f"{worst['trunk_queue_us']:.1f} us)")
    stranded_locality, stranded_load = check_stranding()
    print(f"stranding at 6 tenants / 4 compute: locality "
          f"{stranded_locality} slots vs load {stranded_load}")
    print("rack smoke: placement tradeoff holds, sweep deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
