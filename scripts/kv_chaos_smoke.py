#!/usr/bin/env python
"""End-to-end KV failover smoke: run the ``kv_failover`` golden
scenario (`repro.harness.scenarios.kv_failover`) on both redundant
backends and check the acceptance properties of the fault-tolerant KV
service under the full chaos schedule — lossy replication wire, the
lease-holding member killed mid-run, rejoin + background resilver while
the open-loop front-end keeps serving:

* the kill actually lands on the lease holder and the service fails
  over (``kv.failovers >= 1``) after the split-brain blackout
  (``kv.unavail_rejects > 0``, ``kv.unavail_us > 0``);
* failover latency is accounted and bounded by the unavailability
  window (``0 < kv.failover_us <= kv.unavail_us``);
* the rejoined member resilvers back to full service
  (``repair.pages_resilvered > 0``, ``repair.nodes_promoted == 1``,
  ``stale_slots == 0`` at the end);
* **zero lost updates**: the end-of-run audit re-reads every
  acknowledged record straight off the backend (``kv.lost_updates``
  must read 0);
* the run is **byte-identical across two invocations** — the metrics
  digest, the request-trace digest and the final clock all match.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/kv_chaos_smoke.py
"""

from __future__ import annotations

import sys

from repro.harness.scenarios import kv_failover

BACKENDS = ("replicated:3", "parity:2+1")


def run_backend(backend: str):
    cluster, report = kv_failover(backend=backend)
    snapshot = cluster.metrics()
    counters = snapshot.counters

    lost = counters.get("kv.lost_updates", 0)
    if lost != 0:
        raise AssertionError(f"{backend}: {lost} lost updates — an "
                             "acknowledged write did not survive failover")
    if counters.get("kv.failovers", 0) < 1:
        raise AssertionError(f"{backend}: the lease-holder kill never "
                             "triggered a failover — smoke is vacuous")
    if counters.get("kv.unavail_rejects", 0) <= 0:
        raise AssertionError(f"{backend}: no requests were rejected during "
                             "the blackout — the split-brain guard never "
                             "engaged")
    failover_us = counters.get("kv.failover_us", 0)
    unavail_us = counters.get("kv.unavail_us", 0)
    if not 0 < failover_us <= unavail_us:
        raise AssertionError(
            f"{backend}: failover latency unaccounted or unbounded "
            f"(failover_us={failover_us}, unavail_us={unavail_us})")
    if counters.get("repair.pages_resilvered", 0) <= 0:
        raise AssertionError(f"{backend}: the rejoined member resilvered "
                             "nothing — the journal never engaged")
    if counters.get("repair.nodes_promoted", 0) != 1:
        raise AssertionError(f"{backend}: rejoined member was never "
                             "promoted back to full service")
    if cluster.backend.stale_slots != 0:
        raise AssertionError(f"{backend}: {cluster.backend.stale_slots} "
                             "slots still stale at end of run")
    return snapshot, report, cluster.clock.now


def main() -> int:
    for backend in BACKENDS:
        snap1, report1, clock1 = run_backend(backend)
        snap2, report2, clock2 = run_backend(backend)
        if (snap1.digest() != snap2.digest()
                or report1.trace_digest != report2.trace_digest
                or clock1 != clock2):
            raise AssertionError(
                f"{backend}: same-config runs diverged:\n"
                f"  {snap1.digest()} / {report1.trace_digest} @ {clock1}\n"
                f"  {snap2.digest()} / {report2.trace_digest} @ {clock2}")
        counters = snap1.counters
        print(f"{backend}: OK — {report1.completed} requests served, "
              f"{int(counters['kv.failovers'])} failovers in "
              f"{int(counters['kv.failover_us'])} us "
              f"({int(counters['kv.unavail_rejects'])} blackout rejects), "
              f"{int(counters['repair.pages_resilvered'])} pages "
              "resilvered, 0 lost updates, deterministic")
    print("kv chaos smoke OK on both redundant backends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
