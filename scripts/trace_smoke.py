#!/usr/bin/env python
"""End-to-end trace smoke: boot a traced DiLOS, run a tiny sequential
read under memory pressure, and export + validate both trace formats.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/trace_smoke.py [output-dir]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.common.units import MIB
from repro.apps.seqrw import SequentialWorkload
from repro.harness import make_system
from repro.obs import (
    Observability,
    fault_breakdown_from_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def main(out_dir=None) -> int:
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="trace-smoke-")
    out_dir = Path(out_dir)

    ws = 2 * MIB
    obs = Observability.tracing()
    system = make_system("dilos-readahead", local_bytes=ws // 4, obs=obs)
    result = SequentialWorkload(ws).run(system, mode="read")

    events = obs.tracer.events()
    if not events:
        raise AssertionError("traced run produced no events")
    if obs.tracer.dropped:
        raise AssertionError(f"ring buffer dropped {obs.tracer.dropped} "
                             "events at smoke scale")

    # Chrome trace_event export: written only after schema + monotonic-ts
    # validation, then re-validated from the serialized form.
    chrome_path = out_dir / "trace.json"
    write_chrome_trace(obs.tracer, chrome_path)
    validate_chrome_trace(chrome_path.read_text())

    # JSONL export: one event per line, all lines parse.
    jsonl_path = out_dir / "trace.jsonl"
    count = write_jsonl(obs.tracer, jsonl_path)
    lines = jsonl_path.read_text().strip().splitlines()
    if count != len(events) or len(lines) != count:
        raise AssertionError(f"JSONL wrote {len(lines)} lines for "
                             f"{len(events)} events")
    for line in lines:
        json.loads(line)

    # The Fig.-6 cross-check: span durations vs per-component latencies.
    report = fault_breakdown_from_spans(events)
    if report["count"] != int(system.metrics()["major_faults"]):
        raise AssertionError("span count disagrees with fault.major")
    if report["count"]:
        rel = (abs(report["span_total_us"] - report["component_total_us"])
               / report["span_total_us"])
        if rel > 0.05:
            raise AssertionError(f"span/component totals diverge {rel:.1%}")

    print(f"trace smoke OK: {len(events)} events, "
          f"{report['count']} fault.major spans, "
          f"{result.gb_per_s:.2f} GB/s -> {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
