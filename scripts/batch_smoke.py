#!/usr/bin/env python
"""Batch-engine and fan-out smoke: the CI-fast version of the two
exactness contracts this repo's performance work rests on.

* **Batch == scalar.** Running the same workload with the vectorized
  batch engine (`repro.mem.batch`) forced on and forced off must produce
  the same answer, the same simulated clock, and the same canonical
  metrics digest — on the paging kernels (DiLOS, Fastswap) and on the
  AIFM object runtime's batched dereference API.
* **Parallel == serial.** The multiprocessing fan-out
  (`repro.harness.parallel.fanout`) used by ``repro sweep --jobs`` and
  ``repro perf --jobs`` must merge results that are byte-identical to a
  serial run, in the same order.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite can run the exact path CI follows; runnable standalone:

    PYTHONPATH=src python scripts/batch_smoke.py
"""

from __future__ import annotations

import sys

from repro.apps.kmeans import KMeansWorkload
from repro.harness import local_bytes_for, make_system
from repro.harness.experiment import sweep_ratios
from repro.harness.parallel import cell_seed, fanout
from repro.harness.perf import case_by_name, run_case
from repro.mem import batch


def _run_kmeans(kind: str, batch_on: bool):
    workload = KMeansWorkload(n_points=1 << 12)
    system = make_system(
        kind, local_bytes_for(workload.footprint_bytes, 0.5))
    with batch.force(batch_on):
        result = workload.run(system)
    snapshot = system.metrics()
    return result.elapsed_us, snapshot.digest()


def check_batch_scalar_paging(kind: str) -> None:
    on = _run_kmeans(kind, batch_on=True)
    off = _run_kmeans(kind, batch_on=False)
    if on != off:
        raise AssertionError(
            f"{kind}: batch and scalar runs diverged: {on} != {off}")
    print(f"  {kind:<18} batch == scalar  "
          f"(sim {on[0] / 1000:.3f} ms, digest {on[1][:12]})")


def check_batch_scalar_aifm() -> None:
    """Batched dereference must account exactly like the scalar loop."""
    from repro.baselines.aifm.arrays import RemArray

    def run(batched: bool):
        system = make_system("aifm", 256 * 1024)
        array = RemArray(system, count=512, item_size=64)
        indices = [(i * 7) % array.count for i in range(256)]
        payload = [bytes([i & 0xFF]) * 64 for i in range(256)]
        if batched:
            array.set_batch(indices, payload)
            data = array.get_batch(indices)
        else:
            for index, item in zip(indices, payload):
                array.set(index, item)
            data = [array.get(index) for index in indices]
        return data, system.clock.now, system.metrics().digest()

    on, off = run(True), run(False)
    if on != off:
        raise AssertionError(
            f"aifm: batched deref diverged from scalar: "
            f"{on[1:]} != {off[1:]}")
    print(f"  {'aifm':<18} batch == scalar  "
          f"(sim {on[1] / 1000:.3f} ms, digest {on[2][:12]})")


def check_parallel_sweep() -> None:
    from repro.cli import _SweepRunner

    def grid(jobs):
        measurements = sweep_ratios(
            "kmeans", _SweepRunner("kmeans", 1 << 12),
            ["fastswap", "dilos-readahead"], [0.5, 1.0], jobs=jobs)
        return [(m.system, m.ratio, m.value, m.extra["metrics"])
                for m in measurements]

    serial, parallel = grid(None), grid(2)
    if serial != parallel:
        raise AssertionError("sweep fan-out diverged from the serial grid")
    print(f"  sweep --jobs 2     == serial  ({len(serial)} cells)")


def check_parallel_perf() -> None:
    names = ["quicksort_dilos", "seqscan_aifm"]
    serial = [run_case(case_by_name(name), 1) for name in names]
    from repro.harness.perf import _run_case_cell
    parallel = fanout(_run_case_cell, [(name, 1) for name in names], jobs=2)
    for s, p in zip(serial, parallel):
        if (s.name, s.sim_us, s.ops, s.checksum) != \
                (p.name, p.sim_us, p.ops, p.checksum):
            raise AssertionError(
                f"perf fan-out diverged on {s.name}: "
                f"{s.checksum} != {p.checksum}")
    print(f"  perf --jobs 2      == serial  ({len(names)} cases)")


def check_cell_seeds() -> None:
    """Seeds depend on cell identity only, never on scheduling."""
    a = cell_seed("kmeans", "dilos-readahead", 0.5)
    b = cell_seed("kmeans", "dilos-readahead", 0.5)
    c = cell_seed("kmeans", "dilos-readahead", 1.0)
    if a != b or a == c:
        raise AssertionError("cell_seed is not a stable pure function")
    print(f"  cell seeds         deterministic (example {a})")


def main() -> int:
    print("batch/fan-out smoke:")
    check_batch_scalar_paging("dilos-readahead")
    check_batch_scalar_paging("fastswap")
    check_batch_scalar_aifm()
    check_cell_seeds()
    check_parallel_sweep()
    check_parallel_perf()
    print("batch smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
