#!/usr/bin/env python3
"""Run the wall-clock perf suite and write ``BENCH_perf.json``.

Thin wrapper over :mod:`repro.harness.perf` for environments where the
package is not installed (CI checkouts): it puts ``src/`` on the path and
forwards all arguments. Equivalent to ``python -m repro perf``::

    python scripts/perf_report.py                 # full run + gate
    python scripts/perf_report.py --smoke         # 1-iteration sanity
    python scripts/perf_report.py --help          # all options
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness.perf import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
