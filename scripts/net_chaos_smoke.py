#!/usr/bin/env python
"""End-to-end network-chaos smoke: run a seeded sequential workload on
all three kernels with >= 1% drop + corruption injected, and check the
acceptance properties of the reliable transport:

* every kernel completes with **zero data loss** (full verification);
* the fault plan actually bit (``net.retry > 0``) and no verb ever
  exhausted its budget (``net.giveup == 0``);
* the run is **byte-identical across two invocations** with the same
  seed — timeline, retry counts, and wire totals all match.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/net_chaos_smoke.py
"""

from __future__ import annotations

import sys

from repro.common.units import MIB
from repro.apps.seqrw import SequentialWorkload
from repro.harness import make_system

#: The degraded wire every kernel must survive (docs/RELIABILITY.md).
FAULT_SPEC = "drop=0.015,corrupt=0.01,seed=11,max_consecutive=3"

METRIC_KEYS = ("net.ops", "net.retry", "net.timeout",
               "net.corrupt_detected", "net.failover", "net.giveup",
               "net.bytes_read", "net.bytes_written", "fault.major")


def _fingerprint(system, elapsed_us):
    metrics = system.metrics().as_flat_dict()
    return tuple([round(elapsed_us, 6)]
                 + [metrics.get(key, 0) for key in METRIC_KEYS])


def run_paging(kind: str):
    """Seeded seqrw (read mode verifies every byte of every page)."""
    workload = SequentialWorkload(2 * MIB)
    system = make_system(kind, local_bytes=workload.footprint_bytes // 4,
                         net_faults=FAULT_SPEC)
    result = workload.run(system, mode="read", verify=True)
    return _fingerprint(system, result.elapsed_us)


def run_aifm():
    """The seqrw equivalent for object-granular far memory: sequential
    writes then a verified sequential read sweep."""
    runtime = make_system("aifm", local_bytes=256 * 1024,
                          net_faults=FAULT_SPEC)
    count, size = 384, 2048
    ptrs = [runtime.allocate(size, bytes([i % 251]) * size)
            for i in range(count)]
    for i, ptr in enumerate(ptrs):
        if ptr.read() != bytes([i % 251]) * size:
            raise AssertionError(f"AIFM object {i} lost bytes under "
                                 f"{FAULT_SPEC}")
    return _fingerprint(runtime, runtime.clock.now)


def main() -> int:
    runs = [("dilos-readahead", run_paging),
            ("fastswap", run_paging),
            ("aifm", run_aifm)]
    for kind, runner in runs:
        args = (kind,) if runner is run_paging else ()
        first = runner(*args)
        second = runner(*args)
        if first != second:
            raise AssertionError(
                f"{kind}: same-seed runs diverged:\n  {first}\n  {second}")
        named = dict(zip(("elapsed",) + METRIC_KEYS, first))
        if not named["net.retry"] > 0:
            raise AssertionError(f"{kind}: fault plan never bit "
                                 f"(net.retry == 0) — smoke is vacuous")
        if named["net.giveup"] != 0:
            raise AssertionError(f"{kind}: {named['net.giveup']} verbs "
                                 "exhausted the retry budget")
        print(f"{kind}: OK — {named['net.ops']:.0f} verbs, "
              f"{named['net.retry']:.0f} retries "
              f"({named['net.timeout']:.0f} timeouts, "
              f"{named['net.corrupt_detected']:.0f} corrupt), "
              f"deterministic, zero data loss")
    print(f"net chaos smoke OK under '{FAULT_SPEC}'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
