#!/usr/bin/env python
"""End-to-end repair smoke: run the node-rejoin lifecycle demo
(`repro.harness.scenarios.repair_demo`) on both redundant backends and
check the acceptance properties of the repair subsystem:

* degraded writes are journaled while a member is down
  (``stale_after_degraded > 0``) and the resilver drains the journal
  (``repair.pages_resilvered`` matches, ``repair.nodes_promoted == 1``);
* the scrubber detects and repairs the injected at-rest divergence
  (``scrub.mismatches == scrub.repaired == 1``, nothing quarantined);
* after a *second* (different) member failure every byte reads back
  correctly — the demo itself raises on any stale byte;
* the run is **byte-identical across two invocations** — phase timings,
  counters, and the metrics digest all match.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/repair_smoke.py
"""

from __future__ import annotations

import sys

from repro.harness.scenarios import repair_demo

BACKENDS = ("replicated:2", "parity:3+1")


def run_backend(backend: str):
    result = repair_demo(backend=backend)
    counters = result["counters"]
    if result["stale_after_degraded"] <= 0:
        raise AssertionError(f"{backend}: no writes were journaled while "
                             "the member was down — smoke is vacuous")
    if counters["repair.pages_resilvered"] != result["stale_after_degraded"]:
        raise AssertionError(
            f"{backend}: resilvered {counters['repair.pages_resilvered']} "
            f"pages but {result['stale_after_degraded']} were journaled")
    if counters["repair.nodes_promoted"] != 1:
        raise AssertionError(f"{backend}: rejoined member was never "
                             "promoted back to full service")
    if counters["scrub.mismatches"] != 1 or counters["scrub.repaired"] != 1:
        raise AssertionError(
            f"{backend}: scrubber missed the injected rot "
            f"(mismatches={counters['scrub.mismatches']}, "
            f"repaired={counters['scrub.repaired']})")
    if counters["scrub.quarantined"] != 0:
        raise AssertionError(f"{backend}: scrub quarantined "
                             f"{counters['scrub.quarantined']} pages")
    return result


def main() -> int:
    for backend in BACKENDS:
        first = run_backend(backend)
        second = run_backend(backend)
        if (first["digest"] != second["digest"]
                or first["counters"] != second["counters"]
                or first["time_us"] != second["time_us"]):
            raise AssertionError(
                f"{backend}: same-config runs diverged:\n"
                f"  {first['digest']} @ {first['time_us']}\n"
                f"  {second['digest']} @ {second['time_us']}")
        print(f"{backend}: OK — {first['stale_after_degraded']} pages "
              f"journaled, resilvered in {first['resilver_us'] / 1000:.2f} "
              f"ms, rot scrubbed in {first['scrub_us'] / 1000:.2f} ms, "
              f"{first['verified_pages']} pages verified after the second "
              "failure, deterministic")
    print("repair smoke OK on both redundant backends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
