#!/usr/bin/env python
"""End-to-end serving smoke: run the open-loop presets
(`repro.harness.scenarios.SERVE_SCENARIOS`) and check the acceptance
properties of the serving layer:

* **flash_crowd** — depth admission keeps every completed request inside
  the 1 ms SLO (zero ``serve.slo_violations``) while shedding under
  overload; the naive no-admission contrast run violates the SLO for a
  large fraction of requests. This is the load-shedding red/green the
  serving layer exists for.
* **slow_tenant_isolation** — least-outstanding routing gives the
  memory-starved laggard a small residual share and keeps the fleet p99
  far below the round-robin contrast run's.
* every preset is **bit-identical across two invocations** — the
  request-trace digest and the metrics digest both match.

Importable (``main()`` returns 0 on success, raising on any failure) so
the test suite runs the exact path a user follows; runnable standalone:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import sys

from repro.harness.scenarios import build_serve_scenario


def run_once(name: str, naive: bool = False):
    cluster = build_serve_scenario(name, naive=naive)
    return cluster.serve()


def check_determinism(name: str):
    first = run_once(name)
    second = run_once(name)
    if first.trace_digest != second.trace_digest:
        raise AssertionError(f"{name}: request-trace digest drifted across "
                             "two identical runs")
    if first.snapshot.digest() != second.snapshot.digest():
        raise AssertionError(f"{name}: metrics digest drifted across two "
                             "identical runs")
    return first


def check_flash_crowd():
    green = check_determinism("flash_crowd")
    red = run_once("flash_crowd", naive=True)
    slo = green.spec.slo_us
    if green.slo_violations != 0:
        raise AssertionError(
            f"flash_crowd: admission run violated the SLO "
            f"{green.slo_violations} times (p99 "
            f"{green.latency.get('p99', 0):.1f} us vs {slo:g} us)")
    if green.shed == 0:
        raise AssertionError("flash_crowd: nothing was shed under a 30x "
                             "overload burst — admission is not engaging")
    if red.latency.get("p99", 0.0) <= slo:
        raise AssertionError(
            f"flash_crowd: naive run's p99 "
            f"{red.latency.get('p99', 0):.1f} us sits inside the {slo:g} us "
            "SLO — the overload demonstration is vacuous")
    if red.violation_rate <= 0.5:
        raise AssertionError(
            f"flash_crowd: naive violation rate {red.violation_rate:.3f} "
            "is too low for an overload story")
    if green.goodput_rps <= red.goodput_rps:
        raise AssertionError(
            "flash_crowd: shedding early should beat serving late on "
            f"goodput ({green.goodput_rps:.0f} <= {red.goodput_rps:.0f})")
    return green, red


def check_slow_tenant():
    green = check_determinism("slow_tenant_isolation")
    red = run_once("slow_tenant_isolation", naive=True)
    if not green.per_tenant["laggard"] < min(green.per_tenant["fast1"],
                                             green.per_tenant["fast2"]):
        raise AssertionError(
            "slow_tenant_isolation: least-outstanding did not route "
            f"around the laggard ({green.per_tenant})")
    if green.latency.get("p99", 0.0) >= red.latency.get("p99", 1.0):
        raise AssertionError(
            "slow_tenant_isolation: least-outstanding p99 "
            f"{green.latency.get('p99', 0):.1f} us is not below "
            f"round-robin's {red.latency.get('p99', 0):.1f} us")
    return green, red


def main() -> int:
    green, red = check_flash_crowd()
    print(f"flash_crowd: p99 {green.latency['p99']:.1f} us / "
          f"0 violations / {green.shed} shed (naive: p99 "
          f"{red.latency['p99']:.1f} us, violation rate "
          f"{red.violation_rate:.3f}) -- deterministic")
    green, red = check_slow_tenant()
    print(f"slow_tenant_isolation: p99 {green.latency['p99']:.1f} us, "
          f"laggard served {green.per_tenant['laggard']} "
          f"(round-robin: p99 {red.latency['p99']:.1f} us) "
          "-- deterministic")
    hot = check_determinism("hot_key_skew")
    shares = sorted(hot.per_tenant.values())
    if shares[-1] <= 2 * shares[0]:
        raise AssertionError(
            "hot_key_skew: consistent hashing did not concentrate the "
            f"hot head ({hot.per_tenant})")
    print(f"hot_key_skew: hottest tenant served {shares[-1]} of "
          f"{hot.completed} -- deterministic")
    print("serve smoke: all presets deterministic, SLO story holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
