"""Open-loop serving over disaggregated memory (millions of simulated
clients on the simulated clock).

The package turns the harness from "run this workload to completion" into
"serve this request stream under an SLO": deterministic arrival processes
(:mod:`~repro.serve.arrivals`), admission control
(:mod:`~repro.serve.admission`), pluggable load balancing
(:mod:`~repro.serve.balancer`) and an SLO-accounting frontend
(:mod:`~repro.serve.frontend`) that drives
:class:`~repro.sim.tenancy.ComputeCluster` service tenants and reports
p50/p99/p999, goodput and SLO-violation rate through canonical
``serve.*`` instruments. Everything is a pure function of the
:class:`~repro.serve.spec.ServeSpec` — same spec, same trace digest, same
metrics digest. See ``docs/SERVING.md`` for the tour.
"""

# Import order matters: spec defines the registries, arrivals populates
# the arrival registry (ServeSpec validation consults it), then the
# policy layers, then the frontend that composes them.
from repro.serve.spec import (
    ARRIVAL_SPEC_EXAMPLES,
    Arrival,
    ServeSpec,
    arrival_kinds,
    coerce_serve_spec,
    make_arrivals,
    parse_duration_us,
    parse_scaled,
    register_arrival,
)
from repro.serve import arrivals as arrivals  # noqa: F401 (registers kinds)
from repro.serve.admission import (
    AdmissionPolicy,
    NoAdmission,
    QueueDepthAdmission,
    TokenBucketAdmission,
    admission_kinds,
    make_admission,
    register_admission,
)
from repro.serve.balancer import (
    Balancer,
    ConsistentHashBalancer,
    LeastOutstandingBalancer,
    RoundRobinBalancer,
    balancer_kinds,
    make_balancer,
    register_balancer,
)
from repro.serve.frontend import (
    RequestSampler,
    ServeFrontend,
    ServeReport,
    serve,
)

__all__ = [
    "ARRIVAL_SPEC_EXAMPLES",
    "AdmissionPolicy",
    "Arrival",
    "Balancer",
    "ConsistentHashBalancer",
    "LeastOutstandingBalancer",
    "NoAdmission",
    "QueueDepthAdmission",
    "RequestSampler",
    "RoundRobinBalancer",
    "ServeFrontend",
    "ServeReport",
    "ServeSpec",
    "TokenBucketAdmission",
    "admission_kinds",
    "arrival_kinds",
    "balancer_kinds",
    "coerce_serve_spec",
    "make_admission",
    "make_arrivals",
    "make_balancer",
    "parse_duration_us",
    "parse_scaled",
    "register_admission",
    "register_arrival",
    "register_balancer",
    "serve",
]
