"""Load-balancing policies: route each admitted request to a tenant.

Balancers see the tenant names and, per request, the routing key plus
every tenant's outstanding queue depth (in virtual time). Three built-in
policies cover the classic serving trade-offs:

* ``round_robin`` — strict rotation; fair in request *count*, blind to
  queue depth, so one slow tenant drags the whole tail (the
  ``slow_tenant_isolation`` preset shows this).
* ``least`` — least-outstanding: join the shortest queue (stable
  tie-break by enrollment order). The standard fix for heterogeneous
  service times.
* ``hash`` — consistent hashing of the request's routing key over a
  sha256 ring with virtual nodes. Gives key affinity (all requests for a
  key land on one tenant — cache-friendly) at the cost of skew when the
  keyspace is hot (the ``hot_key_skew`` preset).

All policies are deterministic: same tenants, same request sequence,
same routing — the sha256 ring never depends on ``hash()`` randomization.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, List, Sequence, Tuple


class Balancer:
    """Base router; subclasses override :meth:`pick`."""

    name = "balancer"

    def __init__(self, tenants: Sequence[str]) -> None:
        if not tenants:
            raise ValueError("balancer needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ValueError("duplicate tenant names")
        self.tenants = tuple(tenants)

    def pick(self, routing_key: bytes, depths: Sequence[int]) -> int:
        """Index (into the tenant tuple) to route this request to.

        ``depths[i]`` is tenant *i*'s outstanding queue depth at the
        arrival instant.
        """
        raise NotImplementedError


class RoundRobinBalancer(Balancer):
    """Strict rotation over the tenants, ignoring load and keys."""

    name = "round_robin"

    def __init__(self, tenants: Sequence[str]) -> None:
        super().__init__(tenants)
        self._next = 0

    def pick(self, routing_key: bytes, depths: Sequence[int]) -> int:
        index = self._next
        self._next = (self._next + 1) % len(self.tenants)
        return index


class LeastOutstandingBalancer(Balancer):
    """Join the shortest queue; ties break toward earlier enrollment."""

    name = "least"

    def pick(self, routing_key: bytes, depths: Sequence[int]) -> int:
        return min(range(len(self.tenants)), key=lambda i: (depths[i], i))


class ConsistentHashBalancer(Balancer):
    """Consistent hashing with virtual nodes on a sha256 ring.

    Each tenant owns ``replicas`` points on a 64-bit ring; a request goes
    to the owner of the first point at or after the hash of its routing
    key. Adding/removing one tenant only remaps ~1/N of the keyspace —
    the property that makes the policy standard for cache tiers.
    """

    name = "hash"

    def __init__(self, tenants: Sequence[str], replicas: int = 64) -> None:
        super().__init__(tenants)
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        points: List[Tuple[int, int]] = []
        for index, tenant in enumerate(self.tenants):
            for replica in range(replicas):
                token = f"{tenant}#{replica}".encode()
                points.append((self._point(token), index))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owner = [i for _, i in points]

    @staticmethod
    def _point(data: bytes) -> int:
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def pick(self, routing_key: bytes, depths: Sequence[int]) -> int:
        slot = bisect.bisect_left(self._ring, self._point(routing_key))
        if slot == len(self._ring):
            slot = 0
        return self._owner[slot]


BalancerFactory = Callable[[Sequence[str]], Balancer]

_BALANCERS: Dict[str, BalancerFactory] = {}


def register_balancer(name: str) -> Callable[[BalancerFactory],
                                             BalancerFactory]:
    """Register a balancer factory under ``name`` (decorator)."""
    def deco(factory: BalancerFactory) -> BalancerFactory:
        if name in _BALANCERS:
            raise ValueError(f"balancer {name!r} already registered")
        _BALANCERS[name] = factory
        return factory
    return deco


def balancer_kinds() -> Tuple[str, ...]:
    """All registered balancer names, in registration order."""
    return tuple(_BALANCERS)


register_balancer("round_robin")(RoundRobinBalancer)
register_balancer("least")(LeastOutstandingBalancer)
register_balancer("hash")(ConsistentHashBalancer)


def make_balancer(name: str, tenants: Sequence[str]) -> Balancer:
    """Build the named balancer over ``tenants``."""
    try:
        factory = _BALANCERS[name]
    except KeyError:
        raise ValueError(f"unknown balancer {name!r}; pick from "
                         f"{balancer_kinds()}") from None
    return factory(tenants)


__all__ = [
    "Balancer",
    "ConsistentHashBalancer",
    "LeastOutstandingBalancer",
    "RoundRobinBalancer",
    "balancer_kinds",
    "make_balancer",
    "register_balancer",
]
