"""Admission control: decide, per arrival, whether to serve or shed.

Open-loop overload has no natural backpressure — arrivals keep coming at
the process rate no matter how far behind the servers fall, so an
unprotected queue grows without bound and the p99 latency grows with it.
Admission control trades a little throughput (shed requests count on
``serve.shed``) for a bounded queue and therefore a bounded tail: the
flash-crowd preset demonstrates exactly this, with the naive no-admission
run violating the SLO that the depth-limited run meets.

Policies parse from slash-separated spec strings, the compact form used
inside ``serve=`` specs (commas are taken by ``key=value`` pairs)::

    "none"          -> NoAdmission
    "depth/64"      -> QueueDepthAdmission(max_depth=64)
    "bucket/5k/32"  -> TokenBucketAdmission(rate_rps=5000, burst=32)

Every policy is deterministic state on virtual time: same arrival stream,
same admit/shed sequence.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.serve.spec import parse_scaled


class AdmissionPolicy:
    """Base: admit everything; subclasses override :meth:`admit`."""

    #: Parsed-spec label, used in reports (`"none"`, `"depth/64"`, ...).
    label = "none"

    def admit(self, t_us: float, queue_depth: int) -> bool:
        """True to serve the arrival at ``t_us``, False to shed it.

        ``queue_depth`` is the chosen tenant's outstanding request count
        at the arrival instant (virtual time).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all state (fresh policy for a fresh run)."""


class NoAdmission(AdmissionPolicy):
    """The naive baseline: every arrival is served, queues be damned."""

    def admit(self, t_us: float, queue_depth: int) -> bool:
        return True


class QueueDepthAdmission(AdmissionPolicy):
    """Shed when the chosen tenant's outstanding queue is full."""

    def __init__(self, max_depth: int) -> None:
        if max_depth <= 0:
            raise ValueError("admission depth must be positive")
        self.max_depth = max_depth
        self.label = f"depth/{max_depth}"

    def admit(self, t_us: float, queue_depth: int) -> bool:
        return queue_depth < self.max_depth


class TokenBucketAdmission(AdmissionPolicy):
    """Classic token bucket on virtual time: sustained ``rate_rps`` with
    bursts of up to ``burst`` back-to-back admissions."""

    def __init__(self, rate_rps: float, burst: int) -> None:
        if rate_rps <= 0:
            raise ValueError("token bucket rate must be positive")
        if burst <= 0:
            raise ValueError("token bucket burst must be positive")
        self.rate_per_us = rate_rps / 1e6
        self.burst = float(burst)
        self.label = f"bucket/{rate_rps:g}/{burst}"
        self._tokens = self.burst
        self._last_us = 0.0

    def admit(self, t_us: float, queue_depth: int) -> bool:
        self._tokens = min(
            self.burst,
            self._tokens + (t_us - self._last_us) * self.rate_per_us)
        self._last_us = t_us
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def reset(self) -> None:
        self._tokens = self.burst
        self._last_us = 0.0


AdmissionFactory = Callable[[Sequence[str]], AdmissionPolicy]

_ADMISSIONS: Dict[str, AdmissionFactory] = {}


def register_admission(kind: str) -> Callable[[AdmissionFactory],
                                              AdmissionFactory]:
    """Register an admission factory under ``kind`` (decorator)."""
    def deco(factory: AdmissionFactory) -> AdmissionFactory:
        if kind in _ADMISSIONS:
            raise ValueError(f"admission kind {kind!r} already registered")
        _ADMISSIONS[kind] = factory
        return factory
    return deco


def admission_kinds() -> Tuple[str, ...]:
    """All registered admission kinds, in registration order."""
    return tuple(_ADMISSIONS)


@register_admission("none")
def _make_none(args: Sequence[str]) -> AdmissionPolicy:
    if args:
        raise ValueError("admission 'none' takes no arguments")
    return NoAdmission()


@register_admission("depth")
def _make_depth(args: Sequence[str]) -> AdmissionPolicy:
    if len(args) != 1:
        raise ValueError("admission 'depth' needs exactly one argument, "
                         "e.g. 'depth/64'")
    return QueueDepthAdmission(int(parse_scaled(args[0], "admission depth")))


@register_admission("bucket")
def _make_bucket(args: Sequence[str]) -> AdmissionPolicy:
    if len(args) != 2:
        raise ValueError("admission 'bucket' needs rate and burst, "
                         "e.g. 'bucket/5k/32'")
    return TokenBucketAdmission(
        parse_scaled(args[0], "token bucket rate"),
        int(parse_scaled(args[1], "token bucket burst")))


def make_admission(spec: str) -> AdmissionPolicy:
    """Parse a slash-separated admission spec (``"depth/64"``, ...)."""
    head, *args = spec.strip().split("/")
    try:
        factory = _ADMISSIONS[head]
    except KeyError:
        raise ValueError(f"unknown admission policy {head!r}; pick from "
                         f"{admission_kinds()}") from None
    return factory(args)


__all__ = [
    "AdmissionPolicy",
    "NoAdmission",
    "QueueDepthAdmission",
    "TokenBucketAdmission",
    "admission_kinds",
    "make_admission",
    "register_admission",
]
