"""The open-loop serving frontend: arrivals -> admission -> balancer ->
tenant services, with SLO accounting in canonical ``serve.*`` metrics.

The frontend reconciles two timelines:

* The cluster's **shared clock** is a *busy clock*: it advances only
  while some service executes (faults, network round-trips, CPU cycles),
  exactly as in the closed-loop harness, so background machinery
  (cleaners, repair, scrub) stays bit-for-bit deterministic.
* Each tenant additionally keeps a **virtual serving timeline**. An
  arrival at virtual time ``a`` whose service work measures ``d`` µs of
  shared-clock time starts at ``start = max(a, tenant_ready)`` and
  completes at ``start + d``; ``tenant_ready`` advances to the
  completion. Request latency is ``completion - a`` — real queueing
  delay under overload, without ever rewinding the shared clock.

Queue depth at an arrival is the number of requests already routed to
the chosen tenant whose virtual completions are still in the future —
the quantity admission control bounds and the ``least`` balancer
minimizes.

Every run also folds a canonical line per request into a SHA-256
**trace digest** (arrival time, client, tenant, op, admit/shed,
latency). Two runs of the same spec must produce identical digests; the
CLI's determinism gate replays each preset twice and fails on drift.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.apps.api import Request, Service
from repro.obs import MetricsSnapshot
from repro.serve.admission import AdmissionPolicy, make_admission
from repro.serve.balancer import Balancer, make_balancer
from repro.serve.spec import Arrival, ServeSpec, make_arrivals

#: A request sampler: seeded rng -> next request (the workload model).
RequestSampler = Callable[[random.Random], Request]


@dataclass
class ServeReport:
    """Everything one open-loop run produced, ready for assertions."""

    spec: ServeSpec
    offered: int
    admitted: int
    shed: int
    completed: int
    errors: int
    goodput: int
    slo_violations: int
    #: Virtual makespan: last arrival or last completion, whichever is
    #: later. The denominator for the ``*_rps`` rates.
    elapsed_us: float
    #: SHA-256 over the canonical per-request trace lines.
    trace_digest: str
    #: ``count/mean/min/max/p50/p99/p999`` of request latency (µs).
    latency: Dict[str, float]
    #: The merged cluster snapshot taken at the end of the run.
    snapshot: MetricsSnapshot
    #: Requests routed to each tenant (admitted only).
    per_tenant: Dict[str, int] = field(default_factory=dict)
    #: ``count/mean/.../p99`` of time-to-first-token (µs), queueing
    #: delay included — populated only by token services (llm) whose
    #: responses carry ``ttft_us`` in their value dict.
    ttft: Dict[str, float] = field(default_factory=dict)
    #: Same shape for time-per-output-token (µs, decode-side only).
    tpot: Dict[str, float] = field(default_factory=dict)

    @property
    def violation_rate(self) -> float:
        """Fraction of completed requests that missed the SLO."""
        return self.slo_violations / self.completed if self.completed else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def offered_rps(self) -> float:
        return self.offered / (self.elapsed_us / 1e6) if self.elapsed_us else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.goodput / (self.elapsed_us / 1e6) if self.elapsed_us else 0.0

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (report tables, tests)."""
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "completed": float(self.completed),
            "errors": float(self.errors),
            "goodput": float(self.goodput),
            "slo_violations": float(self.slo_violations),
            "violation_rate": self.violation_rate,
            "shed_rate": self.shed_rate,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "p50_us": self.latency.get("p50", 0.0),
            "p99_us": self.latency.get("p99", 0.0),
            "p999_us": self.latency.get("p999", 0.0),
            "ttft_p99_us": self.ttft.get("p99", 0.0),
            "tpot_p99_us": self.tpot.get("p99", 0.0),
        }


class ServeFrontend:
    """Drive one open-loop run against a cluster's service tenants.

    Args:
        cluster: a :class:`~repro.sim.tenancy.ComputeCluster` whose
            service tenants (enrolled via ``add_service``) will receive
            the requests.
        spec: the :class:`~repro.serve.spec.ServeSpec` describing the
            arrival process, admission policy, balancer and SLO.
        sampler: request factory; defaults to the first service tenant's
            ``sample_request`` (all built-in services provide one). All
            tenants should serve the same keyspace when routing by
            ``hash``, or affinity is meaningless.
    """

    def __init__(self, cluster: Any, spec: ServeSpec,
                 sampler: Optional[RequestSampler] = None) -> None:
        self.cluster = cluster
        self.spec = spec
        self._tenants = [t for t in cluster.tenants
                         if isinstance(t.extra.get("service"), Service)]
        if not self._tenants:
            raise RuntimeError(
                "no service tenants enrolled; add them with "
                "ComputeCluster.add_service(...) before serving")
        self._services: List[Service] = [t.extra["service"]
                                         for t in self._tenants]
        if sampler is None:
            head = self._services[0]
            sample = getattr(head, "sample_request", None)
            if not callable(sample):
                raise RuntimeError(
                    f"service {head.name!r} has no sample_request; pass an "
                    "explicit sampler")
            sampler = sample
        self._sampler = sampler
        registry = cluster.registry
        self._offered = registry.counter("serve.offered")
        self._admitted = registry.counter("serve.admitted")
        self._shed = registry.counter("serve.shed")
        self._completed = registry.counter("serve.completed")
        self._errors = registry.counter("serve.errors")
        self._violations = registry.counter("serve.slo_violations")
        self._goodput = registry.counter("serve.goodput")
        self._latency = registry.log_histogram("serve.latency_us")
        self._depth_hist = registry.log_histogram("serve.queue_depth")
        # Token-level SLO metrics; only populated when a service's
        # responses carry ttft_us/tpot_us in their value dict (llm).
        self._ttft = registry.log_histogram("serve.ttft_us")
        self._tpot = registry.log_histogram("serve.tpot_us")
        self._offered_rps = registry.gauge("serve.offered_rps")
        self._goodput_rps = registry.gauge("serve.goodput_rps")
        for tenant in self._tenants:
            registry.counter(f"tenant.{tenant.name}.served")

    def _reset_instruments(self) -> None:
        """Zero every instrument this frontend owns.

        The cluster registry shares instruments by name, so a second
        ``cluster.serve()`` on the same cluster would otherwise keep
        accumulating into the first run's ``serve.*`` counters and
        double-count the snapshot. Each run reports itself only.
        """
        for inst in (self._offered, self._admitted, self._shed,
                     self._completed, self._errors, self._violations,
                     self._goodput, self._latency, self._depth_hist,
                     self._ttft, self._tpot):
            inst.reset()
        self._offered_rps.set(0.0)
        self._goodput_rps.set(0.0)
        registry = self.cluster.registry
        for tenant in self._tenants:
            registry.counter(f"tenant.{tenant.name}.served").reset()

    def run(self) -> ServeReport:
        """Play the whole arrival stream; returns the run's report."""
        self._reset_instruments()
        spec = self.spec
        admission: AdmissionPolicy = make_admission(spec.admission)
        admission.reset()
        balancer: Balancer = make_balancer(
            spec.balance, [t.name for t in self._tenants])
        rng = random.Random(spec.seed + 1)
        clock = self.cluster.clock
        registry = self.cluster.registry
        n = len(self._tenants)
        ready = [0.0] * n
        queues: List[Deque[float]] = [deque() for _ in range(n)]
        served = [0] * n
        trace = hashlib.sha256()
        goodput = errors = violations = shed = admitted = 0
        last_arrival = 0.0

        for arrival in make_arrivals(spec):
            last_arrival = arrival.t_us
            request = self._sampler(rng)
            self._offered.add()
            depths = self._depths(queues, arrival.t_us)
            index = balancer.pick(request.routing_key(), depths)
            depth = depths[index]
            self._depth_hist.record(float(depth))
            tenant = self._tenants[index]
            if not admission.admit(arrival.t_us, depth):
                shed += 1
                self._shed.add()
                self._trace_line(trace, arrival, tenant.name, request,
                                 admitted=False, latency_us=0.0)
                continue
            admitted += 1
            self._admitted.add()
            t0 = clock.now
            response = self._services[index].handle(request)
            duration = clock.now - t0
            start = max(arrival.t_us, ready[index])
            completion = start + duration
            ready[index] = completion
            queues[index].append(completion)
            served[index] += 1
            registry.add(f"tenant.{tenant.name}.served")
            latency = completion - arrival.t_us
            self._completed.add()
            self._latency.record(latency)
            if isinstance(response.value, dict) \
                    and "ttft_us" in response.value:
                # TTFT as the client sees it: virtual queueing delay
                # before the tenant starts, plus prefill + first decode.
                self._ttft.record((start - arrival.t_us)
                                  + response.value["ttft_us"])
                self._tpot.record(response.value.get("tpot_us", 0.0))
            if not response.ok:
                errors += 1
                self._errors.add()
            if latency > spec.slo_us:
                violations += 1
                self._violations.add()
            elif response.ok:
                goodput += 1
                self._goodput.add()
            self._trace_line(trace, arrival, tenant.name, request,
                             admitted=True, latency_us=latency)

        elapsed = max([last_arrival] + ready)
        offered = spec.requests
        self._offered_rps.set(
            offered / (elapsed / 1e6) if elapsed else 0.0)
        self._goodput_rps.set(
            goodput / (elapsed / 1e6) if elapsed else 0.0)
        return ServeReport(
            spec=spec,
            offered=offered,
            admitted=admitted,
            shed=shed,
            completed=admitted,
            errors=errors,
            goodput=goodput,
            slo_violations=violations,
            elapsed_us=elapsed,
            trace_digest=trace.hexdigest(),
            latency=dict(self._latency.summary()),
            snapshot=self.cluster.metrics(),
            per_tenant={t.name: served[i]
                        for i, t in enumerate(self._tenants)},
            ttft=dict(self._ttft.summary()),
            tpot=dict(self._tpot.summary()),
        )

    @staticmethod
    def _depths(queues: List[Deque[float]], now_us: float) -> List[int]:
        """Outstanding request count per tenant at virtual time ``now``."""
        depths = []
        for queue in queues:
            while queue and queue[0] <= now_us:
                queue.popleft()
            depths.append(len(queue))
        return depths

    @staticmethod
    def _trace_line(trace: "hashlib._Hash", arrival: Arrival, tenant: str,
                    request: Request, admitted: bool,
                    latency_us: float) -> None:
        # repr() of a float is its shortest round-trip form — stable
        # across runs and platforms, which the determinism gate relies on.
        line = (f"{arrival.t_us!r}|{arrival.client_id}|{tenant}|"
                f"{request.op}|{request.routing_key().hex()}|"
                f"{'A' if admitted else 'S'}|{latency_us!r}\n")
        trace.update(line.encode())


def serve(cluster: Any, spec: ServeSpec,
          sampler: Optional[RequestSampler] = None) -> ServeReport:
    """One-shot convenience: build a frontend and run the whole spec."""
    return ServeFrontend(cluster, spec, sampler=sampler).run()


__all__ = ["RequestSampler", "ServeFrontend", "ServeReport", "serve"]
