"""The serving spec grammar and the arrival-process registry.

One spec string describes a whole open-loop serving configuration, the
same way ``backend=``/``repair=`` spec strings describe backends and
repair policies::

    "poisson:rate=5k,clients=1m,slo=2ms,requests=4000,seed=7"
    "bursty:rate=2k,burst_rate=20k,on=50ms,off=200ms,slo=500us"
    "diurnal:rate=8k,floor=500,period=1s,clients=1m,slo=1ms"

The text before the colon picks an arrival process from the **arrival
registry** (:func:`register_arrival` adds new ones without touching any
caller); the ``key=value`` pairs fill the :class:`ServeSpec`. Scaled
numbers accept ``k``/``m``/``g`` suffixes (``5k`` = 5 000, ``1m`` =
1 000 000 — a million simulated clients is just a bigger modulus, not a
bigger allocation); durations accept ``us``/``ms``/``s`` and normalize
to microseconds.

Common keys: ``rate`` (requests/second), ``clients`` (simulated client
population), ``slo`` (latency objective), ``requests`` (how many
arrivals to generate), ``seed``, ``admission`` (e.g. ``depth/64`` or
``bucket/5k/32``), ``balance`` (``round_robin``/``least``/``hash``).
Kind-specific keys (``burst_rate``, ``on``, ``off``, ``floor``,
``period``) land in :attr:`ServeSpec.params`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.common.specparse import parse_kv_spec, split_kind

#: Spec templates for help text: every registered kind with its flavor.
ARRIVAL_SPEC_EXAMPLES = (
    "poisson:rate=5k,clients=1m,slo=2ms",
    "bursty:rate=2k,burst_rate=20k,on=50ms,off=200ms",
    "diurnal:rate=8k,floor=500,period=1s",
)

_SCALED_RE = re.compile(r"^(\d+(?:\.\d+)?)([kmg]?)$", re.IGNORECASE)
_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)(us|ms|s)$", re.IGNORECASE)

_SCALE = {"": 1.0, "k": 1e3, "m": 1e6, "g": 1e9}
_TIME_US = {"us": 1.0, "ms": 1e3, "s": 1e6}


def _fmt(value: float) -> str:
    """A float as spec-string text: never exponent notation, so the
    canonical form always re-parses (``1e6`` -> ``"1000000"``)."""
    return str(int(value)) if value == int(value) else repr(value)


def parse_scaled(text: str, what: str = "value") -> float:
    """``"5k"`` -> 5000.0, ``"1.5m"`` -> 1.5e6, ``"250"`` -> 250.0."""
    match = _SCALED_RE.match(text.strip())
    if not match:
        raise ValueError(
            f"bad {what} {text!r}: expected a number with an optional "
            "k/m/g suffix (e.g. '5k', '1m')")
    return float(match.group(1)) * _SCALE[match.group(2).lower()]


def parse_duration_us(text: str, what: str = "duration") -> float:
    """``"2ms"`` -> 2000.0 µs; bare numbers are already microseconds."""
    match = _DURATION_RE.match(text.strip())
    if match:
        return float(match.group(1)) * _TIME_US[match.group(2).lower()]
    try:
        return parse_scaled(text, what)
    except ValueError:
        raise ValueError(
            f"bad {what} {text!r}: expected a duration like '2ms', "
            "'500us', '1s' or a bare microsecond count") from None


@dataclass
class ServeSpec:
    """A declarative description of one open-loop serving run."""

    #: Arrival-process kind from the arrival registry.
    kind: str = "poisson"
    #: Mean offered load in requests per second.
    rate_rps: float = 1_000.0
    #: Simulated client population (client ids are drawn from it).
    clients: int = 1_000_000
    #: Latency objective in µs; requests slower than this violate SLO.
    slo_us: float = 2_000.0
    #: How many arrivals to generate.
    requests: int = 2_000
    #: Seed for the arrival/client/request randomness.
    seed: int = 42
    #: Admission policy spec (``"none"``, ``"depth/64"``,
    #: ``"bucket/5k/32"``) — parsed by :mod:`repro.serve.admission`.
    admission: str = "none"
    #: Balancer policy name — parsed by :mod:`repro.serve.balancer`.
    balance: str = "round_robin"
    #: Kind-specific extras (``burst_rate``, ``on``, ``off``, ...).
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _ARRIVALS:
            raise ValueError(f"unknown arrival kind {self.kind!r}; "
                             f"pick from {arrival_kinds()}")
        if self.rate_rps <= 0:
            raise ValueError("rate must be positive")
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if self.slo_us <= 0:
            raise ValueError("slo must be positive")
        if self.requests <= 0:
            raise ValueError("requests must be positive")

    #: Spec keys -> (dataclass field or ``None`` for :attr:`params`,
    #: value cast) — the declarative half of the shared grammar in
    #: :mod:`repro.common.specparse`.
    _SPEC_KEYS = {
        "rate": ("rate_rps", lambda v: parse_scaled(v, "rate")),
        "clients": ("clients", lambda v: int(parse_scaled(v, "clients"))),
        "slo": ("slo_us", lambda v: parse_duration_us(v, "slo")),
        "requests": ("requests", lambda v: int(parse_scaled(v, "requests"))),
        "seed": ("seed", int),
        "admission": ("admission", str),
        "balance": ("balance", str),
        "on": (None, lambda v: parse_duration_us(v, "on")),
        "off": (None, lambda v: parse_duration_us(v, "off")),
        "period": (None, lambda v: parse_duration_us(v, "period")),
        "burst_rate": (None, lambda v: parse_scaled(v, "burst_rate")),
        "idle_rate": (None, lambda v: parse_scaled(v, "idle_rate")),
        "floor": (None, lambda v: parse_scaled(v, "floor")),
    }

    @classmethod
    def from_spec(cls, spec: str) -> "ServeSpec":
        """Parse a serve spec string (see the module docstring)."""
        kind, args = split_kind(spec, default="poisson")
        casts = {key: cast for key, (_target, cast) in cls._SPEC_KEYS.items()}
        parsed = parse_kv_spec(args, casts, what="serve spec")
        fields: Dict[str, Any] = {"kind": kind}
        params: Dict[str, float] = {}
        for key, value in parsed.items():
            target = cls._SPEC_KEYS[key][0]
            if target is None:
                params[key] = value
            else:
                fields[target] = value
        fields["params"] = params
        return cls(**fields)

    def to_spec(self) -> str:
        """The canonical spec-string form (round-trips via from_spec)."""
        parts = [f"rate={_fmt(self.rate_rps)}", f"clients={self.clients}",
                 f"slo={_fmt(self.slo_us)}", f"requests={self.requests}",
                 f"seed={self.seed}"]
        if self.admission != "none":
            parts.append(f"admission={self.admission}")
        if self.balance != "round_robin":
            parts.append(f"balance={self.balance}")
        for key in sorted(self.params):
            parts.append(f"{key}={_fmt(self.params[key])}")
        return f"{self.kind}:{','.join(parts)}"

    def with_overrides(self, **changes: Any) -> "ServeSpec":
        """A copy with fields replaced (presets' naive variants)."""
        return replace(self, **changes)


def coerce_serve_spec(
        value: Union[None, str, ServeSpec]) -> Optional[ServeSpec]:
    """``None``/spec-string/ready-spec -> Optional[ServeSpec]."""
    if value is None or isinstance(value, ServeSpec):
        return value
    if isinstance(value, str):
        return ServeSpec.from_spec(value)
    raise TypeError(f"serve= expects a spec string or ServeSpec, "
                    f"got {type(value).__name__}")


# -- the arrival registry ------------------------------------------------------

@dataclass(frozen=True)
class Arrival:
    """One open-loop arrival: a timestamp and the client that issued it."""

    t_us: float
    client_id: int


#: An arrival factory: spec -> deterministic iterator of Arrivals.
ArrivalFactory = Callable[[ServeSpec], Iterator[Arrival]]

_ARRIVALS: Dict[str, ArrivalFactory] = {}


def register_arrival(kind: str) -> Callable[[ArrivalFactory], ArrivalFactory]:
    """Register an arrival-process factory under ``kind`` (decorator)."""
    def deco(factory: ArrivalFactory) -> ArrivalFactory:
        if kind in _ARRIVALS:
            raise ValueError(f"arrival kind {kind!r} already registered")
        _ARRIVALS[kind] = factory
        return factory
    return deco


def arrival_kinds() -> Tuple[str, ...]:
    """All registered arrival kinds, in registration order."""
    return tuple(_ARRIVALS)


def make_arrivals(spec: ServeSpec) -> Iterator[Arrival]:
    """The deterministic arrival stream described by ``spec``."""
    try:
        factory = _ARRIVALS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown arrival kind {spec.kind!r}; "
                         f"pick from {arrival_kinds()}") from None
    return factory(spec)


__all__ = [
    "ARRIVAL_SPEC_EXAMPLES",
    "Arrival",
    "ArrivalFactory",
    "ServeSpec",
    "arrival_kinds",
    "coerce_serve_spec",
    "make_arrivals",
    "parse_duration_us",
    "parse_scaled",
    "register_arrival",
]
