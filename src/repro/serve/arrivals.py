"""Deterministic open-loop arrival processes on the simulated timeline.

Open-loop means the request stream is a property of the *world*, not of
the server: arrival ``i+1`` comes when the process says it comes, whether
or not arrival ``i`` has finished (the closed-loop harness drivers this
package replaces only ever had one request in flight). That distinction
is what makes tail latency meaningful — under overload an open-loop queue
grows without bound while a closed loop politely self-throttles.

Three processes, all pure functions of the :class:`~repro.serve.spec
.ServeSpec` (same spec, same stream, bit for bit):

* ``poisson`` — memoryless arrivals at a constant mean rate; the
  classical serving baseline.
* ``bursty`` — a two-state MMPP (Markov-modulated Poisson process):
  exponentially distributed quiet/burst sojourns, each state a Poisson
  process at its own rate. Models flash crowds and thundering herds.
* ``diurnal`` — a sinusoidal rate between ``floor`` and the peak rate
  over ``period``, sampled by thinning. Models the day/night cycle at
  planetary scale (compressed onto the simulated clock).

Client ids are drawn per arrival from ``[0, clients)`` — a population of
a million simulated users is just a bigger modulus, which is the whole
trick that makes "millions of users" cheap.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.serve.spec import Arrival, ServeSpec, register_arrival


def _rate_per_us(rate_rps: float) -> float:
    return rate_rps / 1e6


@register_arrival("poisson")
def poisson_arrivals(spec: ServeSpec) -> Iterator[Arrival]:
    """Memoryless arrivals: exponential gaps at the spec's mean rate."""
    rng = random.Random(spec.seed)
    rate = _rate_per_us(spec.rate_rps)
    t = 0.0
    for _ in range(spec.requests):
        t += rng.expovariate(rate)
        yield Arrival(t, rng.randrange(spec.clients))


@register_arrival("bursty")
def bursty_arrivals(spec: ServeSpec) -> Iterator[Arrival]:
    """Two-state MMPP: quiet Poisson at ``rate``, bursts at
    ``burst_rate`` (default 10x) with exponential sojourn times of mean
    ``on`` / ``off`` (defaults 50 ms / 200 ms)."""
    rng = random.Random(spec.seed)
    quiet = _rate_per_us(spec.rate_rps)
    burst = _rate_per_us(spec.params.get("burst_rate",
                                         10.0 * spec.rate_rps))
    mean_on = spec.params.get("on", 50_000.0)
    mean_off = spec.params.get("off", 200_000.0)
    if mean_on <= 0 or mean_off <= 0:
        raise ValueError("bursty on/off sojourn means must be positive")
    t = 0.0
    bursting = False
    switch_at = rng.expovariate(1.0 / mean_off)
    emitted = 0
    while emitted < spec.requests:
        rate = burst if bursting else quiet
        gap = rng.expovariate(rate)
        while t + gap >= switch_at:
            # Re-draw the residual gap in the new state: the memoryless
            # property makes the truncated draw exponential again, so one
            # fresh sample at the state boundary is exact.
            carried = switch_at - t
            t = switch_at
            bursting = not bursting
            mean = mean_on if bursting else mean_off
            switch_at = t + rng.expovariate(1.0 / mean)
            rate = burst if bursting else quiet
            gap = rng.expovariate(rate)
            del carried  # documentation of the renewal argument
        t += gap
        yield Arrival(t, rng.randrange(spec.clients))
        emitted += 1


@register_arrival("diurnal")
def diurnal_arrivals(spec: ServeSpec) -> Iterator[Arrival]:
    """Sinusoidal rate between ``floor`` (default rate/10) and the peak
    ``rate`` over ``period`` (default 1 simulated second), sampled by
    thinning a peak-rate Poisson stream."""
    rng = random.Random(spec.seed)
    peak = _rate_per_us(spec.rate_rps)
    floor = _rate_per_us(spec.params.get("floor", spec.rate_rps / 10.0))
    if floor > peak:
        raise ValueError("diurnal floor rate must not exceed the peak rate")
    period = spec.params.get("period", 1_000_000.0)
    if period <= 0:
        raise ValueError("diurnal period must be positive")
    mid = (peak + floor) / 2.0
    amp = (peak - floor) / 2.0
    t = 0.0
    emitted = 0
    while emitted < spec.requests:
        t += rng.expovariate(peak)
        rate_now = mid + amp * math.sin(2.0 * math.pi * t / period)
        if rng.random() * peak <= rate_now:
            yield Arrival(t, rng.randrange(spec.clients))
            emitted += 1


__all__ = ["bursty_arrivals", "diurnal_arrivals", "poisson_arrivals"]
