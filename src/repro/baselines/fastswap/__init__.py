"""Fastswap [2]: kernel paging over the Linux swap subsystem (modeled)."""

from repro.baselines.fastswap.config import FastswapConfig
from repro.baselines.fastswap.kernel import FastswapKernel, FastswapSystem
from repro.baselines.fastswap.swap_cache import SwapCache

__all__ = ["FastswapConfig", "FastswapKernel", "FastswapSystem", "SwapCache"]
