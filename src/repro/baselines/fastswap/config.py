"""Configuration for the Fastswap baseline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import MIB
from repro.net.latency import LatencyModel


@dataclass
class FastswapConfig:
    """Knobs for the modeled Fastswap computing node.

    Defaults follow the Linux/Fastswap configuration of the paper's testbed:
    swap readahead cluster of 8 pages (``page_cluster=3``), direct reclaim
    at fault time with a dedicated offload core that absorbs roughly half
    the reclaim work (§3.1: "not all reclamation work is offloaded").
    """

    local_mem_bytes: int = 64 * MIB
    remote_mem_bytes: int = 512 * MIB
    #: Swap readahead cluster size (faulted page + window-1 prefetched).
    readahead_window: int = 8
    #: Free-frame watermarks (fractions of local frames). Direct reclaim
    #: triggers below ``min``; kswapd background reclaim targets ``high``.
    min_watermark_frac: float = 0.02
    high_watermark_frac: float = 0.06
    #: kswapd wakeup period and batch.
    kswapd_period_us: float = 100.0
    kswapd_batch: int = 24
    #: Pages reclaimed per direct-reclaim invocation.
    reclaim_batch: int = 8
    #: Average LRU pages scanned per page actually evicted (second chances,
    #: referenced pages, isolation failures).
    scan_per_evict: float = 2.0
    #: Network fault injection (``None`` = perfect wire): a
    #: :class:`repro.net.FaultPlan` or spec string; routes all swap IO
    #: through the reliable transport.
    net_faults: object = None
    #: Retry policy override (:class:`repro.net.RetryPolicy`) for the
    #: reliable transport; only used when ``net_faults`` is set.
    net_retry: object = None
    latency: LatencyModel = field(default_factory=LatencyModel)

    def validate(self) -> None:
        if self.local_mem_bytes <= 0 or self.remote_mem_bytes <= 0:
            raise ValueError("memory sizes must be positive")
        if self.readahead_window < 1:
            raise ValueError("readahead window must be >= 1")
        if not 0.0 < self.min_watermark_frac < self.high_watermark_frac < 0.5:
            raise ValueError("watermarks must satisfy 0 < min < high < 0.5")
