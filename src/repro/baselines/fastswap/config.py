"""Configuration for the Fastswap baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.units import MIB
from repro.net.faults import (
    FaultPlan,
    RetryPolicy,
    coerce_fault_plan,
    coerce_retry_policy,
)
from repro.net.latency import LatencyModel


@dataclass
class FastswapConfig:
    """Knobs for the modeled Fastswap computing node.

    Defaults follow the Linux/Fastswap configuration of the paper's testbed:
    swap readahead cluster of 8 pages (``page_cluster=3``), direct reclaim
    at fault time with a dedicated offload core that absorbs roughly half
    the reclaim work (§3.1: "not all reclamation work is offloaded").
    """

    local_mem_bytes: int = 64 * MIB
    remote_mem_bytes: int = 512 * MIB
    #: Swap readahead cluster size (faulted page + window-1 prefetched).
    readahead_window: int = 8
    #: Free-frame watermarks (fractions of local frames). Direct reclaim
    #: triggers below ``min``; kswapd background reclaim targets ``high``.
    min_watermark_frac: float = 0.02
    high_watermark_frac: float = 0.06
    #: kswapd wakeup period and batch.
    kswapd_period_us: float = 100.0
    kswapd_batch: int = 24
    #: Pages reclaimed per direct-reclaim invocation.
    reclaim_batch: int = 8
    #: Average LRU pages scanned per page actually evicted (second chances,
    #: referenced pages, isolation failures).
    scan_per_evict: float = 2.0
    #: Network fault injection (``None`` = perfect wire): a
    #: :class:`repro.net.FaultPlan` or spec string (parsed once at
    #: config construction); routes all swap IO through the reliable
    #: transport.
    net_faults: Optional[FaultPlan] = None
    #: Retry policy override (:class:`repro.net.RetryPolicy`) for the
    #: reliable transport; only used when ``net_faults`` is set.
    net_retry: Optional[RetryPolicy] = None
    #: Rack-fabric attachment (:class:`repro.net.topology.FabricPort`)
    #: or ``None`` for the flat private-wire model.
    fabric: Optional[Any] = None
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        self.net_faults = coerce_fault_plan(self.net_faults)
        self.net_retry = coerce_retry_policy(self.net_retry)

    def validate(self) -> None:
        if self.local_mem_bytes <= 0 or self.remote_mem_bytes <= 0:
            raise ValueError("memory sizes must be positive")
        if self.readahead_window < 1:
            raise ValueError("readahead window must be >= 1")
        if not 0.0 < self.min_watermark_frac < self.high_watermark_frac < 0.5:
            raise ValueError("watermarks must satisfy 0 < min < high < 0.5")
