"""The Fastswap kernel model: Linux swap subsystem + frontswap over RDMA.

Faithfully reproduces the *structure* the paper measures in §3:

* a major fault walks the full swap path — swap-entry decode, swap-cache
  allocation and radix insertion, buddy page allocation, rmap/map — before
  and after its RDMA fetch (Figure 1's software components);
* swap readahead fetches a cluster of 8 pages *into the swap cache*,
  unmapped, so 7 of every 8 sequential accesses become minor faults
  (Table 1's 12.5%/87.5% split is emergent, not hard-coded);
* readahead IO shares the fault path's queue pair — prefetch reads queue
  behind and ahead of demand reads (head-of-line blocking);
* reclamation runs at fault time (direct reclaim) with a dedicated
  offload core absorbing only part of the work (§3.1), plus a weak kswapd;
  dirty evictions pay their RDMA write-back on the critical path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.common.clock import Clock
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.baselines.fastswap.config import FastswapConfig
from repro.baselines.fastswap.swap_cache import SwapCache
from repro.core.api import BaseSystem
from repro.mem import pte as pte_mod
from repro.mem.addrspace import AddressSpace, Region
from repro.mem.frames import FramePool
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.mem.vm import VirtualMemory
from repro.net.qp import NetStats, QueuePair
from repro.net.reliable import ReliableQP
from repro.obs import (
    FASTSWAP_ALIASES,
    LegacyCounters,
    MetricsSnapshot,
    Observability,
)

Tag = pte_mod.Tag


class FastswapKernel:
    """Page fault handling through the modeled Linux swap subsystem."""

    def __init__(
        self,
        clock: Clock,
        config: FastswapConfig,
        addr_space: AddressSpace,
        frames: FramePool,
        vm: VirtualMemory,
        node: MemoryNode,
        obs: Optional[Observability] = None,
    ) -> None:
        config.validate()
        self.clock = clock
        self.config = config
        self.model = config.latency
        self._as = addr_space
        self._pt = addr_space.page_table
        self._frames = frames
        self._vm = vm
        self._node = node
        self.obs = obs or Observability.default()
        self.registry = self.obs.registry
        self.tracer = self.obs.tracer
        self.registry.register_aliases(FASTSWAP_ALIASES)
        self.counters = LegacyCounters(self.registry)
        for key in ("fault.major", "fault.minor", "fault.first_touch",
                    "prefetch.issued", "reclaim.direct",
                    "reclaim.pages_evicted", "reclaim.pages_cleaned"):
            self.registry.counter(key)
        self.breakdown = self.registry.breakdown("fault.breakdown")
        self.minor_wait = self.registry.histogram("fault.minor_wait_us")
        self.stats = NetStats()
        #: Faults, readahead, and frontswap stores all share one swap IO
        #: queue — demand fetches queue behind readahead and write-backs
        #: (the head-of-line blocking DiLOS' comm module avoids, §4.5).
        plan = config.net_faults  # typed Optional[FaultPlan], parsed once
        fabric = config.fabric  # rack attachment; None = flat wire
        if plan is None:
            self.swap_qp = QueuePair("swap", clock, self.model, node,
                                     self.stats, tracer=self.tracer,
                                     fabric=fabric)
        else:
            self.swap_qp = ReliableQP(
                "swap", clock, self.model, node,
                qps=[QueuePair("swap", clock, self.model, node, self.stats,
                               tracer=self.tracer, fabric=fabric),
                     QueuePair("swap.alt", clock, self.model, node,
                               self.stats, tracer=self.tracer,
                               fabric=fabric)],
                plan=plan, policy=config.net_retry,
                registry=self.registry, tracer=self.tracer)
        self.swap_cache = SwapCache()
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        total = frames.total_frames
        # Same small-pool cap as DiLOS' page manager: reserve at most a
        # quarter of local memory for the free-frame cushion.
        self.min_watermark = max(4, int(total * config.min_watermark_frac))
        self.high_watermark = min(
            max(self.min_watermark + 4, int(total * config.high_watermark_frac),
                min(24, total // 8)),
            max(self.min_watermark + 4, total // 4))
        vm.attach_kernel(self.handle_fault)
        clock.call_after(config.kswapd_period_us, self._kswapd_tick)

    # -- fault handling ------------------------------------------------------

    def handle_fault(self, va: int, is_write: bool) -> None:
        model = self.model
        vpn = va >> PAGE_SHIFT
        fault_start = self.clock.now
        # The swap-entry lookup charge stays separate below: a kswapd timer
        # due between exception entry and the PTE read must fire first.
        self.clock.advance(model.fault_entry)
        entry = self._pt.get(vpn)
        tag = pte_mod.classify(entry)

        if tag is Tag.LOCAL:
            self.registry.add("fault.spurious")
            return
        if tag is Tag.INVALID:
            self._first_touch(vpn, va)
            return
        if tag is not Tag.REMOTE:
            raise AssertionError(f"unexpected PTE tag {tag} in Fastswap")

        self.clock.advance(model.fastswap_swap_lookup)
        cached = self.swap_cache.lookup(vpn)
        if cached is not None:
            self._minor_fault(vpn, cached)
        else:
            self._major_fault(vpn, fault_start)

    def _first_touch(self, vpn: int, va: int) -> None:
        region = self._as.region_for(va)
        self._maybe_direct_reclaim()
        frame = self._frames.alloc()
        self.clock.advance(self.model.fastswap_page_alloc
                           + self.model.fastswap_map)
        self._pt.set(vpn, pte_mod.make_local(frame, dirty=True,
                                             writable=region.writable))
        if region.ddc:
            self._lru[vpn] = None
        self.registry.add("fault.first_touch")
        if self.tracer.enabled:
            self.tracer.instant("fault.first_touch", "fault", self.clock.now,
                                {"vpn": vpn})

    def _minor_fault(self, vpn: int, cached) -> None:
        """Map a page already sitting in the swap cache."""
        frame, ready = cached
        self.registry.add("fault.minor")
        if self.tracer.enabled:
            self.tracer.instant("fault.minor", "fault", self.clock.now,
                                {"vpn": vpn, "kind": "swap_cache"})
        # Take the page reference first (lock_page pins it) so concurrent
        # reclaim cannot drop the entry while we wait out its IO.
        self.swap_cache.remove(vpn)
        self.clock.advance(self.model.fastswap_minor_fault)
        waited = max(0.0, ready - self.clock.now)
        if waited:
            # lock_page(): the readahead IO is still in flight.
            self.minor_wait.record(waited)
            self.clock.advance_to(ready)
        writable = self._as.region_for(vpn << PAGE_SHIFT).writable
        self._pt.set(vpn, pte_mod.make_local(frame, dirty=False,
                                             writable=writable))
        self._lru[vpn] = None

    def _major_fault(self, vpn: int, fault_start: float) -> None:
        model = self.model
        self.registry.add("fault.major")
        components = {"exception": model.fault_entry}

        reclaim_us = self._maybe_direct_reclaim()
        components["reclaim"] = reclaim_us

        components["software"] = model.fastswap_software
        self.clock.advance(model.fastswap_major_prepare)
        frame = self._frames.alloc()

        issue_time = self.clock.now
        try:
            completion = self.swap_qp.post_read(
                self._as.remote_offset_for(vpn), PAGE_SIZE)
        except NodeFailedError:
            self._frames.free(frame)
            self.registry.add("net.fetch_node_failures")
            raise
        self._readahead(vpn)
        try:
            self.swap_qp.wait(completion)
        except NodeFailedError:
            # The node died with our READ in flight: the response is lost.
            self._frames.free(frame)
            self.registry.add("net.fetch_node_failures")
            raise
        components["fetch"] = self.clock.now - issue_time

        self._frames.data(frame)[:] = completion.data
        self.clock.advance(model.fastswap_map)
        writable = self._as.region_for(vpn << PAGE_SHIFT).writable
        self._pt.set(vpn, pte_mod.make_local(frame, dirty=False,
                                             writable=writable))
        self._lru[vpn] = None
        self.breakdown.record_fault(components)
        if self.tracer.enabled:
            self.tracer.complete("fault.major", "fault", fault_start,
                                 self.clock.now - fault_start,
                                 {"vpn": vpn, "components": dict(components)})

    # -- swap readahead ---------------------------------------------------------

    def _readahead(self, fault_vpn: int) -> None:
        """Fetch the rest of the cluster into the swap cache, unmapped."""
        for offset in range(1, self.config.readahead_window):
            vpn = fault_vpn + offset
            entry = self._pt.get(vpn)
            if pte_mod.classify(entry) is not Tag.REMOTE:
                continue
            if self.swap_cache.contains(vpn):
                continue
            if self._frames.free_frames <= self.min_watermark:
                self.registry.add("prefetch.skipped_no_frames")
                break
            frame = self._frames.alloc()
            try:
                completion = self.swap_qp.post_read(
                    self._as.remote_offset_for(vpn), PAGE_SIZE)
            except NodeFailedError:
                self._frames.free(frame)
                break
            # Data lands in the frame when the IO completes; contents are
            # immutable remotely while unmapped, so snapshot now.
            self._frames.data(frame)[:] = completion.data
            self.swap_cache.insert(vpn, frame, completion.time)
            self.registry.add("prefetch.issued")
            if self.tracer.enabled:
                self.tracer.instant("prefetch.issue", "prefetch",
                                    self.clock.now, {"vpn": vpn})

    # -- reclamation ----------------------------------------------------------------

    def _maybe_direct_reclaim(self) -> float:
        """Direct reclaim when free frames dip below the min watermark.

        Returns the microseconds charged inline (a fraction is absorbed by
        Fastswap's dedicated reclaim core).
        """
        if self._frames.free_frames > self.min_watermark:
            return 0.0
        target = min(self.config.reclaim_batch,
                     self.high_watermark - self._frames.free_frames)
        start = self.clock.now
        inline_us = self._reclaim_pages(
            target, offload=self.model.fastswap_reclaim_offload_fraction)
        self.registry.add("reclaim.direct")
        self.clock.advance(inline_us)
        if self.tracer.enabled:
            self.tracer.complete("reclaim.direct", "reclaim", start,
                                 self.clock.now - start,
                                 {"inline_us": inline_us})
        return inline_us

    def _reclaim_pages(self, target: int, offload: float,
                       allow_writeback: bool = True) -> float:
        """Evict up to ``target`` pages; returns inline CPU microseconds.

        ``allow_writeback=False`` models kswapd's writeback aversion (dirty
        throttling): background reclaim skips dirty pages, so under
        write-heavy load eviction falls back to direct reclaim, which pays
        the frontswap store synchronously on the fault path — the reason
        Fastswap's sequential-write throughput is half its read throughput
        (Table 2).
        """
        model = self.model
        cpu_us = 0.0
        wire_us = 0.0  # synchronous store waits; the offload core cannot
        # absorb wire time the faulting thread must wait out.
        evicted = 0
        # Clean swap-cache pages first: free wins.
        while evicted < target:
            dropped = self.swap_cache.pop_any_ready(self.clock.now)
            if dropped is None:
                break
            _vpn, frame = dropped
            self._frames.free(frame)
            cpu_us += model.fastswap_reclaim_per_page * 0.5
            evicted += 1
            self.registry.add("swapcache.reclaimed")
        # Then the LRU, paying write-backs for dirty pages.
        rotations = 0
        max_rotations = 2 * len(self._lru) + 1
        while evicted < target and self._lru and rotations < max_rotations:
            rotations += 1
            vpn, _ = self._lru.popitem(last=False)
            entry = self._pt.get(vpn)
            if not pte_mod.is_present(entry):
                continue
            cpu_us += model.fastswap_reclaim_per_page * self.config.scan_per_evict
            if pte_mod.is_accessed(entry):
                self._pt.set(vpn, pte_mod.clear_accessed(entry))
                self._vm.tlb.invalidate(vpn)
                self._lru[vpn] = None
                continue
            frame = pte_mod.frame_of(entry)
            if pte_mod.is_dirty(entry) and not allow_writeback:
                self._lru[vpn] = None  # kswapd defers dirty pages
                continue
            if pte_mod.is_dirty(entry):
                try:
                    completion = self.swap_qp.post_write(
                        self._as.remote_offset_for(vpn),
                        bytes(self._frames.data(frame)))
                except NodeFailedError:
                    # Cannot write back: keep the page resident.
                    self.registry.add("net.writeback_node_failures")
                    self._lru[vpn] = None
                    continue
                # frontswap stores are synchronous: wait out the write.
                wire_us += max(0.0, completion.time - self.clock.now)
                self.registry.add("reclaim.pages_cleaned")
            self._pt.set(vpn, pte_mod.make_remote(self._as.remote_pfn_for(vpn)))
            self._vm.tlb.invalidate(vpn)
            self._frames.free(frame)
            evicted += 1
            self.registry.add("reclaim.pages_evicted")
        return cpu_us * (1.0 - offload) + wire_us

    def _kswapd_tick(self) -> None:
        """Background reclaim toward the high watermark (free of charge —
        kswapd runs on another core)."""
        deficit = self.high_watermark - self._frames.free_frames
        if deficit > 0:
            start = self.clock.now
            self._reclaim_pages(min(deficit, self.config.kswapd_batch),
                                offload=1.0, allow_writeback=False)
            self.registry.add("reclaim.kswapd_runs")
            if self.tracer.enabled:
                self.tracer.complete("reclaim.kswapd", "reclaim", start,
                                     self.clock.now - start,
                                     {"deficit": deficit})
        self.clock.call_after(self.config.kswapd_period_us, self._kswapd_tick)

    # -- teardown ---------------------------------------------------------------------

    def release_region(self, region: Region) -> None:
        first = region.base >> PAGE_SHIFT
        last = (region.end - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            entry = self._pt.get(vpn)
            if pte_mod.is_present(entry):
                self._frames.free(pte_mod.frame_of(entry))
            if self.swap_cache.contains(vpn):
                frame, _ready = self.swap_cache.remove(vpn)
                self._frames.free(frame)
            self._pt.set(vpn, 0)
            self._vm.tlb.invalidate(vpn)
            self._lru.pop(vpn, None)
            self._as.release_remote(vpn)


class FastswapSystem(BaseSystem):
    """A booted Fastswap computing node attached to a fresh memory node."""

    def __init__(self, config: Optional[FastswapConfig] = None,
                 memory_backend=None,
                 obs: Optional[Observability] = None,
                 clock: Optional[Clock] = None) -> None:
        """Boot a node; ``memory_backend`` overrides the default single
        memory node (e.g. a cluster from :mod:`repro.mem.cluster`);
        ``clock`` injects a shared timeline so independently booted
        systems can be co-scheduled; ``obs`` injects a shared registry
        or an enabled tracer."""
        self.config = config or FastswapConfig()
        self.config.validate()
        self.clock = clock or Clock()
        self.model = self.config.latency
        self.node = memory_backend or MemoryNode(self.config.remote_mem_bytes)
        self.frames = FramePool(self.config.local_mem_bytes // PAGE_SIZE)
        self.addr_space = AddressSpace(self.node)
        self.vm = VirtualMemory(self.clock, self.addr_space.page_table,
                                self.frames, self.model.cpu_copy_per_byte)
        self.obs = obs or Observability.default()
        self.kernel = FastswapKernel(self.clock, self.config, self.addr_space,
                                     self.frames, self.vm, self.node,
                                     obs=self.obs)
        registry = self.obs.registry
        registry.gauge("net.bytes_read", lambda: self.kernel.stats.bytes_read)
        registry.gauge("net.bytes_written",
                       lambda: self.kernel.stats.bytes_written)
        registry.gauge("tlb.hits", lambda: self.vm.tlb.hits)
        registry.gauge("tlb.misses", lambda: self.vm.tlb.misses)
        registry.gauge("swapcache.size", lambda: len(self.kernel.swap_cache))

    @property
    def name(self) -> str:
        return "Fastswap"

    def munmap(self, region: Region) -> None:
        self.kernel.release_region(region)
        self.addr_space.munmap(region)

    def metrics(self) -> MetricsSnapshot:
        return self.obs.registry.snapshot(self.name, self.clock.now)
