"""The Linux swap cache, the indirection DiLOS removes (§3.2).

Pages fetched (or prefetched by swap readahead) from the memory node land
here *unmapped*: the first access to a cached page takes a **minor page
fault** that walks the radix tree, waits for the page lock if the IO is
still in flight, and only then maps the page. On a 20 GB sequential read
87.5% of all faults are these minor faults (Table 1) — the sheer number is
what makes the swap cache expensive even though each one is cheaper than a
major fault.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class SwapCache:
    """vpn -> (frame, io_ready_time) for fetched-but-unmapped pages."""

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[int, float]] = {}
        self.inserts = 0
        self.lookups = 0

    def insert(self, vpn: int, frame: int, ready_time: float) -> None:
        if vpn in self._entries:
            raise ValueError(f"page {vpn:#x} already in swap cache")
        self._entries[vpn] = (frame, ready_time)
        self.inserts += 1

    def lookup(self, vpn: int) -> Optional[Tuple[int, float]]:
        self.lookups += 1
        return self._entries.get(vpn)

    def contains(self, vpn: int) -> bool:
        return vpn in self._entries

    def remove(self, vpn: int) -> Tuple[int, float]:
        return self._entries.pop(vpn)

    def pop_any_ready(self, now: float) -> Optional[Tuple[int, int]]:
        """Drop one cached page whose IO completed; returns (vpn, frame).

        Clean swap-cache pages are the cheapest reclaim victims — Linux
        drops them without any write-back.
        """
        for vpn, (frame, ready) in self._entries.items():
            if ready <= now:
                del self._entries[vpn]
                return vpn, frame
        return None

    def __len__(self) -> int:
        return len(self._entries)
