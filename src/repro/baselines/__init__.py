"""Baseline systems the paper compares against: Fastswap and AIFM."""
