"""AIFM's remoteable containers: list and hashtable.

AIFM ships "C++ STL-like" containers whose *elements* are far-memory
objects behind remoteable pointers (§2). Two of them matter for the
paper's comparisons:

* :class:`RemList` — a linked list of far objects. Iteration is
  pointer-chasing, but because the runtime sees each node's ``next``
  pointer the moment the node arrives, it keeps a runahead pipeline of
  in-flight fetches — AIFM's answer to the problem DiLOS solves with the
  Figure 5 guide.
* :class:`RemHashTable` — keys hash locally (AIFM keeps index metadata in
  local memory), values are far objects fetched on access.

Both illustrate the programming-model cost the paper emphasizes: using
them requires writing the application against these APIs, while DiLOS
runs the pointer-chasing code unmodified.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.baselines.aifm.runtime import AifmRuntime, RemPtr

#: Node layout: [next_oid: u64][payload ...].
_NEXT_BYTES = 8


class RemList:
    """A singly-linked list of far-memory payloads."""

    def __init__(self, runtime: AifmRuntime, runahead: int = 4) -> None:
        if runahead < 0:
            raise ValueError("runahead must be >= 0")
        self._runtime = runtime
        self.runahead = runahead
        self._head_oid = 0
        self._tail: Optional[RemPtr] = None
        self.length = 0

    @staticmethod
    def _pack(next_oid: int, payload: bytes) -> bytes:
        return next_oid.to_bytes(_NEXT_BYTES, "little") + payload

    def append(self, payload: bytes) -> None:
        """Append a payload as a new far object."""
        node = self._runtime.allocate(_NEXT_BYTES + len(payload),
                                      data=self._pack(0, payload))
        if self._tail is None:
            self._head_oid = node._oid
        else:
            self._tail.write(node._oid.to_bytes(_NEXT_BYTES, "little"),
                             offset=0)
        self._tail = node
        self.length += 1

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[bytes]:
        """Traverse; the runtime pipelines ``runahead`` nodes ahead.

        After a node arrives its ``next`` pointer is known, so the
        runahead thread can already issue the following fetch — keeping
        ``runahead`` fetches in flight without application hints.
        """
        runtime = self._runtime
        current = self._head_oid
        # Prime the pipeline by walking pointers through *arrived* data.
        pipeline: List[int] = []
        probe = current
        for _ in range(self.runahead):
            if not probe:
                break
            obj = runtime._objects.get(probe)
            if obj is None or obj.local is None:
                runtime.prefetch(probe)
                break
            pipeline.append(probe)
            probe = int.from_bytes(bytes(obj.local[:_NEXT_BYTES]), "little")
        while current:
            raw = runtime.deref_read(current)
            next_oid = int.from_bytes(raw[:_NEXT_BYTES], "little")
            # Keep the pipeline primed: the freshly revealed pointer can
            # be fetched while the caller consumes this payload.
            if next_oid and self.runahead >= 1:
                runtime.prefetch(next_oid)
                if self.runahead >= 2:
                    follower = runtime._objects.get(next_oid)
                    if follower is not None and follower.local is not None:
                        beyond = int.from_bytes(
                            bytes(follower.local[:_NEXT_BYTES]), "little")
                        if beyond:
                            runtime.prefetch(beyond)
            yield raw[_NEXT_BYTES:]
            current = next_oid

    def free(self) -> None:
        """Release every node."""
        runtime = self._runtime
        current = self._head_oid
        while current:
            raw = runtime.deref_read(current, 0, _NEXT_BYTES)
            next_oid = int.from_bytes(raw, "little")
            runtime.free(current)
            current = next_oid
        self._head_oid = 0
        self._tail = None
        self.length = 0


class RemHashTable:
    """Local index, far-memory values — AIFM's hashtable shape."""

    def __init__(self, runtime: AifmRuntime) -> None:
        self._runtime = runtime
        self._index: Dict[bytes, RemPtr] = {}

    def put(self, key: bytes, value: bytes) -> None:
        old = self._index.pop(key, None)
        if old is not None:
            old.free()
        self._index[key] = self._runtime.allocate(max(1, len(value)),
                                                  data=value)

    def get(self, key: bytes) -> Optional[bytes]:
        ptr = self._index.get(key)
        if ptr is None:
            return None
        return ptr.read()

    def delete(self, key: bytes) -> bool:
        ptr = self._index.pop(key, None)
        if ptr is None:
            return False
        ptr.free()
        return True

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: bytes) -> bool:
        return key in self._index
