"""The AIFM runtime: remoteable pointers over object-granular far memory.

Three modeled costs drive every AIFM result in the paper:

* ``aifm_deref_check`` on *every* dereference — the "extra instructions to
  check whether accessing objects are in local or remote memory" that make
  AIFM 50-83% slower than paging systems when everything fits locally
  (§6.2, Figure 8);
* object-granular fetches over the TCP transport (+14,000 cycles per
  transfer vs RDMA);
* background evacuation — object write-back happens off the critical path
  (dedicated threads), so memory pressure costs AIFM almost nothing, which
  is why it wins at 12.5% local memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.clock import Clock
from repro.common.errors import OutOfMemoryError
from repro.baselines.aifm.config import AifmConfig
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.net.qp import Completion, NetStats, QueuePair
from repro.net.reliable import ReliableQP
from repro.obs import (
    AIFM_ALIASES,
    LegacyCounters,
    MetricsSnapshot,
    Observability,
)


class _Object:
    """One far-memory object."""

    __slots__ = ("oid", "size", "remote_off", "local", "dirty", "inflight")

    def __init__(self, oid: int, size: int, remote_off: int) -> None:
        self.oid = oid
        self.size = size
        self.remote_off = remote_off
        self.local: Optional[bytearray] = None
        self.dirty = False
        self.inflight: Optional[Completion] = None


class RemPtr:
    """A remoteable pointer; every access goes through a presence check."""

    __slots__ = ("_runtime", "_oid")

    def __init__(self, runtime: "AifmRuntime", oid: int) -> None:
        self._runtime = runtime
        self._oid = oid

    @property
    def size(self) -> int:
        return self._runtime._objects[self._oid].size

    def read(self, offset: int = 0, size: Optional[int] = None) -> bytes:
        """Dereference for reading."""
        return self._runtime.deref_read(self._oid, offset, size)

    def write(self, data: bytes, offset: int = 0) -> None:
        """Dereference for writing."""
        self._runtime.deref_write(self._oid, data, offset)

    def prefetch(self) -> None:
        """Hint: start fetching this object in the background."""
        self._runtime.prefetch(self._oid)

    def is_local(self) -> bool:
        return self._runtime._objects[self._oid].local is not None

    def free(self) -> None:
        self._runtime.free(self._oid)


class AifmRuntime:
    """The user-level far-memory runtime (one application, one memory node)."""

    def __init__(self, config: Optional[AifmConfig] = None,
                 obs: Optional[Observability] = None,
                 memory_backend=None,
                 clock: Optional[Clock] = None) -> None:
        """Boot the runtime; ``memory_backend`` overrides the default
        single memory node (e.g. a sharded/replicated cluster from
        :mod:`repro.mem.cluster` — AIFM's object reads/writes split at
        page boundaries inside the backend); ``clock`` injects a shared
        timeline so independently booted systems can be co-scheduled."""
        self.config = config or AifmConfig()
        self.config.validate()
        self.clock = clock or Clock()
        self.model = self.config.latency
        self.node = memory_backend or MemoryNode(self.config.remote_mem_bytes)
        self.stats = NetStats()
        self.obs = obs or Observability.default()
        self.registry = self.obs.registry
        self.tracer = self.obs.tracer
        self.registry.register_aliases(AIFM_ALIASES)
        self.counters = LegacyCounters(self.registry)
        for key in ("fault.major", "fault.minor", "deref.total",
                    "prefetch.issued", "reclaim.pages_evicted",
                    "reclaim.pages_cleaned"):
            self.registry.counter(key)
        self.registry.gauge("net.bytes_read", lambda: self.stats.bytes_read)
        self.registry.gauge("net.bytes_written",
                            lambda: self.stats.bytes_written)
        self.registry.gauge("heap.bytes_used", lambda: self.heap_used)
        extra = self.model.tcp_extra if self.config.transport == "tcp" else 0.0
        plan = self.config.net_faults  # typed Optional[FaultPlan], parsed once

        fabric = self.config.fabric  # rack attachment; None = flat wire

        def connection(name: str):
            raw = QueuePair(name, self.clock, self.model, self.node,
                            self.stats, extra_completion_delay=extra,
                            tracer=self.tracer, fabric=fabric)
            if plan is None:
                return raw
            alt = QueuePair(f"{name}.alt", self.clock, self.model, self.node,
                            self.stats, extra_completion_delay=extra,
                            tracer=self.tracer, fabric=fabric)
            return ReliableQP(name, self.clock, self.model, self.node,
                              qps=[raw, alt], plan=plan,
                              policy=self.config.net_retry,
                              registry=self.registry, tracer=self.tracer)

        #: Demand fetches and streaming prefetches ride separate connections
        #: (AIFM's prefetcher threads own their own sockets).
        self._qp = connection("aifm-app")
        self._prefetch_qp = connection("aifm-prefetch")
        self._evac_qp = connection("aifm-evac")
        self._objects: Dict[int, _Object] = {}
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._next_oid = 1
        self._remote_bump = 0
        self.heap_used = 0

    @property
    def name(self) -> str:
        return "AIFM" if self.config.transport == "tcp" else "AIFM-RDMA"

    # -- allocation -----------------------------------------------------------

    def allocate(self, size: int, data: Optional[bytes] = None) -> RemPtr:
        """Allocate a far-memory object (local until evacuated)."""
        if size <= 0:
            raise ValueError("object size must be positive")
        if self._remote_bump + size > self.node.capacity:
            raise OutOfMemoryError("remote heap exhausted")
        oid = self._next_oid
        self._next_oid += 1
        obj = _Object(oid, size, self._remote_bump)
        self._remote_bump += size
        obj.local = bytearray(size)
        obj.dirty = True
        if data is not None:
            if len(data) > size:
                raise ValueError("initializer larger than object")
            obj.local[:len(data)] = data
            self.clock.advance(len(data) * self.model.cpu_copy_per_byte)
        self._objects[oid] = obj
        self._lru[oid] = None
        self.heap_used += size
        self.registry.add("heap.objects_allocated")
        self._maybe_evacuate()
        return RemPtr(self, oid)

    def free(self, oid: int) -> None:
        obj = self._objects.pop(oid, None)
        if obj is None:
            raise ValueError(f"free of unknown object {oid}")
        if obj.local is not None:
            self.heap_used -= obj.size
        self._lru.pop(oid, None)
        self.registry.add("heap.objects_freed")

    # -- dereferencing ------------------------------------------------------------

    def _resolve(self, oid: int) -> _Object:
        """Presence check + fetch-on-miss: the core of a dereference."""
        self.clock.advance(self.model.aifm_deref_check)
        self.registry.add("deref.total")
        obj = self._objects.get(oid)
        if obj is None:
            raise ValueError(f"dereference of freed object {oid}")
        if obj.local is None:
            self._fetch(obj)
        elif obj.inflight is not None:
            # A prefetch is in flight; wait out the remainder (usually 0).
            inflight = obj.inflight
            try:
                self._prefetch_qp.wait(inflight)
            except NodeFailedError:
                # The node died with the prefetch in flight: the reserved
                # buffer never got its bytes. Drop the reservation so the
                # object is cleanly remote again.
                obj.local = None
                obj.inflight = None
                self.heap_used -= obj.size
                self.registry.add("net.fetch_node_failures")
                raise
            obj.inflight = None
        self._lru[oid] = None
        self._lru.move_to_end(oid)
        return obj

    def deref_read(self, oid: int, offset: int = 0,
                   size: Optional[int] = None) -> bytes:
        obj = self._resolve(oid)
        end = obj.size if size is None else offset + size
        if offset < 0 or end > obj.size:
            raise ValueError("dereference outside object bounds")
        data = bytes(obj.local[offset:end])
        self.clock.advance(len(data) * self.model.cpu_copy_per_byte)
        return data

    def deref_write(self, oid: int, data: bytes, offset: int = 0) -> None:
        obj = self._resolve(oid)
        if offset < 0 or offset + len(data) > obj.size:
            raise ValueError("dereference outside object bounds")
        obj.local[offset:offset + len(data)] = data
        obj.dirty = True
        self.clock.advance(len(data) * self.model.cpu_copy_per_byte)

    # -- batched dereferencing ---------------------------------------------

    def deref_read_batch(self, oids, offsets=None, sizes=None):
        """Batched dereferences: element ``i`` behaves exactly like
        ``deref_read(oids[i], offsets[i], sizes[i])`` — one presence-check
        charge, one ``deref.total`` count, one LRU refresh and one
        copy-cost charge per element, in order. Runs of already-local
        objects take a flattened loop (no per-element call stack); any
        remote or in-flight object falls back to the scalar resolve path
        mid-run. Returns a list of bytes."""
        n = len(oids)
        offs = [0] * n if offsets is None else offsets
        szs = [None] * n if sizes is None else sizes
        if len(offs) != n or len(szs) != n:
            raise ValueError("oids/offsets/sizes must have equal length")
        clock = self.clock
        check = self.model.aifm_deref_check
        copy = self.model.cpu_copy_per_byte
        objects_get = self._objects.get
        lru = self._lru
        move = lru.move_to_end
        add = self.registry.add
        results = []
        for i in range(n):
            oid = oids[i]
            obj = objects_get(oid)
            if (obj is not None and obj.local is not None
                    and obj.inflight is None):
                clock.advance(check)
                add("deref.total")
                lru[oid] = None
                move(oid)
            else:
                obj = self._resolve(oid)
            offset = offs[i]
            end = obj.size if szs[i] is None else offset + szs[i]
            if offset < 0 or end > obj.size:
                raise ValueError("dereference outside object bounds")
            data = bytes(obj.local[offset:end])
            clock.advance(len(data) * copy)
            results.append(data)
        return results

    def deref_write_batch(self, oids, datas, offsets=None) -> None:
        """Batched writing dereferences; element ``i`` behaves exactly
        like ``deref_write(oids[i], datas[i], offsets[i])``."""
        n = len(oids)
        offs = [0] * n if offsets is None else offsets
        if len(datas) != n or len(offs) != n:
            raise ValueError("oids/datas/offsets must have equal length")
        clock = self.clock
        check = self.model.aifm_deref_check
        copy = self.model.cpu_copy_per_byte
        objects_get = self._objects.get
        lru = self._lru
        move = lru.move_to_end
        add = self.registry.add
        for i in range(n):
            oid = oids[i]
            obj = objects_get(oid)
            if (obj is not None and obj.local is not None
                    and obj.inflight is None):
                clock.advance(check)
                add("deref.total")
                lru[oid] = None
                move(oid)
            else:
                obj = self._resolve(oid)
            data = datas[i]
            offset = offs[i]
            if offset < 0 or offset + len(data) > obj.size:
                raise ValueError("dereference outside object bounds")
            obj.local[offset:offset + len(data)] = data
            obj.dirty = True
            clock.advance(len(data) * copy)

    def _fetch(self, obj: _Object) -> None:
        """Demand-fetch a remote object (synchronous, user-level)."""
        assert obj.inflight is None, "in-flight objects are local-reserved"
        fetch_start = self.clock.now
        self.clock.advance(self.model.aifm_object_fetch_sw)
        completion = self._qp.post_read(obj.remote_off, obj.size)
        self.registry.add("fault.major")
        try:
            self._qp.wait(completion)
        except NodeFailedError:
            self.registry.add("net.fetch_node_failures")
            raise
        if self.tracer.enabled:
            self.tracer.complete("fault.major", "fault", fetch_start,
                                 self.clock.now - fetch_start,
                                 {"oid": obj.oid, "bytes": obj.size})
        obj.local = bytearray(completion.data)
        obj.dirty = False
        self.heap_used += obj.size
        self._maybe_evacuate()

    # -- prefetching -----------------------------------------------------------------

    def prefetch(self, oid: int) -> None:
        """Async object fetch on the prefetcher's own connection."""
        obj = self._objects.get(oid)
        if obj is None or obj.local is not None or obj.inflight is not None:
            return
        completion = self._prefetch_qp.post_read(obj.remote_off, obj.size)
        self.registry.add("prefetch.issued")
        if self.tracer.enabled:
            self.tracer.instant("prefetch.issue", "prefetch", self.clock.now,
                                {"oid": oid, "bytes": obj.size})
        # Reserve heap now; the data buffer materializes at arrival.
        obj.local = bytearray(obj.size)
        obj.dirty = False
        obj.inflight = completion
        self.heap_used += obj.size
        data_target = obj

        def install(c: Completion) -> None:
            if c.failed:
                return  # the response was lost; _resolve cleans up
            if data_target.local is not None:
                data_target.local[:] = c.data
            data_target.inflight = None

        self.clock.call_at(completion.time, lambda: install(completion))
        self._lru[oid] = None
        self._maybe_evacuate()

    # -- evacuation -------------------------------------------------------------------

    def _maybe_evacuate(self) -> None:
        """Background evacuator: keep the local heap under budget.

        Runs on AIFM's dedicated threads — costs the application no CPU
        time, only wire bytes (and correctness: dirty data is written back
        before the local copy is dropped).
        """
        budget = self.config.local_heap_bytes
        if self.heap_used <= budget:
            return
        target = budget * (1.0 - self.config.evacuation_batch_frac)
        evac_start = self.clock.now
        evacuated = 0
        for oid in list(self._lru.keys()):
            if self.heap_used <= target:
                break
            obj = self._objects[oid]
            if obj.local is None or obj.inflight is not None:
                continue
            if obj.dirty:
                self._evac_qp.post_write(obj.remote_off, bytes(obj.local))
                self.registry.add("reclaim.pages_cleaned")
            obj.local = None
            self.heap_used -= obj.size
            self._lru.pop(oid, None)
            self.registry.add("reclaim.pages_evicted")
            evacuated += 1
        if evacuated and self.tracer.enabled:
            self.tracer.complete("reclaim.evacuate", "reclaim", evac_start,
                                 self.clock.now - evac_start,
                                 {"evacuated": evacuated})

    # -- harness surface ----------------------------------------------------------------

    def cpu(self, microseconds: float) -> None:
        self.clock.advance(microseconds)

    def cpu_cycles(self, cycles: float) -> None:
        self.clock.advance(self.model.cycles(cycles))

    def metrics(self) -> MetricsSnapshot:
        return self.registry.snapshot(self.name, self.clock.now)
