"""AIFM [60]: application-integrated far memory (modeled).

AIFM avoids page faults entirely: applications hold *remoteable pointers*
and every dereference runs a presence check in user space; remote objects
are fetched at object granularity over a user-level (TCP) transport, and a
background evacuator keeps the local heap under budget. The price is the
programming model — workloads must be ported to the AIFM API, which is why
this package ships its own ports of the snappy and DataFrame workloads
(the two the paper could compare, §6.2).
"""

from repro.baselines.aifm.config import AifmConfig
from repro.baselines.aifm.runtime import AifmRuntime, RemPtr
from repro.baselines.aifm.arrays import RemArray
from repro.baselines.aifm.containers import RemHashTable, RemList

__all__ = ["AifmConfig", "AifmRuntime", "RemArray", "RemHashTable", "RemList", "RemPtr"]
