"""Remoteable arrays: the AIFM container the ported workloads build on.

A :class:`RemArray` shards fixed-size items into chunk objects. Element
accesses pay the per-dereference presence check (this is what hurts AIFM
at 100% local memory); sequential scans engage the streaming prefetcher,
which keeps ``prefetch_depth`` chunks in flight and achieves the
"almost perfect overlapping of computation and networking" of §6.2.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.baselines.aifm.runtime import AifmRuntime, RemPtr


class RemArray:
    """A far-memory array of ``count`` fixed-size items."""

    def __init__(self, runtime: AifmRuntime, count: int, item_size: int,
                 chunk_bytes: int = 4096) -> None:
        if count <= 0 or item_size <= 0:
            raise ValueError("count and item_size must be positive")
        if item_size > chunk_bytes:
            raise ValueError("item larger than a chunk")
        self._runtime = runtime
        self.count = count
        self.item_size = item_size
        self.items_per_chunk = chunk_bytes // item_size
        nchunks = (count + self.items_per_chunk - 1) // self.items_per_chunk
        self._chunks: List[RemPtr] = [
            runtime.allocate(self._chunk_size(ci)) for ci in range(nchunks)]

    def _chunk_size(self, ci: int) -> int:
        first = ci * self.items_per_chunk
        items = min(self.items_per_chunk, self.count - first)
        return items * self.item_size

    def _locate(self, index: int):
        if not 0 <= index < self.count:
            raise IndexError(f"index {index} out of range [0, {self.count})")
        return (index // self.items_per_chunk,
                (index % self.items_per_chunk) * self.item_size)

    @property
    def nchunks(self) -> int:
        return len(self._chunks)

    # -- element access (pays a deref check per call) -----------------------

    def get(self, index: int) -> bytes:
        ci, offset = self._locate(index)
        return self._chunks[ci].read(offset, self.item_size)

    def set(self, index: int, data: bytes) -> None:
        if len(data) != self.item_size:
            raise ValueError("item size mismatch")
        ci, offset = self._locate(index)
        self._chunks[ci].write(data, offset)

    def get_batch(self, indices) -> List[bytes]:
        """Batched element reads via the runtime's batch dereference API;
        item ``i`` pays exactly the accounting of ``get(indices[i])``."""
        oids, offsets = [], []
        for index in indices:
            ci, offset = self._locate(index)
            oids.append(self._chunks[ci]._oid)
            offsets.append(offset)
        return self._runtime.deref_read_batch(
            oids, offsets, [self.item_size] * len(oids))

    def set_batch(self, indices, items) -> None:
        """Batched element writes; item ``i`` pays exactly the accounting
        of ``set(indices[i], items[i])``."""
        if len(indices) != len(items):
            raise ValueError("indices and items must have equal length")
        oids, offsets = [], []
        for index, data in zip(indices, items):
            if len(data) != self.item_size:
                raise ValueError("item size mismatch")
            ci, offset = self._locate(index)
            oids.append(self._chunks[ci]._oid)
            offsets.append(offset)
        self._runtime.deref_write_batch(oids, list(items), offsets)

    # -- bulk chunk access (one deref per chunk) ------------------------------

    def read_chunk(self, ci: int) -> bytes:
        return self._chunks[ci].read()

    def write_chunk(self, ci: int, data: bytes) -> None:
        self._chunks[ci].write(data)

    # -- streaming scan with prefetch -------------------------------------------

    def scan(self, start: int = 0, stop: Optional[int] = None) -> Iterator[bytes]:
        """Yield items in order, keeping the prefetch pipeline primed."""
        stop = self.count if stop is None else stop
        depth = self._runtime.config.prefetch_depth
        last_prefetched = -1
        index = start
        while index < stop:
            ci, offset = self._locate(index)
            horizon = min(ci + depth, self.nchunks - 1)
            for ahead in range(max(ci + 1, last_prefetched + 1), horizon + 1):
                self._chunks[ahead].prefetch()
            last_prefetched = max(last_prefetched, horizon)
            yield self._chunks[ci].read(offset, self.item_size)
            index += 1

    def scan_chunks(self, start_chunk: int = 0) -> Iterator[bytes]:
        """Yield whole chunks in order with streaming prefetch."""
        depth = self._runtime.config.prefetch_depth
        last_prefetched = -1
        for ci in range(start_chunk, self.nchunks):
            horizon = min(ci + depth, self.nchunks - 1)
            for ahead in range(max(ci + 1, last_prefetched + 1), horizon + 1):
                self._chunks[ahead].prefetch()
            last_prefetched = max(last_prefetched, horizon)
            yield self._chunks[ci].read()

    def free(self) -> None:
        for chunk in self._chunks:
            chunk.free()
        self._chunks = []
