"""Configuration for the AIFM baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.units import MIB
from repro.net.faults import (
    FaultPlan,
    RetryPolicy,
    coerce_fault_plan,
    coerce_retry_policy,
)
from repro.net.latency import LatencyModel


@dataclass
class AifmConfig:
    """Knobs for the modeled AIFM runtime.

    ``transport`` defaults to TCP, matching the published system: AIFM uses
    a user-space TCP stack, which the paper calibrates at 14,000 cycles
    slower than RDMA per 4 KiB transfer.
    """

    #: Local heap budget (the paper's ``kCacheGBs`` constant, scaled).
    local_heap_bytes: int = 64 * MIB
    remote_mem_bytes: int = 512 * MIB
    #: "tcp" (published AIFM) or "rdma" (for like-for-like fabric studies).
    transport: str = "tcp"
    #: Chunks the streaming prefetcher keeps in flight ahead of a scan.
    prefetch_depth: int = 8
    #: Fraction of the heap evacuated per evacuation round.
    evacuation_batch_frac: float = 0.05
    #: Network fault injection (``None`` = perfect wire): a
    #: :class:`repro.net.FaultPlan` or spec string (parsed once at
    #: config construction); routes all object IO through the reliable
    #: transport.
    net_faults: Optional[FaultPlan] = None
    #: Retry policy override (:class:`repro.net.RetryPolicy`) for the
    #: reliable transport; only used when ``net_faults`` is set.
    net_retry: Optional[RetryPolicy] = None
    #: Rack-fabric attachment (:class:`repro.net.topology.FabricPort`)
    #: or ``None`` for the flat private-wire model.
    fabric: Optional[Any] = None
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        self.net_faults = coerce_fault_plan(self.net_faults)
        self.net_retry = coerce_retry_policy(self.net_retry)

    def validate(self) -> None:
        if self.local_heap_bytes <= 0 or self.remote_mem_bytes <= 0:
            raise ValueError("memory sizes must be positive")
        if self.transport not in ("tcp", "rdma"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch depth must be >= 0")
