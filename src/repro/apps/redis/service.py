"""The Redis app behind the unified Service protocol.

:class:`RedisService` adapts a :class:`~repro.apps.redis.server.RedisServer`
to ``handle(Request) -> Response`` so the serving layer's balancer can
drive it like any other app. The handler table is a straight mapping onto
the server's commands — ``handle`` adds *no* simulated time of its own,
which is what keeps the deprecated closed-loop wrappers byte-identical to
their historical behavior.

The ``"redis"`` service factory boots a ready instance: a mimalloc arena,
a deterministic keyspace population (seeded values with recognizable
prefixes), and a seeded Zipf key-popularity sampler so generic presets
can synthesize a GET-dominated request stream with tunable hot-key skew.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.alloc.mimalloc import Mimalloc
from repro.apps.api import Request, Response, SERVICES
from repro.apps.redis.guide import RedisPrefetchGuide
from repro.apps.redis.server import RedisServer
from repro.common.rng import zipf_weights
from repro.common.units import MIB


class RedisService:
    """One Redis instance as a uniform request-driven service."""

    name = "redis"

    def __init__(self, server: RedisServer, n_keys: int = 0,
                 value_bytes: int = 512, skew: float = 0.0,
                 write_fraction: float = 0.0, seed: int = 21) -> None:
        self.server = server
        self.n_keys = n_keys
        self.value_bytes = value_bytes
        self.write_fraction = write_fraction
        self.seed = seed
        self.skew = skew
        self._weights = (zipf_weights(n_keys, skew)
                         if n_keys and skew > 0.0 else None)
        self._handlers = {
            "get": self._get,
            "set": self._set,
            "del": self._delete,
            "exists": self._exists,
            "strlen": self._strlen,
            "getrange": self._getrange,
            "incr": self._incr,
            "rpush": self._rpush,
            "lrange": self._lrange,
        }

    # -- the Service protocol ------------------------------------------------

    def handle(self, request: Request) -> Response:
        handler = self._handlers.get(request.op)
        if handler is None:
            return Response.fail(f"unknown op {request.op!r}; "
                                 f"have {sorted(self._handlers)}")
        try:
            return handler(request)
        except (TypeError, ValueError, KeyError) as exc:
            return Response.fail(str(exc))

    def sample_request(self, rng: random.Random) -> Request:
        """A seeded draw from the service's key/op popularity model:
        GET-dominated (``write_fraction`` of SETs), keys Zipf-skewed when
        the service was built with ``skew > 0``."""
        if not self.n_keys:
            raise ValueError("sample_request needs a populated keyspace "
                             "(build the service with n_keys > 0)")
        if self._weights is not None:
            index = rng.choices(range(self.n_keys),
                                weights=self._weights, k=1)[0]
        else:
            index = rng.randrange(self.n_keys)
        key = b"key:%d" % index
        if self.write_fraction > 0.0 and rng.random() < self.write_fraction:
            return Request("set", key=key,
                           value=_value(rng, self.value_bytes))
        return Request("get", key=key)

    # -- handlers ------------------------------------------------------------

    def _get(self, request: Request) -> Response:
        value = self.server.get(request.key)
        if value is None:
            return Response.fail(f"no such key {request.key!r}")
        return Response(value=value)

    def _set(self, request: Request) -> Response:
        self.server.set(request.key, request.value)
        return Response()

    def _delete(self, request: Request) -> Response:
        return Response(value=self.server.delete(request.key))

    def _exists(self, request: Request) -> Response:
        return Response(value=self.server.exists(request.key))

    def _strlen(self, request: Request) -> Response:
        return Response(value=self.server.strlen(request.key))

    def _getrange(self, request: Request) -> Response:
        start, length = request.args
        return Response(value=self.server.getrange(request.key,
                                                   start, length))

    def _incr(self, request: Request) -> Response:
        return Response(value=self.server.incr(request.key))

    def _rpush(self, request: Request) -> Response:
        values = list(request.args) if request.args else [request.value]
        return Response(value=self.server.rpush(request.key, values))

    def _lrange(self, request: Request) -> Response:
        count = request.args[0] if request.args else 10
        return Response(value=self.server.lrange(request.key, count))


def _value(rng: random.Random, size: int) -> bytes:
    """A seeded value with a recognizable prefix (shared with the
    closed-loop workloads' recipe so verification stays possible)."""
    seed = rng.randrange(1 << 30)
    prefix = seed.to_bytes(4, "little")
    body = bytes(((seed >> (8 * (j % 4))) + j * 131) % 256
                 for j in range(min(size - 4, 60)))
    return (prefix + body).ljust(size, b"\xA5")[:size]


@SERVICES.register("redis")
def build_redis_service(system, n_keys: int = 200, value_bytes: int = 512,
                        skew: float = 0.0, write_fraction: float = 0.0,
                        arena_bytes: int = 16 * MIB, seed: int = 21,
                        guide: Optional[RedisPrefetchGuide] = None,
                        quicklist_fill: int = 16,
                        index: str = "local") -> RedisService:
    """Boot + populate one Redis service on ``system``.

    Population is deterministic in ``seed``: ``n_keys`` string keys of
    ``value_bytes`` each, SET through the mimalloc arena so the values
    land in far memory like any real keyspace.
    """
    server = RedisServer(system, Mimalloc(system, arena_bytes=arena_bytes),
                         guide=guide, quicklist_fill=quicklist_fill,
                         index=index)
    rng = random.Random(seed)
    expected: Dict[bytes, bytes] = {}
    for i in range(n_keys):
        key = b"key:%d" % i
        value = _value(rng, value_bytes)
        server.set(key, value)
        expected[key] = value[:16]
    service = RedisService(server, n_keys=n_keys, value_bytes=value_bytes,
                           skew=skew, write_fraction=write_fraction,
                           seed=seed)
    service.expected = expected  # verification aid for tests/presets
    return service


__all__ = ["RedisService", "build_redis_service"]
