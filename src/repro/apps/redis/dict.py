"""A far-memory open-addressing hash table — Redis's keyspace index.

§6.2 motivates the Redis evaluation with "in-memory key-value store
applications use pointer-based data structures (e.g., hash tables and
linked lists), and they have highly irregular memory access patterns".
The quicklist covers the linked-list half; this covers the hash-table
half: a linear-probing table whose bucket array lives in disaggregated
memory, so every lookup's probe sequence is a run of potentially faulting
reads at hash-random pages.

Bucket layout (64 bytes, one cache line):

    [tag: u64][klen: u16][key: <=46 bytes inline][value: u64]

``tag`` is the FNV-1a hash of the key forced non-zero/non-one (0 marks an
empty bucket, 1 a tombstone). Values are opaque u64s — the server stores
SDS virtual addresses.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.alloc.mimalloc import Mimalloc
from repro.core.api import BaseSystem

BUCKET_SIZE = 64
MAX_KEY = 46
_EMPTY = 0
_TOMBSTONE = 1
#: Probes before giving up (table guaranteed below this load).
_MAX_PROBES_FACTOR = 1.0
#: CPU charge per probe (hash compare + branch).
PROBE_CYCLES = 12


def fnv1a(key: bytes) -> int:
    """64-bit FNV-1a."""
    value = 0xCBF29CE484222325
    for byte in key:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def _tag_for(key: bytes) -> int:
    tag = fnv1a(key)
    return tag if tag > 1 else tag + 2


class FarDict:
    """Open-addressing hash table over disaggregated memory."""

    def __init__(self, system: BaseSystem, alloc: Mimalloc,
                 initial_capacity: int = 256,
                 max_load: float = 0.65) -> None:
        if initial_capacity < 8 or initial_capacity & (initial_capacity - 1):
            raise ValueError("capacity must be a power of two >= 8")
        if not 0.1 < max_load < 0.9:
            raise ValueError("max_load must be in (0.1, 0.9)")
        self.system = system
        self.alloc = alloc
        self.max_load = max_load
        self.capacity = initial_capacity
        self._table_va = self._alloc_table(initial_capacity)
        self.size = 0
        self._tombstones = 0
        self.resizes = 0

    def _alloc_table(self, capacity: int) -> int:
        """calloc() a bucket array: recycled arena pages may hold stale
        bytes, and an unzeroed bucket would read as a live entry."""
        va = self.alloc.malloc(capacity * BUCKET_SIZE)
        zeros = b"\x00" * 4096
        nbytes = capacity * BUCKET_SIZE
        for offset in range(0, nbytes, 4096):
            self.system.memory.write(va + offset,
                                     zeros[:min(4096, nbytes - offset)])
        return va

    # -- bucket IO ----------------------------------------------------------

    def _bucket_va(self, index: int) -> int:
        return self._table_va + (index & (self.capacity - 1)) * BUCKET_SIZE

    def _read_bucket(self, index: int) -> Tuple[int, bytes, int]:
        raw = self.system.memory.read(self._bucket_va(index), BUCKET_SIZE)
        tag = int.from_bytes(raw[0:8], "little")
        klen = int.from_bytes(raw[8:10], "little")
        key = raw[10:10 + klen]
        value = int.from_bytes(raw[56:64], "little")
        return tag, key, value

    def _write_bucket(self, index: int, tag: int, key: bytes,
                      value: int) -> None:
        raw = (tag.to_bytes(8, "little")
               + len(key).to_bytes(2, "little")
               + key.ljust(MAX_KEY, b"\x00")
               + value.to_bytes(8, "little"))
        self.system.memory.write(self._bucket_va(index), raw)

    # -- public API -----------------------------------------------------------

    def put(self, key: bytes, value: int) -> None:
        """Insert or replace ``key``; value is an opaque u64."""
        if len(key) > MAX_KEY:
            raise ValueError(f"key longer than {MAX_KEY} bytes")
        if (self.size + self._tombstones + 1) > self.capacity * self.max_load:
            self._resize()
        tag = _tag_for(key)
        index = tag
        first_tombstone = None
        for _probe in range(self.capacity):
            self.system.cpu_cycles(PROBE_CYCLES)
            found_tag, found_key, _ = self._read_bucket(index)
            if found_tag == _EMPTY:
                target = first_tombstone if first_tombstone is not None else index
                self._write_bucket(target, tag, key, value)
                self.size += 1
                if first_tombstone is not None:
                    self._tombstones -= 1
                return
            if found_tag == _TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = index
            elif found_tag == tag and found_key == key:
                self._write_bucket(index, tag, key, value)
                return
            index += 1
        raise RuntimeError("hash table full despite load factor bound")

    def get(self, key: bytes) -> Optional[int]:
        tag = _tag_for(key)
        index = tag
        for _probe in range(self.capacity):
            self.system.cpu_cycles(PROBE_CYCLES)
            found_tag, found_key, value = self._read_bucket(index)
            if found_tag == _EMPTY:
                return None
            if found_tag == tag and found_key == key:
                return value
            index += 1
        return None

    def delete(self, key: bytes) -> bool:
        tag = _tag_for(key)
        index = tag
        for _probe in range(self.capacity):
            self.system.cpu_cycles(PROBE_CYCLES)
            found_tag, found_key, _ = self._read_bucket(index)
            if found_tag == _EMPTY:
                return False
            if found_tag == tag and found_key == key:
                self._write_bucket(index, _TOMBSTONE, b"", 0)
                self.size -= 1
                self._tombstones += 1
                return True
            index += 1
        return False

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """Scan all live entries (a full sequential pass of the table)."""
        for index in range(self.capacity):
            tag, key, value = self._read_bucket(index)
            if tag not in (_EMPTY, _TOMBSTONE):
                yield key, value

    # -- resizing ----------------------------------------------------------------

    def _resize(self) -> None:
        """Double the table: a full rehash streaming the old array."""
        old_va = self._table_va
        old_capacity = self.capacity
        entries = list(self.items())
        self.capacity = old_capacity * 2
        self._table_va = self._alloc_table(self.capacity)
        self.size = 0
        self._tombstones = 0
        self.resizes += 1
        for key, value in entries:
            self.put(key, value)
        self.alloc.free(old_va)
