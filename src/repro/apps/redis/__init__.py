"""A Redis-shaped in-memory key-value store over disaggregated memory.

Implements the data structures whose layouts the §6.3 app-aware guides
read: SDS strings (GET values), ziplists, and quicklists of ziplists
(LRANGE), plus a server with GET/SET/DEL/RPUSH/LRANGE, redis-benchmark
style workload generators (including the Facebook photo-serving size mix),
and the guides themselves.
"""

from repro.apps.redis.sds import sds_free, sds_len, sds_new, sds_read, SDS_HEADER
from repro.apps.redis.ziplist import ziplist_entries, ziplist_new, ziplist_read_range
from repro.apps.redis.quicklist import Quicklist, NODE_SIZE
from repro.apps.redis.server import RedisServer
from repro.apps.redis.service import RedisService, build_redis_service
from repro.apps.redis.workload import DelGetWorkload, GetWorkload, LRangeWorkload, PHOTO_MIX_SIZES
from repro.apps.redis.guide import RedisPrefetchGuide

__all__ = [
    "DelGetWorkload",
    "GetWorkload",
    "LRangeWorkload",
    "NODE_SIZE",
    "PHOTO_MIX_SIZES",
    "Quicklist",
    "RedisPrefetchGuide",
    "RedisServer",
    "RedisService",
    "build_redis_service",
    "SDS_HEADER",
    "sds_free",
    "sds_len",
    "sds_new",
    "sds_read",
    "ziplist_entries",
    "ziplist_new",
    "ziplist_read_range",
]
