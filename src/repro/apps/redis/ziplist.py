"""Ziplists — Redis's packed list encoding [66].

Layout in far memory:

    [zlbytes: u32][zllen: u16] then per entry: [len: u16][data ...]

A ziplist is one contiguous allocation, so fetching a list segment is a
couple of sequential pages — *if* the prefetcher knows where the ziplist
lives and how big it is, which is exactly what the quicklist guide learns
from the node header and the ziplist's own ``zlbytes`` field (Figure 11).
"""

from __future__ import annotations

from typing import List

from repro.alloc.mimalloc import Mimalloc
from repro.core.api import BaseSystem

ZL_HEADER = 6


def ziplist_new(system: BaseSystem, alloc: Mimalloc,
                values: List[bytes]) -> int:
    """Pack ``values`` into a fresh ziplist; returns its VA."""
    if len(values) > 0xFFFF:
        raise ValueError("too many entries for a ziplist")
    body = bytearray()
    for value in values:
        if len(value) > 0xFFFF:
            raise ValueError("entry too large for a ziplist")
        body.extend(len(value).to_bytes(2, "little"))
        body.extend(value)
    total = ZL_HEADER + len(body)
    va = alloc.malloc(total)
    system.memory.write(va, total.to_bytes(4, "little")
                        + len(values).to_bytes(2, "little") + bytes(body))
    return va


def ziplist_bytes(system: BaseSystem, va: int) -> int:
    """Read ``zlbytes`` — the guide's second subpage target."""
    return int.from_bytes(system.memory.read(va, 4), "little")


def ziplist_entries(system: BaseSystem, va: int) -> int:
    """Number of entries (the ``zllen`` header field)."""
    return int.from_bytes(system.memory.read(va + 4, 2), "little")


def ziplist_read_range(system: BaseSystem, va: int, count: int) -> List[bytes]:
    """Read up to ``count`` leading entries."""
    total = ziplist_entries(system, va)
    out: List[bytes] = []
    cursor = va + ZL_HEADER
    for _ in range(min(count, total)):
        length = int.from_bytes(system.memory.read(cursor, 2), "little")
        out.append(system.memory.read(cursor + 2, length))
        cursor += 2 + length
    return out


def ziplist_free(alloc: Mimalloc, va: int) -> None:
    """Release a ziplist allocation."""
    alloc.free(va)
