"""The Redis-shaped server: GET/SET/DEL/RPUSH/LRANGE over far memory.

The keyspace index (Redis's top-level dict) stays in local memory — at
datacenter scale the working set is dominated by values, which all live in
disaggregated memory through the bitmap-tracking allocator. Command
dispatch costs a few hundred cycles, as in Redis.

When an app-aware guide is attached, the server's handlers are wrapped by
loader hooks that tell the guide where each traversal starts — the §5
hooking interface; the Redis code itself has no guide knowledge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.alloc.mimalloc import Mimalloc
from repro.core.api import BaseSystem
from repro.apps.redis.dict import FarDict
from repro.apps.redis.guide import RedisPrefetchGuide
from repro.apps.redis.quicklist import Quicklist
from repro.apps.redis.sds import SDS_HEADER, sds_free, sds_len, sds_new, sds_read

#: Command dispatch + dict lookup + reply marshalling.
COMMAND_CYCLES = 500


class RedisServer:
    """One single-threaded Redis instance."""

    def __init__(self, system: BaseSystem, alloc: Mimalloc,
                 guide: Optional[RedisPrefetchGuide] = None,
                 quicklist_fill: int = 16,
                 index: str = "local") -> None:
        """``index="far"`` keeps the keyspace dict itself in far memory
        (string values only): every lookup's probe sequence then pages
        like the rest of the working set."""
        if index not in ("local", "far"):
            raise ValueError(f"unknown index mode {index!r}")
        self.system = system
        self.alloc = alloc
        self.guide = guide
        self.quicklist_fill = quicklist_fill
        self.index_mode = index
        self._db: Dict[bytes, Tuple[str, object]] = {}
        self._far_index: Optional[FarDict] = (
            FarDict(system, alloc) if index == "far" else None)
        if guide is not None:
            kernel = getattr(system, "kernel", None)
            register = getattr(kernel, "register_prefetch_guide", None)
            if register is None:
                raise ValueError(
                    f"{system.name} does not support app-aware guides")
            register(guide)

    def _charge(self) -> None:
        self.system.cpu_cycles(COMMAND_CYCLES)

    @property
    def dbsize(self) -> int:
        if self._far_index is not None:
            return len(self._far_index)
        return len(self._db)

    # -- string commands ----------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        self._charge()
        self.delete(key, charge=False)
        va = sds_new(self.system, self.alloc, value)
        if self._far_index is not None:
            self._far_index.put(key, va)
        else:
            self._db[key] = ("string", va)

    def _lookup(self, key: bytes) -> Optional[Tuple[str, object]]:
        if self._far_index is not None:
            va = self._far_index.get(key)
            return None if va is None else ("string", va)
        return self._db.get(key)

    def get(self, key: bytes) -> Optional[bytes]:
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            return None
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        if self.guide is not None:
            self.guide.begin_get(va)
        try:
            return sds_read(self.system, va)
        finally:
            if self.guide is not None:
                self.guide.end_op()

    def delete(self, key: bytes, charge: bool = True) -> bool:
        if charge:
            self._charge()
        if self._far_index is not None:
            va = self._far_index.get(key)
            if va is None:
                return False
            self._far_index.delete(key)
            entry = ("string", va)
        else:
            entry = self._db.pop(key, None)
        if entry is None:
            return False
        kind, payload = entry
        if kind == "string":
            # Redis inspects the object before freeing it (type/encoding/
            # refcount live in the robj+sds header) — a real access that
            # faults the page in if it was evicted.
            sds_len(self.system, payload)
            sds_free(self.alloc, payload)
        else:
            payload.free()
        return True

    def exists(self, key: bytes) -> bool:
        self._charge()
        return self._lookup(key) is not None

    def strlen(self, key: bytes) -> int:
        """Length of a string value — reads only the SDS header."""
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            return 0
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        return sds_len(self.system, va)

    def getrange(self, key: bytes, start: int, length: int) -> bytes:
        """GETRANGE: read a byte slice of a value — the sub-object access
        §3.1's IO-amplification analysis is about (a paging system still
        fetches whole pages underneath)."""
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            return b""
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        total = sds_len(self.system, va)
        if start < 0 or start >= total:
            return b""
        length = min(length, total - start)
        return self.system.memory.read(va + SDS_HEADER + start, length)

    def setrange(self, key: bytes, start: int, piece: bytes) -> int:
        """SETRANGE: overwrite a byte slice in place (no realloc when the
        slice fits); returns the value length."""
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            raise KeyError(f"no such key {key!r}")
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        total = sds_len(self.system, va)
        if start < 0 or start + len(piece) > total:
            raise ValueError("SETRANGE outside the existing value")
        self.system.memory.write(va + SDS_HEADER + start, piece)
        return total

    def append(self, key: bytes, suffix: bytes) -> int:
        """APPEND: grow a string — a realloc in allocator terms (new SDS,
        copy, free old), exactly the churn §4.4's bitmaps track."""
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            self.set(key, suffix)
            return len(suffix)
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        current = sds_read(self.system, va)
        self.set(key, current + suffix)
        return len(current) + len(suffix)

    def incr(self, key: bytes) -> int:
        """INCR: parse the value as an integer, add one, write back."""
        self._charge()
        entry = self._lookup(key)
        if entry is None:
            self.set(key, b"1")
            return 1
        kind, va = entry
        if kind != "string":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        raw = sds_read(self.system, va)
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"value of {key!r} is not an integer") from None
        value += 1
        self.set(key, b"%d" % value)
        return value

    # -- list commands ----------------------------------------------------------

    def rpush(self, key: bytes, values: List[bytes]) -> int:
        self._charge()
        if self._far_index is not None:
            raise ValueError("the far-memory index supports string keys only")
        entry = self._db.get(key)
        if entry is None:
            quicklist = Quicklist(self.system, self.alloc,
                                  fill=self.quicklist_fill)
            self._db[key] = ("list", quicklist)
        else:
            kind, quicklist = entry
            if kind != "list":
                raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        quicklist.push_values(values)
        return quicklist.length

    def lrange(self, key: bytes, count: int) -> List[bytes]:
        """LRANGE key 0 count-1 — the paper's LRANGE_100 query shape."""
        self._charge()
        entry = self._db.get(key)
        if entry is None:
            return []
        kind, quicklist = entry
        if kind != "list":
            raise TypeError(f"WRONGTYPE key {key!r} holds a {kind}")
        if self.guide is not None:
            self.guide.begin_lrange(quicklist.head)
        try:
            return quicklist.lrange(count)
        finally:
            if self.guide is not None:
                self.guide.end_op()
