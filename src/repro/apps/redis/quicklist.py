"""Quicklists — Redis lists as linked lists of ziplists [66].

Node layout in far memory (32 bytes, one small-class allocation):

    [prev: u64][next: u64][zl: u64][count: u32][pad: u32]

Traversal is pointer-chasing: read a node, follow ``zl`` to its ziplist,
follow ``next`` to the next node. No page-granular prefetcher can predict
that chain — the access pattern behind Figure 10(d) — but the Figure 11
guide can: a 32-byte subpage fetch of the node reveals both pointers long
before the node's full page arrives.
"""

from __future__ import annotations

from typing import List

from repro.alloc.mimalloc import Mimalloc
from repro.core.api import BaseSystem
from repro.apps.redis.ziplist import ziplist_free, ziplist_new, ziplist_read_range

NODE_SIZE = 32
_NULL = 0


def node_unpack(raw: bytes):
    """Decode a node struct: ``(prev, next, zl, count)``."""
    if len(raw) < 28:
        raise ValueError("short node read")
    return (int.from_bytes(raw[0:8], "little"),
            int.from_bytes(raw[8:16], "little"),
            int.from_bytes(raw[16:24], "little"),
            int.from_bytes(raw[24:28], "little"))


class Quicklist:
    """A far-memory quicklist; entries per node follow Redis's fill."""

    def __init__(self, system: BaseSystem, alloc: Mimalloc,
                 fill: int = 16) -> None:
        if fill < 1:
            raise ValueError("fill must be >= 1")
        self.system = system
        self.alloc = alloc
        self.fill = fill
        self.head = _NULL
        self.tail = _NULL
        self.length = 0
        self.node_count = 0

    # -- construction ------------------------------------------------------

    def _write_node(self, va: int, prev: int, next_va: int, zl: int,
                    count: int) -> None:
        raw = (prev.to_bytes(8, "little") + next_va.to_bytes(8, "little")
               + zl.to_bytes(8, "little") + count.to_bytes(4, "little")
               + b"\x00" * 4)
        self.system.memory.write(va, raw)

    def push_values(self, values: List[bytes]) -> None:
        """Append ``values``, packing them into ziplist nodes of ``fill``."""
        for start in range(0, len(values), self.fill):
            batch = values[start:start + self.fill]
            zl = ziplist_new(self.system, self.alloc, batch)
            node = self.alloc.malloc(NODE_SIZE)
            self._write_node(node, prev=self.tail, next_va=_NULL, zl=zl,
                             count=len(batch))
            if self.tail != _NULL:
                # Patch the old tail's next pointer.
                self.system.memory.write(
                    self.tail + 8, node.to_bytes(8, "little"))
            else:
                self.head = node
            self.tail = node
            self.node_count += 1
            self.length += len(batch)

    # -- traversal -------------------------------------------------------------

    def read_node(self, va: int):
        return node_unpack(self.system.memory.read(va, NODE_SIZE))

    def lrange(self, count: int) -> List[bytes]:
        """The LRANGE front-``count`` traversal: chase nodes, read ziplists."""
        out: List[bytes] = []
        node = self.head
        while node != _NULL and len(out) < count:
            _prev, next_va, zl, node_count = self.read_node(node)
            out.extend(ziplist_read_range(self.system, zl,
                                          min(node_count, count - len(out))))
            node = next_va
        return out

    def free(self) -> None:
        node = self.head
        while node != _NULL:
            _prev, next_va, zl, _count = self.read_node(node)
            ziplist_free(self.alloc, zl)
            self.alloc.free(node)
            node = next_va
        self.head = self.tail = _NULL
        self.length = 0
        self.node_count = 0
