"""The app-aware prefetch guide for Redis (§6.3, Figures 5 and 11).

Shipped as a third-party module: Redis itself is unmodified, and the guide
learns where traversals begin from loader hooks around the server's
command handlers (§5's hooking interface). It then conveys data-structure
layout to the paging subsystem:

* **GET**: on the first fault into an SDS value, subpage-fetch the 9-byte
  header; its length field tells the guide exactly how many pages the
  value spans, which are prefetched at once.

* **LRANGE**: on a fault during a quicklist traversal, subpage-fetch the
  32-byte node struct; it reveals the ziplist pointer (whose ``zlbytes``
  header sizes the ziplist's pages) and the next node, which is chased
  recursively a few nodes ahead. Each subpage arrives well before any full
  4 KiB page, so the chain stays ahead of the application (Figure 11).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.common.units import PAGE_SIZE
from repro.core.guides import GuideContext, PrefetchGuide
from repro.apps.redis.quicklist import NODE_SIZE, node_unpack
from repro.apps.redis.sds import SDS_HEADER

#: How many quicklist nodes the chain runs ahead of the traversal.
CHAIN_DEPTH = 4


class RedisPrefetchGuide(PrefetchGuide):
    """App-aware prefetching for GET and LRANGE."""

    def __init__(self) -> None:
        self._mode: Optional[str] = None
        self._value_va = 0
        self._frontier = 0
        self._chased: Set[int] = set()
        self.get_prefetches = 0
        self.chain_fetches = 0

    # -- loader hooks (called around the server's handlers) -----------------

    def begin_get(self, value_va: int) -> None:
        self._mode = "get"
        self._value_va = value_va

    def begin_lrange(self, head_node_va: int) -> None:
        self._mode = "lrange"
        self._frontier = head_node_va
        self._chased.clear()

    def end_op(self) -> None:
        self._mode = None

    # -- the guide proper ---------------------------------------------------------

    def on_fault(self, ctx: GuideContext, va: int) -> bool:
        if self._mode == "get":
            return self._on_get_fault(ctx, va)
        if self._mode == "lrange":
            self._chase(ctx, self._frontier, CHAIN_DEPTH)
            return True
        return False

    def _on_get_fault(self, ctx: GuideContext, va: int) -> bool:
        base = self._value_va
        if not base <= va < base + PAGE_SIZE:
            # A later page of the value (or something else): the pages we
            # issued below cover it; nothing app-specific left to add.
            return False
        first_page = base - (base % PAGE_SIZE)

        def on_header(raw: bytes) -> None:
            length = int.from_bytes(raw[:4], "little")
            total = SDS_HEADER + length + 1
            last_page = (base + total - 1) - ((base + total - 1) % PAGE_SIZE)
            page = first_page + PAGE_SIZE
            while page <= last_page:
                if ctx.prefetch_page(page):
                    self.get_prefetches += 1
                page += PAGE_SIZE

        ctx.fetch_subpage(base, 4, on_header)
        return True

    def _chase(self, ctx: GuideContext, node_va: int, depth: int) -> None:
        """Figure 11: subpage-fetch node -> prefetch its ziplist -> recurse."""
        if depth <= 0 or node_va == 0 or node_va in self._chased:
            return
        self._chased.add(node_va)
        self.chain_fetches += 1

        def on_node(raw: bytes) -> None:
            _prev, next_va, zl, _count = node_unpack(raw)
            ctx.prefetch_page(node_va)
            if zl:
                self._prefetch_ziplist(ctx, zl)
            self._frontier = next_va
            self._chase(ctx, next_va, depth - 1)

        ctx.fetch_subpage(node_va, NODE_SIZE, on_node)

    def _prefetch_ziplist(self, ctx: GuideContext, zl_va: int) -> None:
        def on_zl_header(raw: bytes) -> None:
            zlbytes = int.from_bytes(raw[:4], "little")
            page = zl_va - (zl_va % PAGE_SIZE)
            end = zl_va + zlbytes
            while page < end:
                ctx.prefetch_page(page)
                page += PAGE_SIZE

        ctx.fetch_subpage(zl_va, 4, on_zl_header)
