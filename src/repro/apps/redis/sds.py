"""Simple Dynamic Strings — Redis's string representation [62].

Layout in far memory (little-endian), mirroring sds:

    [len: u32][alloc: u32][flags: u8][data ...][NUL]

The header-then-data split is what the §6.3 GET guide exploits: a subpage
fetch of the 9-byte header reveals the exact value length, so the guide
prefetches precisely ``ceil((header+len+1)/4096)`` pages instead of letting
a general-purpose prefetcher guess.
"""

from __future__ import annotations

from repro.alloc.mimalloc import Mimalloc
from repro.core.api import BaseSystem

#: Header bytes before the character data.
SDS_HEADER = 9


def sds_new(system: BaseSystem, alloc: Mimalloc, data: bytes) -> int:
    """Allocate and initialize an SDS; returns its VA."""
    total = SDS_HEADER + len(data) + 1
    va = alloc.malloc(total)
    header = (len(data).to_bytes(4, "little")
              + len(data).to_bytes(4, "little") + b"\x00")
    system.memory.write(va, header + data + b"\x00")
    return va


def sds_len(system: BaseSystem, va: int) -> int:
    """Read just the length field (the guide's subpage target)."""
    return int.from_bytes(system.memory.read(va, 4), "little")


def sds_read(system: BaseSystem, va: int) -> bytes:
    """Read the full string: header first, then the data bytes."""
    length = sds_len(system, va)
    return system.memory.read(va + SDS_HEADER, length)


def sds_free(alloc: Mimalloc, va: int) -> None:
    """Release an SDS allocation."""
    alloc.free(va)
