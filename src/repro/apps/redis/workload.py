"""redis-benchmark-shaped workload generators (§6.2, §6.3). The ``run``
drivers are **deprecated** closed-loop aliases over the Service protocol
(byte-identical, plus a ``DeprecationWarning``) — new experiments drive
the ``redis`` service open-loop through :mod:`repro.serve` instead (see
docs/SERVING.md).

* :class:`GetWorkload` — GET-dominated serving. Sizes are fixed (4 KiB /
  64 KiB) or the "mixed" Facebook photo-serving distribution: six equally
  likely sizes, 4 KiB through 128 KiB.
* :class:`LRangeWorkload` — the modified redis-benchmark of §6.2: many
  separate lists, LRANGE of the front elements.
* :class:`DelGetWorkload` — the §6.3 guided-paging scenario: populate
  small values, DEL ~70% at random (fragmenting pages), then GET the
  survivors; bandwidth is the metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.stats import Histogram
from repro.apps.api import Request, deprecated_entry_point
from repro.apps.redis.server import RedisServer
from repro.apps.redis.service import RedisService

#: The Facebook photo-serving mix (§6.2): six equally distributed sizes.
PHOTO_MIX_SIZES = (4096, 8192, 16384, 32768, 65536, 131072)


def _value(rng: random.Random, size: int) -> bytes:
    """A pseudo-random value with a recognizable prefix for verification."""
    seed = rng.randrange(1 << 30)
    prefix = seed.to_bytes(4, "little")
    body = bytes(((seed >> (8 * (j % 4))) + j * 131) % 256
                 for j in range(min(size - 4, 60)))
    return (prefix + body).ljust(size, b"\xA5")[:size]


@dataclass
class RequestStats:
    """Per-request latency + throughput summary of one run."""

    queries: int
    elapsed_us: float
    latencies: Histogram
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.queries / (self.elapsed_us / 1e6)


class GetWorkload:
    """Populate a keyspace, then issue random GETs."""

    def __init__(self, value_size="mixed", n_keys: int = 1500,
                 n_queries: int = 3000, seed: int = 21) -> None:
        if value_size != "mixed" and (not isinstance(value_size, int)
                                      or value_size <= 0):
            raise ValueError("value_size must be 'mixed' or a positive int")
        self.value_size = value_size
        self.n_keys = n_keys
        self.n_queries = n_queries
        self.seed = seed
        self._expected: Dict[bytes, bytes] = {}

    def _size_for(self, rng: random.Random) -> int:
        if self.value_size == "mixed":
            return rng.choice(PHOTO_MIX_SIZES)
        return self.value_size

    @property
    def footprint_bytes(self) -> int:
        if self.value_size == "mixed":
            average = sum(PHOTO_MIX_SIZES) / len(PHOTO_MIX_SIZES)
        else:
            average = self.value_size
        return int(self.n_keys * average)

    def populate(self, server: RedisServer) -> None:
        rng = random.Random(self.seed)
        for i in range(self.n_keys):
            key = b"key:%d" % i
            value = _value(rng, self._size_for(rng))
            server.set(key, value)
            self._expected[key] = value[:16]

    def run(self, server: RedisServer, verify: bool = True) -> RequestStats:
        """Deprecated closed-loop driver (thin alias over :meth:`drive` —
        identical request sequence, identical metrics digest). New
        experiments should drive :class:`RedisService` through
        :mod:`repro.serve` instead."""
        deprecated_entry_point("GetWorkload.run", "repro.serve with the "
                               "'redis' service")
        return self.drive(server, verify=verify)

    def drive(self, server: RedisServer, verify: bool = True) -> RequestStats:
        """Closed-loop GET driver over the Service protocol.

        The request keys are sampled as one batch up front (the sampler
        touches only its own ``random.Random``, so the draw sequence is
        identical to sampling inline) and served in order.
        """
        service = RedisService(server)
        rng = random.Random(self.seed + 1)
        keys = [b"key:%d" % rng.randrange(self.n_keys)
                for _ in range(self.n_queries)]
        latencies = Histogram()
        clock = server.system.clock
        begin = clock.now
        for key in keys:
            t0 = clock.now
            response = service.handle(Request("get", key=key))
            latencies.record(clock.now - t0)
            if verify and (not response.ok
                           or response.value[:16] != self._expected[key]):
                raise AssertionError(f"GET {key!r} returned corrupted value")
        return RequestStats(queries=self.n_queries,
                            elapsed_us=clock.now - begin,
                            latencies=latencies,
                            metrics=server.system.metrics())


class LRangeWorkload:
    """Populate many lists, then LRANGE their fronts."""

    def __init__(self, n_lists: int = 400, elems_per_list: int = 64,
                 elem_bytes: int = 96, lrange_count: int = 48,
                 n_queries: int = 800, seed: int = 33) -> None:
        self.n_lists = n_lists
        self.elems_per_list = elems_per_list
        self.elem_bytes = elem_bytes
        self.lrange_count = lrange_count
        self.n_queries = n_queries
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        return self.n_lists * self.elems_per_list * (self.elem_bytes + 2)

    def populate(self, server: RedisServer) -> None:
        rng = random.Random(self.seed)
        # Push in random list order so lists interleave in memory, as a
        # random population of a real keyspace would.
        pushes: List[int] = [i % self.n_lists
                             for i in range(self.n_lists * self.elems_per_list)]
        rng.shuffle(pushes)
        batch: Dict[int, List[bytes]] = {}
        for list_id in pushes:
            batch.setdefault(list_id, []).append(_value(rng, self.elem_bytes))
            if len(batch[list_id]) == 8:
                server.rpush(b"list:%d" % list_id, batch.pop(list_id))
        for list_id, values in batch.items():
            server.rpush(b"list:%d" % list_id, values)

    def run(self, server: RedisServer, verify: bool = True) -> RequestStats:
        """Deprecated closed-loop driver (thin alias over :meth:`drive`);
        see :meth:`GetWorkload.run`."""
        deprecated_entry_point("LRangeWorkload.run", "repro.serve with the "
                               "'redis' service")
        return self.drive(server, verify=verify)

    def drive(self, server: RedisServer, verify: bool = True) -> RequestStats:
        """Closed-loop LRANGE driver; keys pre-sampled as one batch (the
        sampler touches only its own rng, so the sequence is identical)."""
        service = RedisService(server)
        rng = random.Random(self.seed + 1)
        keys = [b"list:%d" % rng.randrange(self.n_lists)
                for _ in range(self.n_queries)]
        latencies = Histogram()
        clock = server.system.clock
        begin = clock.now
        for key in keys:
            t0 = clock.now
            response = service.handle(
                Request("lrange", key=key, args=(self.lrange_count,)))
            values = response.value if response.ok else []
            latencies.record(clock.now - t0)
            if verify:
                if len(values) != min(self.lrange_count, self.elems_per_list):
                    raise AssertionError("LRANGE returned wrong count")
                if any(len(v) != self.elem_bytes for v in values):
                    raise AssertionError("LRANGE returned wrong sizes")
        return RequestStats(queries=self.n_queries,
                            elapsed_us=clock.now - begin,
                            latencies=latencies,
                            metrics=server.system.metrics())


class DelGetWorkload:
    """SET small values, DEL ~70%, GET survivors (Figure 12)."""

    def __init__(self, n_keys: int = 8000, value_bytes: int = 128,
                 del_fraction: float = 0.7, n_queries: int = 4000,
                 seed: int = 44) -> None:
        self.n_keys = n_keys
        self.value_bytes = value_bytes
        self.del_fraction = del_fraction
        self.n_queries = n_queries
        self.seed = seed
        self._survivors: List[bytes] = []

    @property
    def footprint_bytes(self) -> int:
        return self.n_keys * self.value_bytes

    def populate(self, server: RedisServer) -> None:
        rng = random.Random(self.seed)
        for i in range(self.n_keys):
            server.set(b"key:%d" % i, _value(rng, self.value_bytes))

    def run_del_phase(self, server: RedisServer) -> None:
        rng = random.Random(self.seed + 1)
        self._survivors = []
        for i in range(self.n_keys):
            key = b"key:%d" % i
            if rng.random() < self.del_fraction:
                server.delete(key)
            else:
                self._survivors.append(key)

    def run_get_phase(self, server: RedisServer) -> RequestStats:
        rng = random.Random(self.seed + 2)
        latencies = Histogram()
        clock = server.system.clock
        begin = clock.now
        for _ in range(self.n_queries):
            key = self._survivors[rng.randrange(len(self._survivors))]
            t0 = clock.now
            value = server.get(key)
            latencies.record(clock.now - t0)
            if len(value) != self.value_bytes:
                raise AssertionError("GET returned wrong size after DELs")
        return RequestStats(queries=self.n_queries,
                            elapsed_us=clock.now - begin,
                            latencies=latencies,
                            metrics=server.system.metrics())
