"""Quicksort over a far-memory integer array (Figure 7(a)).

The paper sorts a vector of random integers with ``std::sort``. Here the
array lives in disaggregated memory and is sorted with an external
quicksort: three-way partitioning passes stream the array through the
paging subsystem chunk by chunk (reads of the input, partitioned writes to
a scratch array, copy-back), and small segments are sorted in-memory after
a single load. Comparison work is charged in CPU cycles per element, so
completion time reflects both compute and paging — exactly the trade-off
Figure 7(a) sweeps across local-memory ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.views import PagedArray

#: Segments at or below this many elements are loaded and sorted in memory.
SMALL_SEGMENT = 2048
#: Elements processed per streaming chunk (one 4 KiB page of int64).
CHUNK = 512
#: Charged compute: cycles per element per partition pass / per in-memory
#: sort comparison (branch + compare + move).
PARTITION_CYCLES = 3.0
SORT_CYCLES = 4.0


@dataclass
class QuicksortResult:
    count: int
    elapsed_us: float
    metrics: Dict[str, Any]


class QuicksortWorkload:
    """Sort ``count`` random 64-bit integers living in far memory."""

    def __init__(self, count: int = 1 << 17, seed: int = 1234) -> None:
        if count < 4:
            raise ValueError("need at least 4 elements")
        self.count = count
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        # Input array + partition scratch.
        return 2 * self.count * 8

    def run(self, system: BaseSystem, verify: bool = True) -> QuicksortResult:
        arr = PagedArray(system, self.count, np.int64, name="qsort-data")
        scratch = PagedArray(system, self.count, np.int64, name="qsort-scratch")
        rng = np.random.default_rng(self.seed)
        for start, stop in arr.chunks(CHUNK * 8):
            values = rng.integers(0, 2 ** 62, size=stop - start, dtype=np.int64)
            arr.store(start, values)

        begin = system.clock.now
        self._quicksort(system, arr, scratch)
        elapsed = system.clock.now - begin

        if verify:
            previous_max = None
            for start, stop in arr.chunks(CHUNK * 8):
                values = arr.load(start, stop)
                if np.any(values[1:] < values[:-1]):
                    raise AssertionError("array not sorted within chunk")
                if previous_max is not None and values[0] < previous_max:
                    raise AssertionError("array not sorted across chunks")
                previous_max = values[-1]
        return QuicksortResult(count=self.count, elapsed_us=elapsed,
                               metrics=system.metrics())

    # -- sorting --------------------------------------------------------------

    def _quicksort(self, system: BaseSystem, arr: PagedArray,
                   scratch: PagedArray) -> None:
        stack = [(0, self.count)]
        while stack:
            lo, hi = stack.pop()
            n = hi - lo
            if n <= 1:
                continue
            if n <= SMALL_SEGMENT:
                segment = arr.load(lo, hi)
                segment.sort()
                arr.store(lo, segment)
                system.cpu_cycles(n * max(1.0, np.log2(n)) * SORT_CYCLES)
                continue
            lt, gt = self._partition(system, arr, scratch, lo, hi)
            # Recurse smaller side last so the stack stays shallow.
            sides = sorted([(lo, lt), (gt, hi)], key=lambda s: s[1] - s[0])
            stack.extend(sides)

    def _partition(self, system: BaseSystem, arr: PagedArray,
                   scratch: PagedArray, lo: int, hi: int):
        """Three-way partition of ``[lo, hi)`` via the scratch array.

        Returns ``(lt, gt)``: elements in ``[lt, gt)`` equal the pivot.
        """
        pivot = self._median_of_three(system, arr, lo, hi)
        front = lo
        back = hi
        equal_count = 0
        for start in range(lo, hi, CHUNK):
            stop = min(start + CHUNK, hi)
            chunk = arr.load(start, stop)
            system.cpu_cycles(len(chunk) * PARTITION_CYCLES)
            less = chunk[chunk < pivot]
            greater = chunk[chunk > pivot]
            equal_count += len(chunk) - len(less) - len(greater)
            if len(less):
                scratch.store(front, less)
                front += len(less)
            if len(greater):
                back -= len(greater)
                scratch.store(back, greater)
        # Lay out less | equal | greater back into the input array.
        lt, gt = front, front + equal_count
        for start in range(lo, lt, CHUNK):
            stop = min(start + CHUNK, lt)
            arr.store(start, scratch.load(start, stop))
        if equal_count:
            for start in range(lt, gt, CHUNK):
                stop = min(start + CHUNK, gt)
                arr.store(start, np.full(stop - start, pivot, dtype=np.int64))
        for start in range(gt, hi, CHUNK):
            stop = min(start + CHUNK, hi)
            arr.store(start, scratch.load(start, stop))
        return lt, gt

    @staticmethod
    def _median_of_three(system: BaseSystem, arr: PagedArray,
                         lo: int, hi: int):
        a = arr.get(lo)
        b = arr.get((lo + hi) // 2)
        c = arr.get(hi - 1)
        system.cpu_cycles(8)
        return sorted((a, b, c))[1]
