"""Synthetic access-pattern workloads for prefetcher characterization.

Each pattern walks the same far-memory region with the same per-access
compute charge; only the *order* differs. Sweeping the patterns against
the prefetchers produces a capability matrix: which policy predicts which
structure — the space the paper's §4.3 argument (general-purpose
prefetchers cover regular patterns; guides cover the rest) lives in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.common.units import MIB, PAGE_SIZE
from repro.core.api import BaseSystem


def sequential(pages: int, rng: random.Random) -> List[int]:
    """Page 0, 1, 2, ... — readahead's home turf."""
    return list(range(pages))


def strided(pages: int, rng: random.Random, stride: int = 4) -> List[int]:
    """Every ``stride``-th page — trend/stride territory, readahead waste."""
    return [p for p in range(0, pages, stride)]


def reverse(pages: int, rng: random.Random) -> List[int]:
    """Backward scan — defeats forward-only readahead."""
    return list(range(pages - 1, -1, -1))


def interleaved(pages: int, rng: random.Random) -> List[int]:
    """Two forward streams from distant starts, alternating — the
    multi-stream case only the stride table handles."""
    half = pages // 2
    order: List[int] = []
    for i in range(half):
        order.append(i)
        order.append(half + i)
    return order


def uniform_random(pages: int, rng: random.Random) -> List[int]:
    """Uniformly random pages — nothing predicts this."""
    return [rng.randrange(pages) for _ in range(pages)]


def zipf_random(pages: int, rng: random.Random, skew: float = 1.1) -> List[int]:
    """Skewed random (hot set) — caching helps, prefetching doesn't."""
    weights = [1.0 / (rank ** skew) for rank in range(1, pages + 1)]
    return rng.choices(range(pages), weights=weights, k=pages)


PATTERNS: Dict[str, Callable[[int, random.Random], List[int]]] = {
    "sequential": sequential,
    "strided": strided,
    "reverse": reverse,
    "interleaved": interleaved,
    "random": uniform_random,
    "zipf": zipf_random,
}


@dataclass
class PatternResult:
    pattern: str
    accesses: int
    elapsed_us: float
    metrics: Dict[str, Any]

    @property
    def us_per_access(self) -> float:
        return self.elapsed_us / self.accesses


class PatternWorkload:
    """Walk a far-memory region in a named order."""

    def __init__(self, pattern: str, working_set_bytes: int = 8 * MIB,
                 compute_us_per_access: float = 0.4, seed: int = 13) -> None:
        if pattern not in PATTERNS:
            raise ValueError(
                f"unknown pattern {pattern!r}; pick from {sorted(PATTERNS)}")
        self.pattern = pattern
        self.working_set_bytes = working_set_bytes
        self.compute_us = compute_us_per_access
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        return self.working_set_bytes

    def run(self, system: BaseSystem) -> PatternResult:
        region = system.mmap(self.working_set_bytes, name=self.pattern)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                i.to_bytes(4, "little") * 8)
        system.clock.advance(5000)  # start cold: populate spilled out
        order = PATTERNS[self.pattern](pages, random.Random(self.seed))
        begin = system.clock.now
        for page in order:
            got = system.memory.read(region.base + page * PAGE_SIZE, 32)
            if got != page.to_bytes(4, "little") * 8:
                raise AssertionError(f"page {page} corrupted")
            system.cpu(self.compute_us)
        return PatternResult(pattern=self.pattern, accesses=len(order),
                             elapsed_us=system.clock.now - begin,
                             metrics=system.metrics())
