"""Token-level LLM inference with its KV cache in disaggregated memory.

The flagship scenario from ROADMAP item 2: a config-sized transformer
(``layers x heads x head_dim``) whose **per-sequence KV cache** lives in
far memory, accessed through the same paging path as every other app.
The two inference phases stress the memory system in opposite ways:

* **Prefill** writes the full prompt's K/V entries per layer as long
  sequential spans (``write_batch`` of whole-layer runs) — the
  streaming-write pattern readahead prefetchers love.
* **Decode** appends one token's K/V per layer and then performs a
  random ``read_batch`` attention gather over sampled past positions —
  the pointer-chasing pattern that punishes small local caches.

Everything the model "computes" is a pure function of token identities,
so the decoded token stream and the final KV bytes are *exactly*
reproducible across kernels (DiLOS/Fastswap/AIFM), local-memory ratios,
scalar-vs-batch execution, and seeded net-fault plans — the paper's
compatibility invariant, enforced by ``tests/test_llm_differential.py``:

* a K/V entry for ``(token, pos, layer)`` is a BLAKE2b keystream;
* the attention gather for step ``pos`` reads a seeded sample of past
  positions, and the next token is a CRC-32 of the *bytes actually
  gathered from memory* — so any corruption anywhere in the paging or
  transport stack changes the output stream loudly.

On top of the single-node engines this module provides:

* :class:`TieringPolicy` — hot layers pinned local (re-touched on every
  append so reclaim keeps them resident), cold layers paged to the
  remote pool, plus an LRU capacity bound on finished sequences.
* :class:`LlmWorkload` — the closed-loop driver (seeded prompt/output
  length distributions, TTFT/TPOT accounting, token + KV digests).
* :class:`LlmService` — the ``SERVICES`` port driven by ``repro serve``.
* :func:`run_pd` — **prefill/decode disaggregation**: P prefill tenants
  and D decode tenants on one :class:`~repro.sim.tenancy.ComputeCluster`
  (shared clock + shared cluster backend), connected by a KV-transfer
  step (the prefill side reads its finished cache back through its
  paging path, the decode side writes it into its own); sweeping
  local-memory ratio x P:D split reproduces the regime crossover from
  SNIPPETS.md #3.
"""

from __future__ import annotations

import hashlib
import random
import struct
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.apps.api import Request, Response, SERVICES
from repro.common.units import KIB, MIB
from repro.mem import batch

#: Model-recipe version, mixed into every derived byte/token so a future
#: change to the recipe shows up as a digest change, never silently.
_MODEL_VERSION = 1

# -- the deterministic model --------------------------------------------------


@dataclass(frozen=True)
class LlmConfig:
    """Shape of the simulated model and its KV-cache geometry.

    One K (or V) entry for a ``(token, layer)`` pair is
    ``heads * head_dim`` bytes (int8-style, one byte per element); a
    token therefore owns ``2 * layers * entry_bytes`` of KV cache.
    """

    layers: int = 4
    heads: int = 2
    head_dim: int = 32
    vocab: int = 32768
    #: Per-sequence KV capacity (prompt + generated), in tokens.
    max_tokens: int = 192
    #: Past positions sampled by each attention gather (<= 16).
    attn_window: int = 8
    #: CPU cycles charged per prefilled / decoded token.
    prefill_cycles_per_token: float = 600.0
    decode_cycles_per_token: float = 2400.0

    def __post_init__(self) -> None:
        if min(self.layers, self.heads, self.head_dim, self.vocab,
               self.max_tokens) <= 0:
            raise ValueError("config dimensions must be positive")
        if not 1 <= self.attn_window <= 16:
            raise ValueError("attn_window must be in [1, 16] (one BLAKE2b "
                             "block seeds at most 16 draws)")

    @property
    def entry_bytes(self) -> int:
        """Bytes per K (or V) entry: ``heads * head_dim`` int8 elements."""
        return self.heads * self.head_dim

    @property
    def kv_token_bytes(self) -> int:
        """KV bytes one token owns across all layers (K and V)."""
        return 2 * self.layers * self.entry_bytes

    @property
    def seq_bytes(self) -> int:
        """Region size for one sequence's full KV cache."""
        return self.max_tokens * self.kv_token_bytes


@dataclass(frozen=True)
class TieringPolicy:
    """How a sequence's KV cache splits between local and remote tiers.

    ``hot_layers`` counts the leading layers re-touched on every decode
    append, which keeps their pages at the head of the reclaim LRU —
    "pinned local" as long as the local cache can hold them; the
    remaining cold layers page to the remote pool under pressure.
    ``capacity_tokens`` bounds the KV held for *finished* sequences
    (service mode): beyond it the least-recently-finished sequence's
    cache is unmapped (``llm.seqs_evicted``). ``None`` keeps everything.
    """

    hot_layers: int = 1
    capacity_tokens: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hot_layers < 0:
            raise ValueError("hot_layers must be >= 0")
        if self.capacity_tokens is not None and self.capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive or None")


def _registry_of(system: Any) -> Any:
    """The system's MetricsRegistry (kernels expose it via ``obs``)."""
    return system.obs.registry if hasattr(system, "obs") else system.registry


def _blake(*fields: int) -> bytes:
    """One 64-byte BLAKE2b block keyed by integer coordinates."""
    h = hashlib.blake2b(digest_size=64)
    h.update(struct.pack("<%dq" % (len(fields) + 1), _MODEL_VERSION, *fields))
    return h.digest()


def kv_entry(token: int, pos: int, layer: int, half: int,
             nbytes: int) -> bytes:
    """The K (``half=0``) or V (``half=1``) entry bytes for a token.

    A pure function of its coordinates — every kernel, batch mode and
    fault plan must end up with these exact bytes in memory.
    """
    block = _blake(1, token, pos, layer, half)
    reps = -(-nbytes // len(block))
    return (block * reps)[:nbytes]


def prompt_tokens(seed: int, n: int, vocab: int) -> List[int]:
    """The deterministic prompt for ``seed``: ``n`` tokens of ``vocab``."""
    out: List[int] = []
    counter = 0
    while len(out) < n:
        block = _blake(2, seed, counter)
        for i in range(0, len(block), 4):
            if len(out) >= n:
                break
            out.append(struct.unpack_from("<I", block, i)[0] % vocab)
        counter += 1
    return out


def attn_positions(seed: int, pos: int, layer: int,
                   window: int) -> List[int]:
    """Past positions step ``pos`` attends to in ``layer`` (seeded draw).

    At most ``window`` draws from ``[0, pos)``; repeats are kept (a
    position can be gathered twice, like a real attention head
    concentrating). Depends only on the sequence seed and coordinates,
    never on the kernel executing the gather.
    """
    span = min(window, pos)
    block = _blake(3, seed, pos, layer)
    return [struct.unpack_from("<I", block, 4 * i)[0] % pos
            for i in range(span)]


def next_token(gathered: bytes, pos: int, vocab: int) -> int:
    """The decoded token: CRC-32 of the bytes the gather actually read."""
    return (zlib.crc32(gathered) ^ (pos * 0x9E3779B1)) % vocab


def token_stream_digest(streams: Sequence[Sequence[int]]) -> str:
    """SHA-256 over per-request decoded token streams, in request order."""
    h = hashlib.sha256()
    for tokens in streams:
        h.update(struct.pack("<%dI" % (len(tokens) + 1),
                             len(tokens), *tokens))
    return h.hexdigest()


def combine_kv_digests(digests: Sequence[str]) -> str:
    """SHA-256 over per-sequence KV digests, in request order."""
    h = hashlib.sha256()
    for digest in digests:
        h.update(digest.encode())
    return h.hexdigest()


# -- KV-cache engines ---------------------------------------------------------
#
# Both engines expose the same surface: write_prompt / append / gather /
# kv_digest / free. The paged engine stores the cache layer-major in one
# far-memory region; the AIFM engine stores it in a RemArray with the
# same index math. Scalar and batch execution issue the *same* (va,
# data/size) element lists, so the batch engine's exactness contract
# carries over untouched.


class KvCache:
    """One sequence's KV cache as a region over :class:`VirtualMemory`.

    Layout is layer-major: entry ``(layer, half, pos)`` lives at offset
    ``((layer * 2 + half) * max_tokens + pos) * entry_bytes``, so a
    whole layer's K (or V) run for a prompt is one contiguous span —
    what makes prefill sequential — while decode gathers hop across the
    whole region — what makes decode random.
    """

    def __init__(self, system: Any, config: LlmConfig,
                 name: str = "llm.kv") -> None:
        self.system = system
        self.config = config
        self.region = system.mmap(config.seq_bytes, ddc=True, name=name)
        self.n_tokens = 0

    def _va(self, layer: int, half: int, pos: int) -> int:
        cfg = self.config
        return (self.region.base
                + ((layer * 2 + half) * cfg.max_tokens + pos)
                * cfg.entry_bytes)

    def write_prompt(self, tokens: Sequence[int]) -> int:
        """Sequential prefill: per layer, one K span + one V span."""
        cfg = self.config
        if self.n_tokens or len(tokens) > cfg.max_tokens:
            raise ValueError("prompt must be written first and fit")
        vas: List[int] = []
        datas: List[bytes] = []
        for layer in range(cfg.layers):
            for half in (0, 1):
                vas.append(self._va(layer, half, 0))
                datas.append(b"".join(
                    kv_entry(token, pos, layer, half, cfg.entry_bytes)
                    for pos, token in enumerate(tokens)))
        self._write(vas, datas)
        self.n_tokens = len(tokens)
        return sum(len(d) for d in datas)

    def append(self, token: int) -> int:
        """Decode-phase append: one K + one V entry per layer."""
        cfg = self.config
        pos = self.n_tokens
        if pos >= cfg.max_tokens:
            raise ValueError("KV cache full")
        vas = []
        datas = []
        for layer in range(cfg.layers):
            for half in (0, 1):
                vas.append(self._va(layer, half, pos))
                datas.append(kv_entry(token, pos, layer, half,
                                      cfg.entry_bytes))
        self._write(vas, datas)
        self.n_tokens = pos + 1
        return sum(len(d) for d in datas)

    def gather(self, layer: int, positions: Sequence[int]) -> bytes:
        """Random attention gather: K then V entries at ``positions``."""
        cfg = self.config
        vas = ([self._va(layer, 0, pos) for pos in positions]
               + [self._va(layer, 1, pos) for pos in positions])
        sizes = [cfg.entry_bytes] * len(vas)
        return b"".join(self._read(vas, sizes))

    def pin_hot(self, hot_layers: int) -> None:
        """Re-touch the hot layers' live prefix so reclaim keeps them
        resident (touch faults pages in without moving bytes)."""
        if not self.n_tokens:
            return
        cfg = self.config
        span = self.n_tokens * cfg.entry_bytes
        for layer in range(min(hot_layers, cfg.layers)):
            for half in (0, 1):
                self.system.memory.touch(self._va(layer, half, 0), span)

    def kv_digest(self) -> str:
        """SHA-256 of the live KV bytes, read back through the paging
        path (layer-major, K then V per layer)."""
        cfg = self.config
        span = self.n_tokens * cfg.entry_bytes
        h = hashlib.sha256()
        if span:
            vas = [self._va(layer, half, 0)
                   for layer in range(cfg.layers) for half in (0, 1)]
            for chunk in self._read(vas, [span] * len(vas)):
                h.update(chunk)
        return h.hexdigest()

    def read_layer(self, layer: int, half: int) -> bytes:
        """One whole live K/V run (the KV-transfer unit)."""
        span = self.n_tokens * self.config.entry_bytes
        if not span:
            return b""
        return self._read([self._va(layer, half, 0)], [span])[0]

    def write_layer(self, layer: int, half: int, data: bytes,
                    n_tokens: int) -> None:
        """Ingest one transferred K/V run (decode side of P:D)."""
        if len(data) != n_tokens * self.config.entry_bytes:
            raise ValueError("transferred run has the wrong size")
        self._write([self._va(layer, half, 0)], [data])
        self.n_tokens = max(self.n_tokens, n_tokens)

    def free(self) -> None:
        self.system.munmap(self.region)

    # Scalar and batch paths issue identical element lists; only the
    # execution engine differs (repro.mem.batch's exactness contract).

    def _write(self, vas: List[int], datas: List[bytes]) -> None:
        memory = self.system.memory
        if batch.ENABLED:
            memory.write_batch(vas, datas)
        else:
            for va, data in zip(vas, datas):
                memory.write(va, data)

    def _read(self, vas: List[int], sizes: List[int]) -> List[bytes]:
        memory = self.system.memory
        if batch.ENABLED:
            return memory.read_batch(vas, sizes)
        return [memory.read(va, size) for va, size in zip(vas, sizes)]


class AifmKvCache:
    """The AIFM port: the same cache in a remoteable array.

    Index math mirrors :class:`KvCache` exactly — entry
    ``(layer, half, pos)`` is item ``(layer * 2 + half) * max_tokens +
    pos`` — so the bytes (and therefore the decoded stream) are
    identical; only the runtime underneath differs. Hot-layer pinning is
    a no-op: AIFM's own evacuation policy manages object residency.
    """

    def __init__(self, runtime: Any, config: LlmConfig,
                 name: str = "llm.kv") -> None:
        from repro.baselines.aifm import RemArray

        self.runtime = runtime
        self.config = config
        self.array = RemArray(runtime, 2 * config.layers * config.max_tokens,
                              config.entry_bytes)
        self.n_tokens = 0

    def _index(self, layer: int, half: int, pos: int) -> int:
        return (layer * 2 + half) * self.config.max_tokens + pos

    def write_prompt(self, tokens: Sequence[int]) -> int:
        cfg = self.config
        if self.n_tokens or len(tokens) > cfg.max_tokens:
            raise ValueError("prompt must be written first and fit")
        indices: List[int] = []
        items: List[bytes] = []
        for layer in range(cfg.layers):
            for half in (0, 1):
                for pos, token in enumerate(tokens):
                    indices.append(self._index(layer, half, pos))
                    items.append(kv_entry(token, pos, layer, half,
                                          cfg.entry_bytes))
        self._set(indices, items)
        self.n_tokens = len(tokens)
        return len(items) * cfg.entry_bytes

    def append(self, token: int) -> int:
        cfg = self.config
        pos = self.n_tokens
        if pos >= cfg.max_tokens:
            raise ValueError("KV cache full")
        indices = []
        items = []
        for layer in range(cfg.layers):
            for half in (0, 1):
                indices.append(self._index(layer, half, pos))
                items.append(kv_entry(token, pos, layer, half,
                                      cfg.entry_bytes))
        self._set(indices, items)
        self.n_tokens = pos + 1
        return len(items) * cfg.entry_bytes

    def gather(self, layer: int, positions: Sequence[int]) -> bytes:
        indices = ([self._index(layer, 0, pos) for pos in positions]
                   + [self._index(layer, 1, pos) for pos in positions])
        return b"".join(self._get(indices))

    def pin_hot(self, hot_layers: int) -> None:
        """AIFM manages residency itself; pinning is not part of its
        programming model."""

    def kv_digest(self) -> str:
        cfg = self.config
        h = hashlib.sha256()
        for layer in range(cfg.layers):
            for half in (0, 1):
                indices = [self._index(layer, half, pos)
                           for pos in range(self.n_tokens)]
                for chunk in self._get(indices):
                    h.update(chunk)
        return h.hexdigest()

    def free(self) -> None:
        self.array.free()

    def _set(self, indices: List[int], items: List[bytes]) -> None:
        if batch.ENABLED:
            self.array.set_batch(indices, items)
        else:
            for index, item in zip(indices, items):
                self.array.set(index, item)

    def _get(self, indices: List[int]) -> List[bytes]:
        if not indices:
            return []
        if batch.ENABLED:
            return self.array.get_batch(indices)
        return [self.array.get(index) for index in indices]


def make_kv_cache(system: Any, config: LlmConfig,
                  name: str = "llm.kv") -> Any:
    """The right engine for ``system``: paged for kernels exposing the
    POSIX-ish memory facade, the RemArray port for AIFM runtimes."""
    if hasattr(system, "memory"):
        return KvCache(system, config, name=name)
    return AifmKvCache(system, config, name=name)


# -- the inference loop -------------------------------------------------------


@dataclass
class SequenceRun:
    """What generating one sequence produced."""

    seed: int
    prompt_len: int
    output: List[int]
    #: Simulated µs from request start to the first decoded token.
    ttft_us: float
    #: Mean simulated µs per decoded token after the first.
    tpot_us: float
    kv_digest: str = ""


def generate(system: Any, cache: Any, config: LlmConfig, seed: int,
             prompt_len: int, out_len: int,
             tiering: TieringPolicy = TieringPolicy(),
             counters: Optional["_LlmCounters"] = None) -> SequenceRun:
    """Run prefill + decode for one sequence on ``cache``.

    ``system`` only supplies the clock and CPU-charge hooks, so the same
    loop drives paged kernels and AIFM runtimes. The decoded stream is a
    pure function of ``(seed, prompt_len, out_len)`` *provided* the
    memory system returns the bytes that were written — which is exactly
    what the differential suite asserts.
    """
    if prompt_len <= 0 or out_len < 0:
        raise ValueError("prompt_len must be positive, out_len >= 0")
    if prompt_len + out_len > config.max_tokens:
        raise ValueError("sequence exceeds max_tokens")
    clock = system.clock
    t0 = clock.now
    prompt = prompt_tokens(seed, prompt_len, config.vocab)
    written = cache.write_prompt(prompt)
    system.cpu_cycles(prompt_len * config.prefill_cycles_per_token)
    if counters is not None:
        counters.prefill(prompt_len, written)

    output: List[int] = []
    ttft_us = clock.now - t0
    t_first = clock.now
    for _ in range(out_len):
        pos = cache.n_tokens
        gathered = b"".join(
            cache.gather(layer,
                         attn_positions(seed, pos, layer,
                                        config.attn_window))
            for layer in range(config.layers))
        token = next_token(gathered, pos, config.vocab)
        written = cache.append(token)
        cache.pin_hot(tiering.hot_layers)
        system.cpu_cycles(config.decode_cycles_per_token)
        output.append(token)
        if counters is not None:
            counters.decode(len(gathered), written)
        if len(output) == 1:
            ttft_us = clock.now - t0
            t_first = clock.now
    tpot_us = ((clock.now - t_first) / (len(output) - 1)
               if len(output) > 1 else 0.0)
    return SequenceRun(seed=seed, prompt_len=prompt_len, output=output,
                       ttft_us=ttft_us, tpot_us=tpot_us)


class _LlmCounters:
    """Canonical ``llm.*`` instruments on a system's registry."""

    def __init__(self, registry: Any) -> None:
        self._registry = registry
        for name in ("llm.requests", "llm.prefill_tokens",
                     "llm.decode_tokens", "llm.kv_bytes_written",
                     "llm.kv_bytes_gathered", "llm.seqs_evicted",
                     "llm.kv_transfer_bytes"):
            registry.counter(name)

    def prefill(self, tokens: int, written: int) -> None:
        self._registry.add("llm.prefill_tokens", tokens)
        self._registry.add("llm.kv_bytes_written", written)

    def decode(self, gathered: int, written: int) -> None:
        self._registry.add("llm.decode_tokens")
        self._registry.add("llm.kv_bytes_gathered", gathered)
        self._registry.add("llm.kv_bytes_written", written)

    def request(self) -> None:
        self._registry.add("llm.requests")

    def evicted(self) -> None:
        self._registry.add("llm.seqs_evicted")

    def transfer(self, nbytes: int) -> None:
        self._registry.add("llm.kv_transfer_bytes", nbytes)


# -- request sampling ---------------------------------------------------------


@dataclass(frozen=True)
class LlmRequest:
    """One inference request: a seeded prompt and an output budget."""

    seed: int
    prompt_len: int
    out_len: int


def sample_requests(n: int, seed: int, prompt_min: int = 12,
                    prompt_max: int = 48, out_min: int = 4,
                    out_max: int = 12) -> List[LlmRequest]:
    """The seeded request stream every front end shares (lengths are
    uniform draws — crude, but the *distribution* is not the point; the
    determinism is)."""
    if not 0 < prompt_min <= prompt_max or not 0 <= out_min <= out_max:
        raise ValueError("bad length bounds")
    rng = random.Random(seed)
    return [LlmRequest(seed=rng.randrange(1 << 30),
                       prompt_len=rng.randint(prompt_min, prompt_max),
                       out_len=rng.randint(out_min, out_max))
            for _ in range(n)]


# -- closed-loop workload -----------------------------------------------------


@dataclass
class LlmResult:
    """Summary of one closed-loop inference run."""

    requests: int
    prefill_tokens: int
    decoded_tokens: int
    elapsed_us: float
    #: SHA-256 over the decoded token streams, in request order.
    token_digest: str
    #: SHA-256 over per-sequence KV read-back digests, in request order.
    kv_digest: str
    ttft_us: List[float] = field(default_factory=list)
    tpot_us: List[float] = field(default_factory=list)
    outputs: List[List[int]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)


class LlmWorkload:
    """Closed-loop LLM inference: N seeded requests, run to completion.

    All sequences stay mapped until the final KV read-back, so the
    aggregate cache footprint builds up across requests and the tiering
    policy has something to tier.
    """

    def __init__(self, n_requests: int = 8, seed: int = 31,
                 config: LlmConfig = LlmConfig(),
                 tiering: TieringPolicy = TieringPolicy(),
                 prompt_min: int = 12, prompt_max: int = 48,
                 out_min: int = 4, out_max: int = 12) -> None:
        self.config = config
        self.tiering = tiering
        self.requests = sample_requests(n_requests, seed, prompt_min,
                                        prompt_max, out_min, out_max)

    @property
    def footprint_bytes(self) -> int:
        """KV bytes actually touched across every request."""
        return sum((r.prompt_len + r.out_len) for r in self.requests) \
            * self.config.kv_token_bytes

    def run(self, system: Any) -> LlmResult:
        """Drive every request on ``system`` (paged kernels or AIFM)."""
        counters = _LlmCounters(_registry_of(system))
        begin = system.clock.now
        caches: List[Any] = []
        runs: List[SequenceRun] = []
        for i, req in enumerate(self.requests):
            counters.request()
            cache = make_kv_cache(system, self.config, name=f"llm.kv.{i}")
            caches.append(cache)
            runs.append(generate(system, cache, self.config, req.seed,
                                 req.prompt_len, req.out_len,
                                 tiering=self.tiering, counters=counters))
        kv_digests = [cache.kv_digest() for cache in caches]
        for cache in caches:
            cache.free()
        outputs = [run.output for run in runs]
        return LlmResult(
            requests=len(runs),
            prefill_tokens=sum(r.prompt_len for r in self.requests),
            decoded_tokens=sum(len(o) for o in outputs),
            elapsed_us=system.clock.now - begin,
            token_digest=token_stream_digest(outputs),
            kv_digest=combine_kv_digests(kv_digests),
            ttft_us=[run.ttft_us for run in runs],
            tpot_us=[run.tpot_us for run in runs],
            outputs=outputs,
            metrics=system.metrics(),
        )

    # AIFM runtimes share the same driver (make_kv_cache dispatches);
    # the alias keeps the harness's run/run_aifm convention.
    run_aifm = run


# -- the serving port ---------------------------------------------------------


class LlmService:
    """LLM inference behind the unified Service protocol.

    ``handle`` serves one ``generate`` request end to end (prefill +
    decode on the tenant's own KV engine) and reports the phase split in
    the response value — ``ttft_us`` (prefill + first decode step) and
    ``tpot_us`` — which the serving frontend folds into the
    ``serve.ttft_us`` / ``serve.tpot_us`` SLO histograms. Finished
    sequences stay cached (warm KV) up to the tiering policy's
    ``capacity_tokens``; beyond it the least-recently-finished cache is
    evicted.
    """

    name = "llm"

    def __init__(self, system: Any, config: LlmConfig,
                 tiering: TieringPolicy, prompt_min: int, prompt_max: int,
                 out_min: int, out_max: int, seed: int = 47) -> None:
        self.system = system
        self.config = config
        self.tiering = tiering
        self.prompt_min, self.prompt_max = prompt_min, prompt_max
        self.out_min, self.out_max = out_min, out_max
        self.seed = seed
        self._counters = _LlmCounters(_registry_of(system))
        self._ttft = _registry_of(system).log_histogram("llm.ttft_us")
        self._tpot = _registry_of(system).log_histogram("llm.tpot_us")
        #: finished-sequence caches, least-recently-finished first.
        self._finished: "OrderedDict[int, Any]" = OrderedDict()
        self._cached_tokens = 0
        self._seq = 0

    # -- the Service protocol ------------------------------------------------

    def handle(self, request: Request) -> Response:
        if request.op != "generate":
            return Response.fail(f"unknown op {request.op!r}; "
                                 "the llm service only generates")
        try:
            seed, prompt_len, out_len = request.args
        except ValueError:
            return Response.fail("generate needs args=(seed, prompt_len, "
                                 "out_len)")
        try:
            self._counters.request()
            cache = make_kv_cache(self.system, self.config,
                                  name=f"llm.kv.{self._seq}")
            run = generate(self.system, cache, self.config, seed,
                           prompt_len, out_len, tiering=self.tiering,
                           counters=self._counters)
        except ValueError as exc:
            return Response.fail(str(exc))
        self._finished[self._seq] = cache
        self._cached_tokens += cache.n_tokens
        self._seq += 1
        self._evict()
        self._ttft.record(run.ttft_us)
        self._tpot.record(run.tpot_us)
        return Response(value={
            "tokens": len(run.output),
            "last_token": run.output[-1] if run.output else -1,
            "ttft_us": run.ttft_us,
            "tpot_us": run.tpot_us,
        })

    def sample_request(self, rng: random.Random) -> Request:
        """A seeded draw from the request-length model."""
        seed = rng.randrange(1 << 30)
        prompt_len = rng.randint(self.prompt_min, self.prompt_max)
        out_len = rng.randint(self.out_min, self.out_max)
        return Request("generate", key=b"seq:%d" % seed,
                       args=(seed, prompt_len, out_len))

    # -- tiering: finished-sequence eviction ---------------------------------

    def _evict(self) -> None:
        cap = self.tiering.capacity_tokens
        if cap is None:
            return
        while self._cached_tokens > cap and len(self._finished) > 1:
            _, cache = self._finished.popitem(last=False)
            self._cached_tokens -= cache.n_tokens
            cache.free()
            self._counters.evicted()


@SERVICES.register("llm")
def build_llm_service(system, layers: int = 2, heads: int = 2,
                      head_dim: int = 16, max_tokens: int = 64,
                      attn_window: int = 4, hot_layers: int = 1,
                      capacity_tokens: Optional[int] = 2048,
                      prompt_min: int = 6, prompt_max: int = 20,
                      out_min: int = 2, out_max: int = 6,
                      seed: int = 47) -> LlmService:
    """Boot one LLM service on ``system`` (deliberately small defaults:
    serving presets issue thousands of requests)."""
    config = LlmConfig(layers=layers, heads=heads, head_dim=head_dim,
                       max_tokens=max_tokens, attn_window=attn_window)
    tiering = TieringPolicy(hot_layers=hot_layers,
                            capacity_tokens=capacity_tokens)
    return LlmService(system, config, tiering, prompt_min, prompt_max,
                      out_min, out_max, seed=seed)


# -- prefill/decode disaggregation -------------------------------------------


def parse_pd_split(text: str) -> Tuple[int, int]:
    """``"3:1"`` -> ``(3, 1)`` prefill:decode tenant counts."""
    parts = text.split(":")
    if len(parts) != 2:
        raise ValueError(f"bad P:D split {text!r}: expected 'P:D' "
                         "(e.g. '3:1', '1:1', '1:3')")
    try:
        p, d = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"bad P:D split {text!r}: counts must be "
                         "integers") from None
    if p <= 0 or d <= 0:
        raise ValueError(f"bad P:D split {text!r}: counts must be positive")
    return p, d


@dataclass
class PdResult:
    """What one prefill/decode disaggregation run produced."""

    kind: str
    split: str
    ratio: float
    backend: str
    #: Shared-clock time from boot to the last decoded sequence.
    makespan_us: float
    token_digest: str
    kv_digest: str
    requests: int
    decoded_tokens: int
    kv_transfer_bytes: int
    ttft_us: List[float]
    per_tenant: Dict[str, Dict[str, float]]
    snapshot_digest: str


class _PdCoordinator:
    """The KV-transfer rendezvous between prefill and decode tenants.

    Request ``i`` is prefills' ``i % P``'s job and decodes' ``i % D``'s
    job — a fixed assignment, so the interleaving (and the final digest)
    is a pure function of the configuration. Transfers carry the raw
    layer runs read back from the prefill tenant's memory; the decode
    tenant writes them into its own cache, so both sides charge their
    full paging paths for the handoff.
    """

    def __init__(self, requests: List[LlmRequest], n_decode: int) -> None:
        self.requests = requests
        self.queues: List[deque] = [deque() for _ in range(n_decode)]
        self.prefill_done = 0
        self.n_prefill_jobs = len(requests)
        self.runs: List[Optional[SequenceRun]] = [None] * len(requests)
        self.ttft_us: List[float] = [0.0] * len(requests)
        self.transfer_bytes = 0

    def push(self, req_index: int, n_decode: int, prompt: List[int],
             runs: List[bytes]) -> None:
        self.queues[req_index % n_decode].append((req_index, prompt, runs))
        self.prefill_done += 1
        self.transfer_bytes += sum(len(r) for r in runs)

    @property
    def all_prefilled(self) -> bool:
        return self.prefill_done >= self.n_prefill_jobs


def _prefill_tenant(coord: _PdCoordinator, requests: List[LlmRequest],
                    indices: List[int], n_decode: int, config: LlmConfig,
                    tiering: TieringPolicy):
    """Workload factory for one prefill tenant: prefill each assigned
    request, read the KV back (the transfer's send side), hand it to the
    coordinator, free the local copy."""

    def factory(system) -> Iterator[str]:
        def gen() -> Iterator[str]:
            counters = _LlmCounters(_registry_of(system))
            for i in indices:
                req = requests[i]
                counters.request()
                cache = KvCache(system, config, name=f"llm.prefill.{i}")
                prompt = prompt_tokens(req.seed, req.prompt_len,
                                       config.vocab)
                written = cache.write_prompt(prompt)
                system.cpu_cycles(req.prompt_len
                                  * config.prefill_cycles_per_token)
                counters.prefill(req.prompt_len, written)
                yield "prefill"
                runs = [cache.read_layer(layer, half)
                        for layer in range(config.layers)
                        for half in (0, 1)]
                counters.transfer(sum(len(r) for r in runs))
                cache.free()
                coord.push(i, n_decode, prompt, runs)
                yield "transfer"
        return gen()
    return factory


class _ActiveSeq:
    """One in-flight sequence on a decode tenant's continuous batch."""

    __slots__ = ("index", "req", "cache", "t0", "t_first", "output")

    def __init__(self, index: int, req: LlmRequest, cache: KvCache,
                 t0: float) -> None:
        self.index = index
        self.req = req
        self.cache = cache
        self.t0 = t0
        self.t_first = t0
        self.output: List[int] = []


def _decode_tenant(coord: _PdCoordinator, requests: List[LlmRequest],
                   my_queue: int, n_jobs: int, config: LlmConfig,
                   tiering: TieringPolicy, idle_us: float):
    """Workload factory for one decode tenant: **continuous batching**.

    Ingests transferred KV as it arrives and round-robins single-token
    decode steps across every live sequence — so the tenant's working
    set is its whole concurrent batch (its share of the request stream),
    not one sequence. That is what couples the P:D split to the
    local-memory ratio: decode-heavy splits shrink each decoder's batch
    (and multiply the decode role's aggregate local cache), which pays
    off exactly when KV no longer fits. Idles (charging ``idle_us`` per
    op, so the shared clock always advances) only while it has nothing
    live and prefills are still in flight.
    """

    def factory(system) -> Iterator[str]:
        def gen() -> Iterator[str]:
            counters = _LlmCounters(_registry_of(system))
            clock = system.clock
            queue = coord.queues[my_queue]
            active: List[_ActiveSeq] = []
            done = 0
            rr = 0
            while done < n_jobs:
                while queue:  # ingest everything transferred so far
                    i, _prompt, layer_runs = queue.popleft()
                    req = requests[i]
                    t0 = clock.now
                    cache = KvCache(system, config,
                                    name=f"llm.decode.{i}")
                    run_iter = iter(layer_runs)
                    for layer in range(config.layers):
                        for half in (0, 1):
                            cache.write_layer(layer, half, next(run_iter),
                                              req.prompt_len)
                            yield "ingest"
                    if req.out_len == 0:
                        run = SequenceRun(
                            seed=req.seed, prompt_len=req.prompt_len,
                            output=[], ttft_us=0.0, tpot_us=0.0,
                            kv_digest=cache.kv_digest())
                        cache.free()
                        coord.runs[i] = run
                        done += 1
                    else:
                        active.append(_ActiveSeq(i, req, cache, t0))
                if not active:
                    system.cpu(idle_us)
                    yield "idle"
                    continue
                rr %= len(active)
                seq = active[rr]
                pos = seq.cache.n_tokens
                gathered = b"".join(
                    seq.cache.gather(layer,
                                     attn_positions(seq.req.seed, pos,
                                                    layer,
                                                    config.attn_window))
                    for layer in range(config.layers))
                token = next_token(gathered, pos, config.vocab)
                written = seq.cache.append(token)
                seq.cache.pin_hot(tiering.hot_layers)
                system.cpu_cycles(config.decode_cycles_per_token)
                seq.output.append(token)
                counters.decode(len(gathered), written)
                if len(seq.output) == 1:
                    coord.ttft_us[seq.index] = clock.now - seq.t0
                    seq.t_first = clock.now
                yield "decode"
                if len(seq.output) >= seq.req.out_len:
                    tpot = ((clock.now - seq.t_first)
                            / (len(seq.output) - 1)
                            if len(seq.output) > 1 else 0.0)
                    run = SequenceRun(
                        seed=seq.req.seed, prompt_len=seq.req.prompt_len,
                        output=seq.output,
                        ttft_us=coord.ttft_us[seq.index], tpot_us=tpot,
                        kv_digest=seq.cache.kv_digest())
                    seq.cache.free()
                    coord.runs[seq.index] = run
                    active.pop(rr)
                    done += 1
                else:
                    rr += 1
        return gen()
    return factory


#: Defaults for the P:D disaggregation scenario — sized so the sweep's
#: local-memory ratios actually move the fault rate (the per-token KV is
#: 1 KiB here, vs 128 B in the service defaults).
PD_CONFIG = LlmConfig(layers=4, heads=4, head_dim=32, max_tokens=96,
                      attn_window=8)


def run_pd(kind: str = "dilos-readahead", ratio: float = 0.25,
           split: str = "1:1", backend: Any = "sharded:2",
           n_requests: int = 12, seed: int = 31,
           config: LlmConfig = PD_CONFIG,
           tiering: TieringPolicy = TieringPolicy(),
           prompt_min: int = 24, prompt_max: int = 56,
           out_min: int = 8, out_max: int = 16,
           quantum_us: float = 150.0, idle_us: float = 40.0,
           remote_mem_bytes: int = 64 * MIB,
           net_faults: Any = None, net_retry: Any = None) -> PdResult:
    """One prefill/decode disaggregation run on a shared cluster.

    P prefill tenants and D decode tenants (``split="P:D"``) round-robin
    on one shared clock and one shared cluster backend. The sweep's
    ``ratio`` budgets the *total* local memory across the fleet
    (``local_bytes_for(footprint, ratio)``), allocated by role: each
    prefill tenant gets a fixed streaming stipend (sequential writes
    need almost no residency) and the decode tenants split the rest —
    so a P:D split is also a KV-cache split. Decode-heavy splits shrink
    each decoder's continuous batch *and* grow the decode role's
    aggregate cache — a win exactly while KV doesn't fit — but starve
    prefill throughput, burning idle decoder slices on the shared
    clock once it does. That tension is the regime crossover
    (see docs/LLM_WORKLOAD.md).

    AIFM kinds are rejected here: AIFM tenants cannot share a cluster
    backend (bump allocation), and P:D *is* a shared-backend scenario.
    Use the single-node AIFM port (:class:`LlmWorkload`) instead.
    """
    from repro.core.spec import SystemSpec
    from repro.harness.experiment import local_bytes_for
    from repro.sim.tenancy import ComputeCluster

    if kind.startswith("aifm"):
        raise ValueError(
            "P:D disaggregation needs a shared cluster backend, which "
            "AIFM tenants cannot join (bump allocation); run the llm "
            "workload single-node on AIFM instead")
    n_prefill, n_decode = parse_pd_split(split)
    requests = sample_requests(n_requests, seed, prompt_min, prompt_max,
                               out_min, out_max)
    footprint = sum((r.prompt_len + r.out_len) for r in requests) \
        * config.kv_token_bytes
    total_local = local_bytes_for(footprint, ratio, minimum=96 * KIB)
    prefill_local = 96 * KIB
    decode_local = max((total_local - n_prefill * prefill_local)
                       // n_decode, 96 * KIB)

    cluster = ComputeCluster(backend=backend,
                             remote_mem_bytes=remote_mem_bytes,
                             quantum_us=quantum_us)
    coord = _PdCoordinator(requests, n_decode)
    prefill_spec = SystemSpec(kind=kind, local_mem_bytes=prefill_local,
                              net_faults=net_faults, net_retry=net_retry)
    decode_spec = SystemSpec(kind=kind, local_mem_bytes=decode_local,
                             net_faults=net_faults, net_retry=net_retry)
    for p in range(n_prefill):
        indices = [i for i in range(n_requests) if i % n_prefill == p]
        cluster.add_tenant(f"prefill{p}", prefill_spec,
                           _prefill_tenant(coord, requests, indices,
                                           n_decode, config, tiering))
    for d in range(n_decode):
        n_jobs = len([i for i in range(n_requests) if i % n_decode == d])
        cluster.add_tenant(f"decode{d}", decode_spec,
                           _decode_tenant(coord, requests, d, n_jobs,
                                          config, tiering, idle_us))
    snapshot = cluster.run()

    runs = [run for run in coord.runs]
    if any(run is None for run in runs):
        raise RuntimeError("P:D run finished with undecoded requests")
    outputs = [run.output for run in runs]
    per_tenant = {
        t.name: {"ops": float(t.ops), "run_us": t.run_us,
                 "major_faults": snapshot.value(
                     f"tenant.{t.name}.fault.major")}
        for t in cluster.tenants}
    return PdResult(
        kind=kind,
        split=f"{n_prefill}:{n_decode}",
        ratio=ratio,
        backend=cluster.backend_label,
        makespan_us=cluster.clock.now,
        token_digest=token_stream_digest(outputs),
        kv_digest=combine_kv_digests([run.kv_digest for run in runs]),
        requests=n_requests,
        decoded_tokens=sum(len(o) for o in outputs),
        kv_transfer_bytes=coord.transfer_bytes,
        ttft_us=list(coord.ttft_us),
        per_tenant=per_tenant,
        snapshot_digest=snapshot.digest(),
    )


class PdSweepRunner:
    """Picklable per-cell runner for the ratio x P:D-split sweep grid.

    ``sweep_ratios`` drives it with the *split* string in the "system"
    slot of each grid cell (the kernel kind is fixed per sweep), so
    ``repro sweep llm --jobs`` reuses the whole fan-out/merge machinery;
    byte-identity between serial and parallel runs follows from
    :func:`run_pd` being a pure function of its arguments.
    """

    def __init__(self, kind: str, n_requests: int = 12,
                 seed: int = 31) -> None:
        self.kind = kind
        self.n_requests = n_requests
        self.seed = seed

    def __call__(self, split: str, ratio: float, backend: Any = "sharded:2"):
        from repro.harness.experiment import Measurement

        result = run_pd(kind=self.kind, ratio=ratio, split=split,
                        backend=backend, n_requests=self.n_requests,
                        seed=self.seed)
        return Measurement(
            "", "", 0.0, value=result.makespan_us / 1000.0, unit="ms",
            extra={"kind": self.kind, "split": result.split,
                   "token_digest": result.token_digest,
                   "kv_digest": result.kv_digest,
                   "snapshot_digest": result.snapshot_digest,
                   "kv_transfer_bytes": result.kv_transfer_bytes,
                   "decoded_tokens": result.decoded_tokens})


def best_split_per_ratio(measurements: List[Any]) -> Dict[float, str]:
    """ratio -> fastest P:D split, the sweep's headline (the crossover
    shows as this map changing across ratios)."""
    best: Dict[float, Any] = {}
    for m in measurements:
        if m.ratio not in best or m.value < best[m.ratio].value:
            best[m.ratio] = m
    return {ratio: m.system for ratio, m in sorted(best.items())}


__all__ = [
    "AifmKvCache",
    "KvCache",
    "LlmConfig",
    "LlmRequest",
    "LlmResult",
    "LlmService",
    "LlmWorkload",
    "PD_CONFIG",
    "PdResult",
    "PdSweepRunner",
    "SequenceRun",
    "TieringPolicy",
    "attn_positions",
    "best_split_per_ratio",
    "build_llm_service",
    "combine_kv_digests",
    "generate",
    "kv_entry",
    "make_kv_cache",
    "next_token",
    "parse_pd_split",
    "prompt_tokens",
    "run_pd",
    "sample_requests",
    "token_stream_digest",
]
