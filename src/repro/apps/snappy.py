"""In-memory compression/decompression (Figures 7(c), 7(d)).

The paper compresses files with Google's snappy. We implement a
snappy-flavoured byte codec from scratch — run-length tokens plus literal
spans, the degenerate-match case of snappy's literal/copy format — and run
it streaming over far-memory buffers. Input data is generated log-like
(long byte runs) so the codec genuinely compresses, and every run verifies
the decompressed output against the original.

Compression cost is charged per input byte (snappy-class codecs spend a
few cycles per byte), so the workload is compute/IO balanced like the real
one: sequential access, prefetch-friendly, and sensitive to how well a
system overlaps fetching with compression — the regime where AIFM's
streaming prefetcher shines at 12.5% local memory (§6.2).

Both the paging version (unmodified POSIX-ish code) and the AIFM port
(remoteable arrays, as the paper had to write) live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from repro.core.api import BaseSystem
from repro.baselines.aifm import AifmRuntime, RemArray
from repro.apps.views import PagedBytes

#: Streaming block size (16 pages).
BLOCK = 64 * 1024
#: Minimum run length worth a run token.
RUN_MIN = 4
#: Charged compute (cycles per input byte).
COMPRESS_CYCLES_PER_BYTE = 5.0
DECOMPRESS_CYCLES_PER_BYTE = 2.2

_OP_LITERAL = 0
_OP_RUN = 1


def compress_block(data: bytes) -> bytes:
    """Encode ``data`` as literal/run tokens."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    boundaries = np.nonzero(np.diff(arr))[0] + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [len(arr)])))
    out = bytearray()
    literal_start = None

    def flush_literal(end: int) -> None:
        nonlocal literal_start
        if literal_start is None:
            return
        span = data[literal_start:end]
        cursor = 0
        while cursor < len(span):
            piece = span[cursor:cursor + 65535]
            out.append(_OP_LITERAL)
            out.extend(len(piece).to_bytes(2, "little"))
            out.extend(piece)
            cursor += len(piece)
        literal_start = None

    for start, length in zip(starts.tolist(), lengths.tolist()):
        if length >= RUN_MIN:
            flush_literal(start)
            remaining = length
            while remaining > 0:
                piece = min(remaining, 65535)
                out.append(_OP_RUN)
                out.extend(piece.to_bytes(2, "little"))
                out.append(arr[start])
                remaining -= piece
        elif literal_start is None:
            literal_start = start
    flush_literal(len(arr))
    return bytes(out)


def decompress_block(blob: bytes) -> bytes:
    """Invert :func:`compress_block`."""
    out = bytearray()
    cursor = 0
    end = len(blob)
    while cursor < end:
        op = blob[cursor]
        length = int.from_bytes(blob[cursor + 1:cursor + 3], "little")
        cursor += 3
        if op == _OP_LITERAL:
            out.extend(blob[cursor:cursor + length])
            cursor += length
        elif op == _OP_RUN:
            out.extend(blob[cursor:cursor + 1] * length)
            cursor += 1
        else:
            raise ValueError(f"corrupt stream: op {op}")
    return bytes(out)


def generate_loglike(nbytes: int, seed: int) -> bytes:
    """Log-like data: runs of repeated bytes with geometric lengths."""
    rng = np.random.default_rng(seed)
    mean_run = 48
    n_runs = max(4, int(nbytes / mean_run * 1.3))
    values = rng.integers(32, 96, size=n_runs).astype(np.uint8)
    lengths = rng.geometric(1.0 / mean_run, size=n_runs)
    data = np.repeat(values, lengths)[:nbytes]
    if len(data) < nbytes:
        data = np.concatenate([data, np.zeros(nbytes - len(data), np.uint8)])
    return data.tobytes()


@dataclass
class SnappyResult:
    mode: str
    input_bytes: int
    output_bytes: int
    elapsed_us: float
    metrics: Dict[str, Any]


class SnappyWorkload:
    """Compress (or decompress) ``n_files`` far-memory files, streaming."""

    def __init__(self, n_files: int = 4, file_bytes: int = 512 * 1024,
                 seed: int = 9) -> None:
        self.n_files = n_files
        self.file_bytes = file_bytes
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        # Input files + output buffers of comparable size.
        return 2 * self.n_files * self.file_bytes

    def _originals(self) -> List[bytes]:
        return [generate_loglike(self.file_bytes, self.seed + i)
                for i in range(self.n_files)]

    # -- paging systems (unmodified application) ----------------------------

    def run_compress(self, system: BaseSystem, verify: bool = True) -> SnappyResult:
        originals = self._originals()
        inputs = []
        for i, blob in enumerate(originals):
            buf = PagedBytes(system, self.file_bytes, name=f"snappy-in-{i}")
            for start, stop in buf.chunks(BLOCK):
                buf.write(start, blob[start:stop])
            inputs.append(buf)
        out = PagedBytes(system, 2 * self.n_files * self.file_bytes,
                         name="snappy-out")
        begin = system.clock.now
        out_cursor = 0
        compressed_spans = []
        for buf in inputs:
            spans = []
            for start, stop in buf.chunks(BLOCK):
                block = buf.read(start, stop - start)
                system.cpu_cycles((stop - start) * COMPRESS_CYCLES_PER_BYTE)
                packed = compress_block(block)
                out.write(out_cursor, len(packed).to_bytes(4, "little"))
                out.write(out_cursor + 4, packed)
                spans.append((out_cursor, len(packed), stop - start))
                out_cursor += 4 + len(packed)
            compressed_spans.append(spans)
        elapsed = system.clock.now - begin
        if verify:
            for original, spans in zip(originals, compressed_spans):
                rebuilt = bytearray()
                for offset, length, _raw in spans:
                    rebuilt.extend(decompress_block(out.read(offset + 4, length)))
                if bytes(rebuilt) != original:
                    raise AssertionError("compression round-trip failed")
        return SnappyResult(mode="compress",
                            input_bytes=self.n_files * self.file_bytes,
                            output_bytes=out_cursor, elapsed_us=elapsed,
                            metrics=system.metrics())

    def run_decompress(self, system: BaseSystem, verify: bool = True) -> SnappyResult:
        originals = self._originals()
        packed_files = [[compress_block(blob[s:s + BLOCK])
                         for s in range(0, len(blob), BLOCK)]
                        for blob in originals]
        inputs = []
        for i, blocks in enumerate(packed_files):
            total = sum(4 + len(b) for b in blocks)
            buf = PagedBytes(system, total, name=f"snappy-cin-{i}")
            cursor = 0
            for block in blocks:
                buf.write(cursor, len(block).to_bytes(4, "little"))
                buf.write(cursor + 4, block)
                cursor += 4 + len(block)
            inputs.append((buf, len(blocks)))
        out = PagedBytes(system, self.n_files * self.file_bytes,
                         name="snappy-raw-out")
        begin = system.clock.now
        out_cursor = 0
        for buf, n_blocks in inputs:
            cursor = 0
            for _ in range(n_blocks):
                length = int.from_bytes(buf.read(cursor, 4), "little")
                packed = buf.read(cursor + 4, length)
                cursor += 4 + length
                raw = decompress_block(packed)
                system.cpu_cycles(len(raw) * DECOMPRESS_CYCLES_PER_BYTE)
                out.write(out_cursor, raw)
                out_cursor += len(raw)
        elapsed = system.clock.now - begin
        if verify:
            cursor = 0
            for blob in originals:
                if out.read(cursor, 64) != blob[:64]:
                    raise AssertionError("decompression round-trip failed")
                cursor += len(blob)
        return SnappyResult(mode="decompress", input_bytes=out_cursor,
                            output_bytes=out_cursor, elapsed_us=elapsed,
                            metrics=system.metrics())

    # -- AIFM port (remoteable arrays, streaming prefetch) ----------------------

    def run_compress_aifm(self, runtime: AifmRuntime,
                          verify: bool = True) -> SnappyResult:
        originals = self._originals()
        arrays = []
        for i, blob in enumerate(originals):
            arr = RemArray(runtime, count=self.file_bytes // 4096,
                           item_size=4096)
            for ci in range(arr.nchunks):
                arr.write_chunk(ci, blob[ci * 4096:(ci + 1) * 4096])
            arrays.append(arr)
        begin = runtime.clock.now
        outputs = []
        for arr, original in zip(arrays, originals):
            blocks = []
            pending = bytearray()
            for chunk in arr.scan_chunks():
                pending.extend(chunk)
                while len(pending) >= BLOCK:
                    raw = bytes(pending[:BLOCK])
                    del pending[:BLOCK]
                    runtime.cpu_cycles(len(raw) * COMPRESS_CYCLES_PER_BYTE)
                    packed = compress_block(raw)
                    blocks.append(runtime.allocate(max(1, len(packed)),
                                                   data=packed))
            if pending:
                raw = bytes(pending)
                runtime.cpu_cycles(len(raw) * COMPRESS_CYCLES_PER_BYTE)
                packed = compress_block(raw)
                blocks.append(runtime.allocate(max(1, len(packed)), data=packed))
            outputs.append(blocks)
        elapsed = runtime.clock.now - begin
        if verify:
            for original, blocks in zip(originals, outputs):
                rebuilt = b"".join(decompress_block(ptr.read())
                                   for ptr in blocks)
                if rebuilt != original:
                    raise AssertionError("AIFM compression round-trip failed")
        out_bytes = sum(ptr.size for blocks in outputs for ptr in blocks)
        return SnappyResult(mode="compress",
                            input_bytes=self.n_files * self.file_bytes,
                            output_bytes=out_bytes, elapsed_us=elapsed,
                            metrics=runtime.metrics())

    def run_decompress_aifm(self, runtime: AifmRuntime,
                            verify: bool = True) -> SnappyResult:
        originals = self._originals()
        packed_files = [[compress_block(blob[s:s + BLOCK])
                         for s in range(0, len(blob), BLOCK)]
                        for blob in originals]
        inputs = [[runtime.allocate(len(b), data=b) for b in blocks]
                  for blocks in packed_files]
        begin = runtime.clock.now
        total_out = 0
        outputs = []
        for blocks in inputs:
            raws = []
            for i, ptr in enumerate(blocks):
                for ahead in blocks[i + 1:i + 1 + runtime.config.prefetch_depth]:
                    ahead.prefetch()
                packed = ptr.read()
                raw = decompress_block(packed)
                runtime.cpu_cycles(len(raw) * DECOMPRESS_CYCLES_PER_BYTE)
                raws.append(runtime.allocate(len(raw), data=raw))
                total_out += len(raw)
            outputs.append(raws)
        elapsed = runtime.clock.now - begin
        if verify:
            for original, raws in zip(originals, outputs):
                rebuilt = b"".join(ptr.read() for ptr in raws)
                if rebuilt != original:
                    raise AssertionError("AIFM decompression round-trip failed")
        return SnappyResult(mode="decompress", input_bytes=total_out,
                            output_bytes=total_out, elapsed_us=elapsed,
                            metrics=runtime.metrics())
