"""K-means clustering over far-memory points (Figure 7(b)).

The paper runs scikit-learn's k-means; its chunked distance computations
visit point blocks in an order with little page locality, which "stresses
the slow page reclamation" (§6.2) — the workload where DiLOS beats
Fastswap by up to 2.71x. We reproduce that structure: Lloyd's algorithm
over a far-memory point matrix, visiting chunks in a shuffled order each
iteration, with distance arithmetic charged per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.views import PagedArray

#: Points per processed chunk (rows loaded per step).
CHUNK_POINTS = 256
#: Charged compute per point per centroid per dimension (sub, mul, add).
DISTANCE_CYCLES = 1.5


@dataclass
class KMeansResult:
    points: int
    clusters: int
    iterations: int
    inertia: float
    elapsed_us: float
    metrics: Dict[str, Any]


class KMeansWorkload:
    """Lloyd's k-means on ``n`` points of dimension ``dim``."""

    def __init__(self, n_points: int = 1 << 15, dim: int = 8,
                 clusters: int = 10, iterations: int = 4,
                 seed: int = 77) -> None:
        if clusters < 2 or n_points < clusters:
            raise ValueError("need n_points >= clusters >= 2")
        self.n_points = n_points
        self.dim = dim
        self.clusters = clusters
        self.iterations = iterations
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        # Point matrix plus the per-point label array written every
        # iteration (scikit-learn's ``labels_``).
        return self.n_points * (self.dim + 1) * 8

    def run(self, system: BaseSystem) -> KMeansResult:
        rng = np.random.default_rng(self.seed)
        data = PagedArray(system, self.n_points * self.dim, np.float64,
                          name="kmeans-points")
        # Populate with a genuine mixture so clustering has structure.
        true_centers = rng.normal(0.0, 10.0, size=(self.clusters, self.dim))
        for start, stop in data.chunks(CHUNK_POINTS * self.dim):
            rows = (stop - start) // self.dim
            assignment = rng.integers(0, self.clusters, size=rows)
            pts = true_centers[assignment] + rng.normal(0, 1, (rows, self.dim))
            data.store(start, pts.reshape(-1))

        # Farthest-point seeding over the first chunk: with well-separated
        # mixtures this lands one seed per cluster (k-means++ flavour).
        first = data.load(0, min(CHUNK_POINTS, self.n_points) * self.dim)
        rows = first.reshape(-1, self.dim)
        seeds = [int(rng.integers(len(rows)))]
        nearest = ((rows - rows[seeds[0]]) ** 2).sum(axis=1)
        while len(seeds) < self.clusters:
            candidate = int(nearest.argmax())
            seeds.append(candidate)
            nearest = np.minimum(
                nearest, ((rows - rows[candidate]) ** 2).sum(axis=1))
        centroids = rows[seeds].copy()
        labels = PagedArray(system, self.n_points, np.int64,
                            name="kmeans-labels")
        chunk_starts = list(range(0, self.n_points, CHUNK_POINTS))
        begin = system.clock.now
        inertia = 0.0
        for _iteration in range(self.iterations):
            sums = np.zeros((self.clusters, self.dim))
            counts = np.zeros(self.clusters, dtype=np.int64)
            inertia = 0.0
            # Shuffled chunk order: the irregular page access pattern that
            # makes k-means a reclamation stress test.
            rng.shuffle(chunk_starts)
            for start_point in chunk_starts:
                stop_point = min(start_point + CHUNK_POINTS, self.n_points)
                flat = data.load(start_point * self.dim, stop_point * self.dim)
                pts = flat.reshape(-1, self.dim)
                distances = ((pts[:, None, :] - centroids[None, :, :]) ** 2
                             ).sum(axis=2)
                system.cpu_cycles(len(pts) * self.clusters * self.dim
                                  * DISTANCE_CYCLES)
                best = distances.argmin(axis=1)
                labels.store(start_point, best.astype(np.int64))
                inertia += distances[np.arange(len(pts)), best].sum()
                np.add.at(sums, best, pts)
                np.add.at(counts, best, 1)
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        elapsed = system.clock.now - begin
        return KMeansResult(points=self.n_points, clusters=self.clusters,
                            iterations=self.iterations, inertia=float(inertia),
                            elapsed_us=elapsed, metrics=system.metrics())
