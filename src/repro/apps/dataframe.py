"""A column-store DataFrame library + the NYC-taxi analytics workload
(Figure 8).

The paper runs the C++ DataFrame library over the New York City taxi-trip
data set (40 GB working set, AIFM's own benchmark). We build the pieces
from scratch at simulation scale:

* :class:`DataFrame` — typed columns living in far memory, with chunked
  scan/filter/groupby/reduce operators (compute charged per element);
* :func:`generate_taxi` — a synthetic generator shaped like the taxi data
  (timestamps, passenger counts, trip distances, fares with realistic
  correlations);
* :class:`TaxiAnalyticsWorkload` — the query mix of the AIFM benchmark:
  derive trip duration, aggregate by passenger count, filter long trips,
  and compute fare statistics;
* the AIFM port, whose columns are remoteable arrays paying a presence
  check per element — the cost that makes AIFM 50-83% slower than the
  paging systems when memory is plentiful (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.core.api import BaseSystem
from repro.baselines.aifm import AifmRuntime, RemArray
from repro.apps.views import PagedArray

#: Elements per processed chunk (4 pages of float64).
CHUNK = 2048
#: Charged compute per element for a simple columnar operator.
OP_CYCLES = 3.0


class DataFrame:
    """Named, typed far-memory columns of equal length."""

    def __init__(self, system: BaseSystem, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        self.system = system
        self.length = length
        self._columns: Dict[str, PagedArray] = {}

    def add_column(self, name: str, dtype=np.float64) -> PagedArray:
        if name in self._columns:
            raise ValueError(f"column {name!r} already exists")
        column = PagedArray(self.system, self.length, dtype,
                            name=f"df-{name}")
        self._columns[name] = column
        return column

    def column(self, name: str) -> PagedArray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}") from None

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    # -- chunked operators ----------------------------------------------------

    def _scan(self, names: List[str]):
        columns = [self.column(n) for n in names]
        for start in range(0, self.length, CHUNK):
            stop = min(start + CHUNK, self.length)
            yield start, stop, [c.load(start, stop) for c in columns]

    def reduce(self, name: str, func: Callable[[np.ndarray], float],
               combine: Callable[[float, float], float], init: float) -> float:
        """Chunked reduction of one column."""
        acc = init
        for start, stop, (chunk,) in self._scan([name]):
            self.system.cpu_cycles((stop - start) * OP_CYCLES)
            acc = combine(acc, float(func(chunk)))
        return acc

    def mean(self, name: str) -> float:
        total = self.reduce(name, np.sum, lambda a, b: a + b, 0.0)
        return total / self.length

    def max(self, name: str) -> float:
        return self.reduce(name, np.max, max, -np.inf)

    def min(self, name: str) -> float:
        return self.reduce(name, np.min, min, np.inf)

    def filter_count(self, name: str,
                     predicate: Callable[[np.ndarray], np.ndarray]) -> int:
        """Count rows where ``predicate(chunk)`` is true."""
        count = 0
        for start, stop, (chunk,) in self._scan([name]):
            self.system.cpu_cycles((stop - start) * OP_CYCLES)
            count += int(predicate(chunk).sum())
        return count

    def groupby_count(self, name: str, n_groups: int) -> np.ndarray:
        """Histogram of an integer column over ``[0, n_groups)``."""
        counts = np.zeros(n_groups, dtype=np.int64)
        for start, stop, (chunk,) in self._scan([name]):
            self.system.cpu_cycles((stop - start) * OP_CYCLES)
            counts += np.bincount(chunk.astype(np.int64),
                                  minlength=n_groups)[:n_groups]
        return counts

    def derive(self, out_name: str, in_names: List[str],
               func: Callable[..., np.ndarray], dtype=np.float64) -> None:
        """Materialize ``out = func(*columns)`` as a new column."""
        out = self.add_column(out_name, dtype)
        for start, stop, chunks in self._scan(in_names):
            self.system.cpu_cycles((stop - start) * OP_CYCLES * len(in_names))
            out.store(start, func(*chunks).astype(dtype))

    def covariance(self, a: str, b: str) -> float:
        """Chunked covariance of two columns."""
        n = self.length
        s_a = s_b = s_ab = 0.0
        for start, stop, (ca, cb) in self._scan([a, b]):
            self.system.cpu_cycles((stop - start) * OP_CYCLES * 2)
            s_a += float(ca.sum())
            s_b += float(cb.sum())
            s_ab += float((ca * cb).sum())
        return s_ab / n - (s_a / n) * (s_b / n)


# -- the taxi data set --------------------------------------------------------

TAXI_COLUMNS: Tuple[str, ...] = (
    "pickup_ts", "dropoff_ts", "passenger_count", "trip_distance", "fare")

MAX_PASSENGERS = 7


def taxi_chunk(rng: np.random.Generator, rows: int) -> Dict[str, np.ndarray]:
    """One chunk of synthetic taxi trips with realistic correlations."""
    pickup = rng.integers(1_540_000_000, 1_570_000_000, size=rows)
    distance = rng.gamma(shape=2.0, scale=1.6, size=rows)
    duration = (distance * 180 + rng.normal(300, 120, rows)).clip(60, None)
    fare = 2.5 + distance * 2.0 + rng.normal(0, 1.5, rows).clip(-2, None)
    passengers = rng.integers(1, MAX_PASSENGERS, size=rows)
    return {
        "pickup_ts": pickup.astype(np.int64),
        "dropoff_ts": (pickup + duration).astype(np.int64),
        "passenger_count": passengers.astype(np.int64),
        "trip_distance": distance,
        "fare": fare,
    }


def generate_taxi(system: BaseSystem, rows: int, seed: int = 5) -> DataFrame:
    """Build the taxi DataFrame in far memory."""
    df = DataFrame(system, rows)
    dtypes = {"pickup_ts": np.int64, "dropoff_ts": np.int64,
              "passenger_count": np.int64, "trip_distance": np.float64,
              "fare": np.float64}
    for name in TAXI_COLUMNS:
        df.add_column(name, dtypes[name])
    rng = np.random.default_rng(seed)
    for start in range(0, rows, CHUNK):
        stop = min(start + CHUNK, rows)
        chunk = taxi_chunk(rng, stop - start)
        for name in TAXI_COLUMNS:
            df.column(name).store(start, chunk[name])
    return df


@dataclass
class TaxiResult:
    rows: int
    elapsed_us: float
    answers: Dict[str, float]
    metrics: Dict[str, Any]


class TaxiAnalyticsWorkload:
    """The Figure 8 query mix over the synthetic taxi data."""

    def __init__(self, rows: int = 1 << 17, seed: int = 5) -> None:
        self.rows = rows
        self.seed = seed

    @property
    def footprint_bytes(self) -> int:
        # 5 source columns + 1 derived, 8 bytes each.
        return 6 * self.rows * 8

    def run(self, system: BaseSystem) -> TaxiResult:
        df = generate_taxi(system, self.rows, self.seed)
        begin = system.clock.now
        answers = {}
        df.derive("duration", ["dropoff_ts", "pickup_ts"],
                  lambda d, p: d - p, dtype=np.int64)
        answers["mean_distance"] = df.mean("trip_distance")
        by_passengers = df.groupby_count("passenger_count", MAX_PASSENGERS)
        answers["busiest_party_size"] = float(by_passengers.argmax())
        answers["long_trips"] = float(
            df.filter_count("trip_distance", lambda d: d > 10.0))
        answers["max_duration"] = df.max("duration")
        answers["mean_fare"] = df.mean("fare")
        answers["fare_distance_cov"] = df.covariance("trip_distance", "fare")
        elapsed = system.clock.now - begin
        return TaxiResult(rows=self.rows, elapsed_us=elapsed, answers=answers,
                          metrics=system.metrics())

    # -- AIFM port ---------------------------------------------------------------

    def run_aifm(self, runtime: AifmRuntime) -> TaxiResult:
        rng = np.random.default_rng(self.seed)
        columns: Dict[str, RemArray] = {
            name: RemArray(runtime, self.rows, item_size=8)
            for name in TAXI_COLUMNS}
        for start in range(0, self.rows, CHUNK):
            stop = min(start + CHUNK, self.rows)
            chunk = taxi_chunk(rng, stop - start)
            for name in TAXI_COLUMNS:
                self._store_np(columns[name], start, chunk[name])
        deref = runtime.model.aifm_deref_check

        def scan(name: str):
            """Chunked scan paying a remoteable-pointer check per element."""
            arr = columns[name]
            for ci, raw in enumerate(arr.scan_chunks()):
                runtime.clock.advance(len(raw) // 8 * deref)
                yield ci, np.frombuffer(raw, dtype=np.float64)

        def scan_i64(name: str):
            for ci, chunk in scan(name):
                yield ci, chunk.view(np.int64)

        begin = runtime.clock.now
        answers: Dict[str, float] = {}
        # Derive duration.
        duration = RemArray(runtime, self.rows, item_size=8)
        columns["duration"] = duration
        pickups = dict(scan_i64("pickup_ts"))
        for ci, drop in scan_i64("dropoff_ts"):
            runtime.cpu_cycles(len(drop) * OP_CYCLES * 2)
            values = (drop - pickups[ci]).astype(np.int64)
            runtime.clock.advance(len(values) * deref)
            duration.write_chunk(ci, values.tobytes())
        del pickups
        # Aggregations.
        total = 0.0
        for _ci, chunk in scan("trip_distance"):
            runtime.cpu_cycles(len(chunk) * OP_CYCLES)
            total += float(chunk.sum())
        answers["mean_distance"] = total / self.rows
        counts = np.zeros(MAX_PASSENGERS, dtype=np.int64)
        for _ci, chunk in scan_i64("passenger_count"):
            runtime.cpu_cycles(len(chunk) * OP_CYCLES)
            counts += np.bincount(chunk, minlength=MAX_PASSENGERS)[:MAX_PASSENGERS]
        answers["busiest_party_size"] = float(counts.argmax())
        long_trips = 0
        for _ci, chunk in scan("trip_distance"):
            runtime.cpu_cycles(len(chunk) * OP_CYCLES)
            long_trips += int((chunk > 10.0).sum())
        answers["long_trips"] = float(long_trips)
        peak = -np.inf
        for _ci, chunk in scan_i64("duration"):
            runtime.cpu_cycles(len(chunk) * OP_CYCLES)
            peak = max(peak, float(chunk.max()))
        answers["max_duration"] = peak
        total_fare = 0.0
        for _ci, chunk in scan("fare"):
            runtime.cpu_cycles(len(chunk) * OP_CYCLES)
            total_fare += float(chunk.sum())
        answers["mean_fare"] = total_fare / self.rows
        s_a = s_b = s_ab = 0.0
        fares = dict(scan("fare"))
        for ci, dist in scan("trip_distance"):
            runtime.cpu_cycles(len(dist) * OP_CYCLES * 2)
            s_a += float(dist.sum())
            s_b += float(fares[ci].sum())
            s_ab += float((dist * fares[ci]).sum())
        answers["fare_distance_cov"] = (s_ab / self.rows
                                        - (s_a / self.rows) * (s_b / self.rows))
        elapsed = runtime.clock.now - begin
        return TaxiResult(rows=self.rows, elapsed_us=elapsed, answers=answers,
                          metrics=runtime.metrics())

    @staticmethod
    def _store_np(arr: RemArray, start: int, values: np.ndarray) -> None:
        raw = values.astype(values.dtype.newbyteorder("=")).tobytes()
        per_chunk = arr.items_per_chunk * arr.item_size
        cursor = 0
        index = start
        while cursor < len(raw):
            ci = index // arr.items_per_chunk
            offset = (index % arr.items_per_chunk) * arr.item_size
            take = min(per_chunk - offset, len(raw) - cursor)
            arr._chunks[ci].write(raw[cursor:cursor + take], offset)
            cursor += take
            index += take // arr.item_size
        arr._runtime.counters.add("bulk_stores")


# -- the Service port ----------------------------------------------------------

class DataFrameService:
    """The taxi DataFrame behind the unified Service protocol.

    Serving-shaped analytics: each request is a *windowed* aggregate over
    one column (``mean``/``max``/``min``/``count_over`` of rows
    ``[start, stop)``), the dashboard-query analogue of the batch Figure 8
    mix. Windows page the addressed column stripe in through the MMU and
    charge compute per element, so a request's cost scales with its
    window — and the request key (``column:window``) gives consistent-hash
    balancers real locality to exploit.
    """

    name = "taxi"

    #: Columns a request may address (duration is derived at build time).
    QUERY_COLUMNS = ("trip_distance", "fare", "duration")
    OPS = ("mean", "max", "min", "count_over")

    def __init__(self, df: "DataFrame", window: int = 4096) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.df = df
        self.window = window

    # -- the Service protocol ------------------------------------------------

    def handle(self, request):
        from repro.apps.api import Response

        if request.op not in self.OPS:
            return Response.fail(f"unknown op {request.op!r}; "
                                 f"have {sorted(self.OPS)}")
        column_name = request.key.decode() if request.key else "fare"
        try:
            column = self.df.column(column_name)
        except KeyError as exc:
            return Response.fail(str(exc))
        start, stop = (request.args[0], request.args[1]) if \
            len(request.args) >= 2 else (0, self.df.length)
        start = max(0, min(int(start), self.df.length))
        stop = max(start, min(int(stop), self.df.length))
        if stop == start:
            return Response.fail("empty window")
        total = count = 0.0
        peak = -np.inf
        trough = np.inf
        threshold = float(request.args[2]) if len(request.args) > 2 else 10.0
        for lo in range(start, stop, CHUNK):
            hi = min(lo + CHUNK, stop)
            chunk = column.load(lo, hi)
            self.df.system.cpu_cycles((hi - lo) * OP_CYCLES)
            total += float(chunk.sum())
            peak = max(peak, float(chunk.max()))
            trough = min(trough, float(chunk.min()))
            count += float((chunk > threshold).sum())
        answers = {"mean": total / (stop - start), "max": peak,
                   "min": trough, "count_over": count}
        return Response(value=answers[request.op])

    def sample_request(self, rng):
        """A seeded draw over (op, column, window): uniform ops/columns,
        window starts aligned to the service's window size."""
        from repro.apps.api import Request

        op = self.OPS[rng.randrange(len(self.OPS))]
        column = self.QUERY_COLUMNS[rng.randrange(len(self.QUERY_COLUMNS))]
        windows = max(1, self.df.length // self.window)
        start = rng.randrange(windows) * self.window
        stop = min(start + self.window, self.df.length)
        return Request(op, key=column.encode(), args=(start, stop))


def build_taxi_service(system, rows: int = 1 << 14, window: int = 4096,
                       seed: int = 5) -> DataFrameService:
    """Boot + populate one taxi analytics service on ``system``.

    Generates the synthetic taxi columns in far memory (deterministic in
    ``seed``) and derives the duration column, then serves windowed
    aggregates over them.
    """
    df = generate_taxi(system, rows, seed)
    df.derive("duration", ["dropoff_ts", "pickup_ts"],
              lambda d, p: d - p, dtype=np.int64)
    return DataFrameService(df, window=window)


# Self-register with the global service registry (late import: repro.apps
# .api knows this module by name, so `SERVICES.build("taxi", ...)` works
# without importing repro.apps.dataframe up front).
from repro.apps.api import SERVICES as _SERVICES  # noqa: E402

_SERVICES.register("taxi", build_taxi_service)
