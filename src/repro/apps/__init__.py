"""Workloads (§6): microbenchmarks, simple benchmarks, and real apps.

Every workload here programs against the POSIX-ish :class:`BaseSystem`
facade (loads/stores/malloc) and therefore runs unmodified on DiLOS *and*
Fastswap. The AIFM ports — required because AIFM mandates its own C++-like
API — live alongside the corresponding workloads.
"""
