"""Compressed-sparse-row graphs in far memory.

The GAP Benchmark Suite stores graphs as CSR: an offsets array of n+1
entries and an edge array of m destination ids. Both live in disaggregated
memory here; per-vertex metadata (ranks, depths) is small enough to stay
local, exactly as the 17 GB Twitter working set of §6.2 is dominated by
the edge array.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.views import PagedArray

#: Vertices per offsets chunk when scanning sequentially.
OFFSET_CHUNK = 2048


class CsrGraph:
    """A directed graph in CSR form over far memory."""

    def __init__(self, system: BaseSystem, offsets: np.ndarray,
                 edges: np.ndarray) -> None:
        if offsets.ndim != 1 or edges.ndim != 1:
            raise ValueError("offsets and edges must be 1-D")
        if offsets[0] != 0 or offsets[-1] != len(edges):
            raise ValueError("malformed CSR offsets")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.system = system
        self.n = len(offsets) - 1
        self.m = len(edges)
        self._offsets = PagedArray(system, len(offsets), np.int64,
                                   name="csr-offsets")
        self._edges = PagedArray(system, max(1, len(edges)), np.int64,
                                 name="csr-edges")
        for start, stop in self._offsets.chunks():
            self._offsets.store(start, offsets[start:stop])
        for start, stop in self._edges.chunks():
            self._edges.store(start, edges[start:stop])

    @property
    def footprint_bytes(self) -> int:
        return (self.n + 1 + self.m) * 8

    def degree(self, u: int) -> int:
        off = self._offsets.load(u, u + 2)
        return int(off[1] - off[0])

    def neighbors(self, u: int) -> np.ndarray:
        """Adjacency list of ``u`` — a random access into the edge array."""
        off = self._offsets.load(u, u + 2)
        if off[0] == off[1]:
            return np.empty(0, dtype=np.int64)
        return self._edges.load(int(off[0]), int(off[1]))

    def scan_vertices(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(u, neighbors)`` for all vertices, streaming the edge
        array sequentially (the PageRank access pattern)."""
        for chunk_start in range(0, self.n, OFFSET_CHUNK):
            chunk_stop = min(chunk_start + OFFSET_CHUNK, self.n)
            offs = self._offsets.load(chunk_start, chunk_stop + 1)
            lo, hi = int(offs[0]), int(offs[-1])
            edge_block = (self._edges.load(lo, hi) if hi > lo
                          else np.empty(0, dtype=np.int64))
            for i in range(chunk_stop - chunk_start):
                a, b = int(offs[i]) - lo, int(offs[i + 1]) - lo
                yield chunk_start + i, edge_block[a:b]
