"""Betweenness centrality (Brandes) over far-memory CSR (Figure 9(b)).

BC's data access is "more random than PageRank, as it traverses one more
indirection through tables" (§6.2): each BFS step reads the adjacency
slice of whichever vertex the frontier surfaced — random accesses into the
edge array that defeat sequential prefetchers and stress the fault path.
Per-vertex auxiliaries (sigma, depth, delta) are O(V) and stay local, as
the far-memory working set is dominated by the O(E) edge array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.gapbs.graph import CsrGraph

#: Charged compute per edge relaxed (depth check, sigma update).
EDGE_CYCLES = 4.0
THREADS = 4
#: Frontier vertices per synchronization (atomic frontier appends).
SYNC_BATCH = 16


@dataclass
class BetweennessResult:
    n: int
    m: int
    sources: int
    elapsed_us: float
    top_vertex: int
    metrics: Dict[str, Any]


class BetweennessWorkload:
    """Brandes' algorithm from a sample of source vertices."""

    def __init__(self, n_sources: int = 2, seed: int = 17) -> None:
        if n_sources < 1:
            raise ValueError("need at least one source")
        self.n_sources = n_sources
        self.seed = seed

    def pick_sources(self, graph: CsrGraph) -> List[int]:
        rng = np.random.default_rng(self.seed)
        return [int(v) for v in rng.choice(graph.n, size=self.n_sources,
                                           replace=False)]

    def run(self, system: BaseSystem, graph: CsrGraph,
            sources: Optional[Sequence[int]] = None,
            guide=None) -> BetweennessResult:
        """Run BC; an optional :class:`~repro.apps.gapbs.guide.
        BcFrontierGuide` is informed of each new frontier (the loader-hook
        model: the algorithm itself has no guide knowledge beyond the
        hook call sites the loader injects)."""
        n = graph.n
        centrality = np.zeros(n)
        sync_charge = system.sync_overhead_us * THREADS
        if sources is None:
            sources = self.pick_sources(graph)
        begin = system.clock.now
        for source in sources:
            sigma = np.zeros(n)
            depth = np.full(n, -1, dtype=np.int64)
            sigma[source] = 1.0
            depth[source] = 0
            order: List[int] = []
            preds: List[List[int]] = [[] for _ in range(n)]
            frontier = [source]
            if guide is not None:
                guide.on_frontier(frontier)
            processed = 0
            while frontier:
                next_frontier: List[int] = []
                for u in frontier:
                    order.append(u)
                    neighbors = graph.neighbors(u)  # random edge access
                    system.cpu_cycles(len(neighbors) * EDGE_CYCLES)
                    for v in neighbors.tolist():
                        if depth[v] < 0:
                            depth[v] = depth[u] + 1
                            next_frontier.append(v)
                        if depth[v] == depth[u] + 1:
                            sigma[v] += sigma[u]
                            preds[v].append(u)
                    processed += 1
                    if processed % SYNC_BATCH == 0:
                        system.cpu(sync_charge)
                frontier = next_frontier
                if guide is not None and frontier:
                    guide.on_frontier(frontier)
            # Dependency accumulation, deepest first.
            delta = np.zeros(n)
            for u in reversed(order):
                for p in preds[u]:
                    delta[p] += sigma[p] / sigma[u] * (1.0 + delta[u])
                system.cpu_cycles(len(preds[u]) * EDGE_CYCLES)
                if u != source:
                    centrality[u] += delta[u]
        elapsed = system.clock.now - begin
        return BetweennessResult(n=n, m=graph.m, sources=len(sources),
                                 elapsed_us=elapsed,
                                 top_vertex=int(centrality.argmax()),
                                 metrics=system.metrics())
