"""PageRank over a far-memory CSR graph (Figure 9(a)).

Push-style PageRank streams the offsets and edge arrays sequentially —
the prefetch-friendly end of graph processing. The 4-thread execution of
§6.2 is modeled by charging per-batch synchronization at the kernel's
primitive cost: OSv's synchronization is dearer than Linux's, which is
exactly why Fastswap edges out DiLOS here when memory is plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.gapbs.graph import CsrGraph

#: Charged compute per edge (load target, add contribution).
EDGE_CYCLES = 3.0
#: Vertices per synchronization batch (lock striping across 4 threads).
SYNC_BATCH = 32
THREADS = 4


@dataclass
class PageRankResult:
    n: int
    m: int
    iterations: int
    elapsed_us: float
    top_vertex: int
    metrics: Dict[str, Any]


class PageRankWorkload:
    """Iterative PageRank with damping 0.85."""

    def __init__(self, iterations: int = 5, damping: float = 0.85) -> None:
        self.iterations = iterations
        self.damping = damping

    def run(self, system: BaseSystem, graph: CsrGraph) -> PageRankResult:
        n = graph.n
        ranks = np.full(n, 1.0 / n)
        begin = system.clock.now
        sync_charge = system.sync_overhead_us * THREADS
        for _iteration in range(self.iterations):
            next_ranks = np.full(n, (1.0 - self.damping) / n)
            batch_edges = 0
            for u, neighbors in graph.scan_vertices():
                if len(neighbors):
                    share = self.damping * ranks[u] / len(neighbors)
                    np.add.at(next_ranks, neighbors, share)
                    batch_edges += len(neighbors)
                if u % SYNC_BATCH == SYNC_BATCH - 1:
                    system.cpu_cycles(batch_edges * EDGE_CYCLES)
                    system.cpu(sync_charge)
                    batch_edges = 0
            system.cpu_cycles(batch_edges * EDGE_CYCLES)
            ranks = next_ranks
        elapsed = system.clock.now - begin
        return PageRankResult(n=n, m=graph.m, iterations=self.iterations,
                              elapsed_us=elapsed,
                              top_vertex=int(ranks.argmax()),
                              metrics=system.metrics())
