"""GAPBS-style graph processing (Figure 9): CSR graphs, PageRank, BC."""

from repro.apps.gapbs.graph import CsrGraph
from repro.apps.gapbs.generator import generate_power_law_graph
from repro.apps.gapbs.pagerank import PageRankWorkload
from repro.apps.gapbs.bc import BetweennessWorkload
from repro.apps.gapbs.guide import BcFrontierGuide
from repro.apps.gapbs.bfs import BfsWorkload
from repro.apps.gapbs.cc import ConnectedComponentsWorkload

__all__ = [
    "BcFrontierGuide",
    "BetweennessWorkload",
    "BfsWorkload",
    "ConnectedComponentsWorkload",
    "CsrGraph",
    "PageRankWorkload",
    "generate_power_law_graph",
]
