"""An app-aware guide for graph traversal (guide-API generality demo).

§4.3's guides are not Redis-specific: any application that knows its next
accesses can convey them. Betweenness centrality is the perfect customer —
its BFS produces, at every level, the exact list of vertices whose
adjacency slices it will read next, yet a page-granular prefetcher sees
only randomness.

:class:`BcFrontierGuide` hooks the workload's frontier formation (the §5
loader-hooking interface): for each upcoming vertex it subpage-fetches the
two CSR offsets (16 bytes, arriving well before any full page) and then
prefetches the pages holding that vertex's slice of the edge array.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.units import PAGE_SIZE
from repro.core.guides import GuideContext, PrefetchGuide
from repro.apps.gapbs.graph import CsrGraph


class BcFrontierGuide(PrefetchGuide):
    """Prefetches adjacency lists for the vertices a BFS is about to visit."""

    #: Vertices chased per frontier hook. The lead must stay small: a
    #: page prefetched hundreds of vertices early is evicted again before
    #: the BFS reaches it (the cache holds only a sliver of the edge
    #: array), so the guide keeps a just-in-time pipeline instead.
    RUNAHEAD = 6
    #: Vertices chased per fault (the app advances one vertex per fault,
    #: so 2 keeps the pipeline a few vertices ahead, no more).
    FAULT_RUNAHEAD = 2

    def __init__(self, graph: CsrGraph) -> None:
        # Layout knowledge — the application semantics a guide carries.
        self._offsets_base = graph._offsets.base
        self._edges_base = graph._edges.base
        self._itemsize = 8
        self._ctx: GuideContext = None  # type: ignore[assignment]
        self._pending: List[int] = []
        self.vertices_chased = 0
        self.edge_pages_prefetched = 0

    def bind(self, system) -> None:
        """Attach to a booted DiLOS system (register + build a context)."""
        self._ctx = GuideContext(system.kernel)
        system.kernel.register_prefetch_guide(self)

    # -- loader hook: the workload formed a new frontier -------------------

    def on_frontier(self, vertices: Iterable[int]) -> None:
        if self._ctx is None:
            raise RuntimeError("guide not bound to a system")
        self._pending = list(vertices)
        self._drain(self.RUNAHEAD)

    def _drain(self, budget: int) -> None:
        while budget > 0 and self._pending:
            vertex = self._pending.pop(0)
            self._chase_vertex(vertex)
            budget -= 1

    def _chase_vertex(self, vertex: int) -> None:
        self.vertices_chased += 1
        offsets_va = self._offsets_base + vertex * self._itemsize

        def on_offsets(raw: bytes) -> None:
            begin = int.from_bytes(raw[0:8], "little")
            end = int.from_bytes(raw[8:16], "little")
            if end <= begin:
                return
            first = self._edges_base + begin * self._itemsize
            last = self._edges_base + end * self._itemsize - 1
            page = first - (first % PAGE_SIZE)
            while page <= last:
                if self._ctx.prefetch_page(page):
                    self.edge_pages_prefetched += 1
                page += PAGE_SIZE

        self._ctx.fetch_subpage(offsets_va, 16, on_offsets)

    # -- fault-time refill: keep running ahead while the app waits ----------

    def on_fault(self, ctx: GuideContext, va: int) -> bool:
        self._drain(self.FAULT_RUNAHEAD)
        # Claim the fault: random adjacency access has nothing for the
        # general-purpose prefetchers anyway.
        return True
