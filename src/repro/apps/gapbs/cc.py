"""Connected components via label propagation (a GAPBS kernel).

Treats the directed CSR as undirected by propagating labels along out
edges until fixpoint (Shiloach-Vishkin-flavoured pointer jumping on the
label array). Access pattern: repeated full sequential sweeps of the edge
array — the prefetch-friendly opposite of BC, useful as a second
sequential graph workload beside PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.gapbs.graph import CsrGraph

EDGE_CYCLES = 2.5
THREADS = 4
SYNC_BATCH = 64


@dataclass
class ComponentsResult:
    n: int
    m: int
    components: int
    iterations: int
    elapsed_us: float
    metrics: Dict[str, Any]


class ConnectedComponentsWorkload:
    """Label propagation to fixpoint, with pointer-jumping compression."""

    def __init__(self, max_iterations: int = 64) -> None:
        self.max_iterations = max_iterations

    def run(self, system: BaseSystem, graph: CsrGraph) -> ComponentsResult:
        n = graph.n
        labels = np.arange(n, dtype=np.int64)
        sync_charge = system.sync_overhead_us * THREADS
        begin = system.clock.now
        iterations = 0
        changed = True
        while changed and iterations < self.max_iterations:
            iterations += 1
            changed = False
            for u, neighbors in graph.scan_vertices():
                if not len(neighbors):
                    continue
                system.cpu_cycles(len(neighbors) * EDGE_CYCLES)
                best = min(int(labels[neighbors].min()), int(labels[u]))
                if best < labels[u]:
                    labels[u] = best
                    changed = True
                updates = labels[neighbors] > best
                if updates.any():
                    labels[neighbors[updates]] = best
                    changed = True
                if u % SYNC_BATCH == SYNC_BATCH - 1:
                    system.cpu(sync_charge)
            # Pointer jumping: compress label chains (local arrays).
            labels = labels[labels]
        elapsed = system.clock.now - begin
        return ComponentsResult(n=n, m=graph.m,
                                components=len(np.unique(labels)),
                                iterations=iterations, elapsed_us=elapsed,
                                metrics=system.metrics())
