"""Synthetic Twitter-shaped graphs.

The paper's GAPBS runs use the Twitter follower graph [37] — a heavy-tailed
power-law degree distribution. We generate the same shape: out-degrees
drawn from a Zipf tail (capped), destinations drawn preferentially so that
in-degrees are heavy-tailed too.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def generate_power_law_graph(n: int, target_m: int, seed: int = 3,
                             skew: float = 1.3) -> Tuple[np.ndarray, np.ndarray]:
    """Return CSR ``(offsets, edges)`` with ~``target_m`` edges over ``n``
    vertices and power-law in/out degrees."""
    if n < 2 or target_m < n:
        raise ValueError("need n >= 2 and target_m >= n")
    rng = np.random.default_rng(seed)
    # Out-degrees: Zipf-tailed, scaled to hit target_m, capped at n-1.
    raw = rng.zipf(skew, size=n).astype(np.float64)
    raw = np.minimum(raw, n - 1)
    degrees = np.maximum(1, (raw * (target_m / raw.sum())).astype(np.int64))
    degrees = np.minimum(degrees, n - 1)
    m = int(degrees.sum())
    # Destinations: preferential attachment — sample proportional to a
    # Zipf popularity over vertex ids (hubs attract followers).
    popularity = 1.0 / np.arange(1, n + 1) ** skew
    popularity /= popularity.sum()
    destinations = rng.choice(n, size=m, p=popularity)
    # Avoid trivial self-loops by nudging them to a neighbour id.
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
    self_loops = destinations == sources
    destinations[self_loops] = (destinations[self_loops] + 1) % n
    return offsets, destinations.astype(np.int64)
