"""Breadth-first search over far-memory CSR (a GAPBS kernel).

The GAP Benchmark Suite's BFS is the canonical frontier traversal; the
paper evaluates PR and BC, but BFS is the primitive underneath BC and a
workload class of its own (top-down here; GAPBS's direction-switching
bottom-up phase needs in-edges, which our synthetic CSR does not store).
Access pattern: frontier-ordered random reads of adjacency slices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from repro.core.api import BaseSystem
from repro.apps.gapbs.graph import CsrGraph

EDGE_CYCLES = 2.0
THREADS = 4
SYNC_BATCH = 16


@dataclass
class BfsResult:
    n: int
    m: int
    source: int
    reached: int
    max_depth: int
    elapsed_us: float
    metrics: Dict[str, Any]


class BfsWorkload:
    """Top-down BFS from one source."""

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def run(self, system: BaseSystem, graph: CsrGraph,
            guide=None) -> BfsResult:
        n = graph.n
        depth = np.full(n, -1, dtype=np.int64)
        depth[self.source] = 0
        frontier: List[int] = [self.source]
        if guide is not None:
            guide.on_frontier(frontier)
        sync_charge = system.sync_overhead_us * THREADS
        begin = system.clock.now
        level = 0
        reached = 1
        while frontier:
            level += 1
            next_frontier: List[int] = []
            for index, u in enumerate(frontier):
                neighbors = graph.neighbors(u)
                system.cpu_cycles(len(neighbors) * EDGE_CYCLES)
                for v in neighbors.tolist():
                    if depth[v] < 0:
                        depth[v] = level
                        next_frontier.append(v)
                        reached += 1
                if index % SYNC_BATCH == SYNC_BATCH - 1:
                    system.cpu(sync_charge)
            frontier = next_frontier
            if guide is not None and frontier:
                guide.on_frontier(frontier)
        elapsed = system.clock.now - begin
        return BfsResult(n=n, m=graph.m, source=self.source, reached=reached,
                         max_depth=int(depth.max()), elapsed_us=elapsed,
                         metrics=system.metrics())
