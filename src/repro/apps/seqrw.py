"""Sequential read/write microbenchmark (§6.1).

"The workload first allocates and populates [a region] of memory and then
reads or writes the region with 4 KB strides." Used for Table 1 (fault
split), Table 2 (throughput), Table 3 (fault counts) and Figure 6 (latency
breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.common.units import MIB, PAGE_SIZE
from repro.core.api import BaseSystem
from repro.mem import batch


@dataclass
class SeqResult:
    """Outcome of one sequential pass."""

    mode: str
    bytes_moved: int
    elapsed_us: float
    metrics: Dict[str, Any]

    @property
    def gb_per_s(self) -> float:
        # 1 byte/us == 1 MB/s; GB/s == bytes/us / 1000.
        return self.bytes_moved / self.elapsed_us / 1000.0


class SequentialWorkload:
    """Populate a region, then stride through it at page granularity."""

    def __init__(self, working_set_bytes: int = 16 * MIB) -> None:
        if working_set_bytes % PAGE_SIZE:
            raise ValueError("working set must be page-aligned")
        self.working_set_bytes = working_set_bytes

    @property
    def footprint_bytes(self) -> int:
        return self.working_set_bytes

    @staticmethod
    def _pattern(i: int) -> bytes:
        return bytes(((i * 29 + j) % 256) for j in range(32))

    def populate(self, system: BaseSystem):
        region = system.mmap(self.working_set_bytes, name="seqrw")
        pages = self.working_set_bytes // PAGE_SIZE
        if batch.ENABLED:
            system.memory.write_batch(
                [region.base + i * PAGE_SIZE for i in range(pages)],
                [self._pattern(i) for i in range(pages)])
            return region
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, self._pattern(i))
        return region

    def run(self, system: BaseSystem, mode: str = "read",
            verify: bool = False) -> SeqResult:
        """One full pass; ``mode`` is ``read`` or ``write``.

        The pass is emitted as one access trace through the batch engine
        (per-page elements, so clock charges and timer firings match the
        scalar loop exactly); ``REPRO_BATCH=0`` restores the scalar loop.
        """
        if mode not in ("read", "write"):
            raise ValueError(f"unknown mode {mode!r}")
        region = self.populate(system)
        pages = self.working_set_bytes // PAGE_SIZE
        start = system.clock.now
        if batch.ENABLED:
            if mode == "read":
                ops = [("r", region.base + i * PAGE_SIZE, PAGE_SIZE)
                       for i in range(pages)]
                results = system.memory.apply_trace(ops)
                if verify:
                    for i, data in enumerate(results):
                        if data[:32] != self._pattern(i):
                            raise AssertionError(f"page {i} corrupted")
            else:
                fill = b"\xC5" * PAGE_SIZE
                system.memory.apply_trace(
                    [("w", region.base + i * PAGE_SIZE, fill)
                     for i in range(pages)])
        else:
            for i in range(pages):
                va = region.base + i * PAGE_SIZE
                if mode == "read":
                    data = system.memory.read(va, PAGE_SIZE)
                    if verify and data[:32] != self._pattern(i):
                        raise AssertionError(f"page {i} corrupted")
                else:
                    system.memory.write(va, b"\xC5" * PAGE_SIZE)
        elapsed = system.clock.now - start
        return SeqResult(mode=mode, bytes_moved=pages * PAGE_SIZE,
                         elapsed_us=elapsed, metrics=system.metrics())
