"""Typed array views over disaggregated memory.

Applications do their arithmetic in numpy but *all data lives in simulated
far memory*: every load/store moves real bytes through the MMU, faulting
and paging as it goes. Chunked access mirrors how a compiled program's
locality looks to the paging subsystem — memory disaggregation operates at
page granularity, so per-page traffic (not per-element Python overhead) is
the fidelity that matters.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.common.units import PAGE_SIZE
from repro.core.api import BaseSystem
from repro.mem import batch
from repro.mem.addrspace import Region


class PagedArray:
    """A fixed-length 1-D numpy-dtype array in far memory."""

    def __init__(self, system: BaseSystem, count: int, dtype=np.int64,
                 name: str = "array", region: Region = None, base: int = 0) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.system = system
        self.count = count
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize
        self.nbytes = count * self.itemsize
        if region is None:
            self.region = system.mmap(self.nbytes, ddc=True, name=name)
            self.base = self.region.base
        else:
            self.region = region
            self.base = base
            if base + self.nbytes > region.end:
                raise ValueError("array does not fit in region")

    # -- bulk access ---------------------------------------------------------

    def load(self, start: int, stop: int) -> np.ndarray:
        """Read elements ``[start, stop)`` through the paging path.

        With the batch engine on, TLB-hit spans arrive as single
        fancy-index gathers straight into the result array; accounting is
        identical to the scalar ``memory.read`` path below.
        """
        self._check(start, stop)
        va = self.base + start * self.itemsize
        nbytes = (stop - start) * self.itemsize
        if batch.ENABLED and nbytes > batch.SPAN_THRESHOLD:
            out = np.empty(stop - start, dtype=self.dtype)
            self.system.memory.read_into(va, out.view(np.uint8))
            return out
        raw = self.system.memory.read(va, nbytes)
        return np.frombuffer(raw, dtype=self.dtype).copy()

    def store(self, start: int, values: np.ndarray) -> None:
        """Write ``values`` at ``start`` through the paging path."""
        values = np.ascontiguousarray(values, dtype=self.dtype)
        self._check(start, start + len(values))
        va = self.base + start * self.itemsize
        if batch.ENABLED and values.nbytes > batch.SPAN_THRESHOLD:
            self.system.memory.write_from(va, values.view(np.uint8))
            return
        self.system.memory.write(va, values.tobytes())

    # -- element access --------------------------------------------------------

    def get(self, index: int):
        return self.load(index, index + 1)[0]

    def set(self, index: int, value) -> None:
        self.store(index, np.array([value], dtype=self.dtype))

    # -- iteration ----------------------------------------------------------------

    def chunks(self, chunk_elems: int = PAGE_SIZE // 8
               ) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, stop)`` windows covering the array in order."""
        if chunk_elems <= 0:
            raise ValueError("chunk size must be positive")
        for start in range(0, self.count, chunk_elems):
            yield start, min(start + chunk_elems, self.count)

    def _check(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self.count:
            raise IndexError(
                f"range [{start}, {stop}) outside array of {self.count}")

    def free(self) -> None:
        """Unmap the backing region (only for self-owned regions)."""
        self.system.munmap(self.region)


class PagedBytes:
    """A raw byte buffer in far memory with chunked IO."""

    def __init__(self, system: BaseSystem, nbytes: int,
                 name: str = "bytes") -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.system = system
        self.nbytes = nbytes
        self.region = system.mmap(nbytes, ddc=True, name=name)
        self.base = self.region.base

    def read(self, offset: int, size: int) -> bytes:
        if not 0 <= offset <= offset + size <= self.nbytes:
            raise IndexError("read outside buffer")
        if batch.ENABLED and size:
            return self.system.memory.read_batch(
                [self.base + offset], [size])[0]
        return self.system.memory.read(self.base + offset, size)

    def write(self, offset: int, data: bytes) -> None:
        if not 0 <= offset <= offset + len(data) <= self.nbytes:
            raise IndexError("write outside buffer")
        self.system.memory.write(self.base + offset, data)

    def chunks(self, chunk_bytes: int = 16 * PAGE_SIZE
               ) -> Iterator[Tuple[int, int]]:
        for start in range(0, self.nbytes, chunk_bytes):
            yield start, min(start + chunk_bytes, self.nbytes)
