"""The fault-tolerant replicated KV service (Aceso-style, ROADMAP item 4).

:class:`KvStoreService` is the paper-grade consumer of the redundancy
stack: a key-value front door whose *only* storage is a redundant
cluster backend (:class:`~repro.mem.cluster.ReplicatedMemory` or
:class:`~repro.mem.cluster.ParityStripedMemory`), reached through the
reliable transport so ``net_faults`` chaos genuinely hits the
replication wire. Three properties make it crash-consistent:

* **Quorum-acknowledged writes.** A SET/DEL is admitted only while
  enough members are up that the backend can either write-through or
  journal the miss (majority of replicas; ``k`` of ``k+1`` for parity).
  The quorum check runs *before* any store mutation and the
  :class:`~repro.net.reliable.ReliableQP` only touches the store on the
  attempt the fault plan lets through, so a rejected or given-up write
  leaves no partial state — an unacknowledged update can never surface.
* **Versioned, checksummed records.** Every record carries a 12-byte
  header (version, length, CRC-32). GETs and the :meth:`verify` audit
  compare what the backend returns against the acknowledged
  (version, crc); any regression increments ``kv.lost_updates`` — the
  counter the chaos suite requires to read 0.
* **Lease-based primary election.** One member holds a time-bounded
  lease on the simulated clock and fronts all requests. When it dies,
  requests are rejected (``kv.unavail_rejects``) until the lease
  provably lapsed — the split-brain guard — then the lowest-index live
  member whose journal is clean is elected (members still resilvering
  are skipped: ``kv.stale_candidates_skipped``). Failover latency and
  the unavailability window land in ``kv.failover_us``/``kv.unavail_us``.

All ``kv.*`` instruments live on the *backend's* registry, so
``cluster.metrics()`` (and the golden/perf digests of scenarios that
build a KV service) carry availability accounting next to the
``cluster.*``/``repair.*`` state it depends on. Nothing is registered
until a KV service is built, so pre-existing digests are untouched.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple
from zlib import crc32

from repro.apps.api import Request, Response, SERVICES
from repro.common.rng import zipf_weights
from repro.common.units import PAGE_SIZE
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory
from repro.mem.remote import NodeFailedError
from repro.net.faults import RetryPolicy, coerce_fault_plan
from repro.net.qp import NetStats, QueuePair
from repro.net.reliable import ReliableQP
from repro.obs.tracer import NULL_TRACER

#: CPU cycles charged per KV command (dispatch + hash + header codec);
#: a shade above redis' COMMAND_CYCLES for the version/CRC bookkeeping.
KV_OP_CYCLES = 700

#: Record header: version (4 B LE) | value length (4 B LE) | CRC-32 (4 B LE).
_HEADER_BYTES = 12

#: Default lease duration in simulated µs.
DEFAULT_LEASE_US = 400.0

#: Counters pre-registered when the service attaches, so snapshots taken
#: before the first request carry the full (zeroed) key set.
_KV_COUNTERS = (
    "kv.gets",
    "kv.sets",
    "kv.deletes",
    "kv.misses",
    "kv.rejected_writes",
    "kv.unavail_rejects",
    "kv.failovers",
    "kv.handoffs",
    "kv.lease_renewals",
    "kv.lost_updates",
    "kv.stale_candidates_skipped",
    "kv.failover_us",
    "kv.unavail_us",
)


def _pack_header(version: int, length: int, crc: int) -> bytes:
    return (version.to_bytes(4, "little") + length.to_bytes(4, "little")
            + crc.to_bytes(4, "little"))


def _unpack_header(data: bytes) -> Tuple[int, int, int]:
    return (int.from_bytes(data[0:4], "little"),
            int.from_bytes(data[4:8], "little"),
            int.from_bytes(data[8:12], "little"))


def _value(rng: random.Random, size: int) -> bytes:
    """A seeded value with a recognizable prefix (the redis recipe, so
    cross-service tooling can eyeball either keyspace)."""
    seed = rng.randrange(1 << 30)
    prefix = seed.to_bytes(4, "little")
    body = bytes(((seed >> (8 * (j % 4))) + j * 131) % 256
                 for j in range(min(size - 4, 60)))
    return (prefix + body).ljust(size, b"\xA5")[:size]


class KvStoreService:
    """A replicated KV store with lease-based failover as a Service."""

    name = "kv"

    def __init__(self, system, n_keys: int = 0, value_bytes: int = 192,
                 skew: float = 0.0, write_fraction: float = 0.25,
                 seed: int = 29, lease_us: float = DEFAULT_LEASE_US,
                 net_faults=None, net_retry=None) -> None:
        backend = getattr(system, "node", None)
        if not isinstance(backend, (ReplicatedMemory, ParityStripedMemory)):
            raise ValueError(
                "the kv service needs a redundant cluster backend "
                "(replicated:N or parity:K+1), not "
                f"{type(backend).__name__}")
        if lease_us <= 0:
            raise ValueError("lease_us must be positive")
        self.system = system
        self.backend = backend
        self.clock = system.clock
        self.registry = backend.registry
        self.lease_us = float(lease_us)
        self.n_keys = n_keys
        self.value_bytes = value_bytes
        self.skew = skew
        self.write_fraction = write_fraction
        self.seed = seed
        self.max_value_bytes = PAGE_SIZE - _HEADER_BYTES
        self._weights = (zipf_weights(n_keys, skew)
                         if n_keys and skew > 0.0 else None)
        # One backend slot per key; the acknowledged (version, crc) and
        # length of every live key — the ground truth GET/verify audit
        # against. A deleted key keeps its slot (tombstoned) and its
        # version chain, so a re-set can never regress the version.
        self._slots: Dict[bytes, int] = {}
        self._versions: Dict[bytes, int] = {}
        self._expected: Dict[bytes, Tuple[int, int]] = {}
        self._lengths: Dict[bytes, int] = {}
        # Lease state: the member fronting requests, until when, and —
        # when it died — since when the service has been dark.
        members = backend.member_nodes()
        if isinstance(backend, ParityStripedMemory):
            self._candidates: List[int] = list(range(backend.k))
            self.write_quorum = backend.k
        else:
            self._candidates = list(range(len(members)))
            self.write_quorum = len(members) // 2 + 1
        self._member_nodes = members
        self._primary: Optional[int] = None
        self._lease_expires = 0.0
        self._died_at: Optional[float] = None
        for member, node in enumerate(members):
            node.add_failure_listener(
                lambda m=member: self._on_member_failed(m))
        # The replication wire: reliable verbs over sibling QPs so drops,
        # corruption, stalls, and flaps hit real KV traffic — and a
        # dropped WRITE provably leaves the store untouched.
        tracer = getattr(getattr(system, "obs", None), "tracer", NULL_TRACER)
        self.net = NetStats()
        qps = [QueuePair(f"kv.qp{i}", system.clock, system.model, backend,
                         self.net, tracer=tracer) for i in range(2)]
        self.qp = ReliableQP("kv", system.clock, system.model, backend, qps,
                             plan=coerce_fault_plan(net_faults),
                             policy=RetryPolicy.coerce(net_retry),
                             registry=self.registry, tracer=tracer)
        for name in _KV_COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("kv.primary",
                            lambda: float(-1 if self._primary is None
                                          else self._primary))
        self.registry.gauge("kv.keys", lambda: float(len(self._expected)))
        self._handlers = {
            "get": self._get,
            "set": self._set,
            "del": self._delete,
        }

    # -- lease-based primary election ----------------------------------------

    def _on_member_failed(self, member: int) -> None:
        if member == self._primary:
            self._died_at = self.clock.now

    def _ensure_primary(self) -> Optional[int]:
        """The member currently holding the lease, electing/renewing as
        needed; ``None`` while the service is (correctly) unavailable."""
        now = self.clock.now
        primary = self._primary
        if primary is not None and not self._member_nodes[primary].failed:
            if primary in self.backend.syncing_members():
                # The holder is back up but still resilvering: hand the
                # lease to a clean member rather than serve stale state.
                return self._elect(now, handoff=True)
            if now + self.lease_us / 2.0 >= self._lease_expires:
                self._lease_expires = now + self.lease_us
                self.registry.add("kv.lease_renewals")
            self._died_at = None
            return primary
        if primary is not None and now < self._lease_expires:
            # Split-brain guard: the holder is dead but its lease has not
            # provably lapsed — nobody else may serve yet.
            return None
        return self._elect(now, handoff=False)

    def _elect(self, now: float, handoff: bool) -> Optional[int]:
        syncing = set(self.backend.syncing_members())
        journal = self.backend.journal
        chosen: Optional[int] = None
        for member in self._candidates:
            if self._member_nodes[member].failed:
                continue
            if member in syncing or journal.dirty_count(member) > 0:
                self.registry.add("kv.stale_candidates_skipped")
                continue
            chosen = member
            break
        previous = self._primary
        self._primary = chosen
        if chosen is None:
            return None
        self._lease_expires = now + self.lease_us
        if handoff:
            self.registry.add("kv.handoffs")
        elif previous is not None:
            self.registry.add("kv.failovers")
            if self._died_at is not None:
                self.registry.add("kv.failover_us",
                                  int(now - self._died_at))
        if self._died_at is not None:
            self.registry.add("kv.unavail_us", int(now - self._died_at))
        self._died_at = None
        return chosen

    # -- quorum ---------------------------------------------------------------

    def _have_quorum(self) -> bool:
        """Can the backend journal this write on enough members that it
        survives the next single failure? Checked before any mutation —
        no simulated time passes between the check and the fan-out, so
        membership cannot change in between."""
        return len(self.backend.live_members()) >= self.write_quorum

    # -- the Service protocol --------------------------------------------------

    def handle(self, request: Request) -> Response:
        handler = self._handlers.get(request.op)
        if handler is None:
            return Response.fail(f"unknown op {request.op!r}; "
                                 f"have {sorted(self._handlers)}")
        self.system.cpu_cycles(KV_OP_CYCLES)
        if self._ensure_primary() is None:
            self.registry.add("kv.unavail_rejects")
            if request.op != "get":
                self.registry.add("kv.rejected_writes")
            return Response.fail("kv unavailable: no primary lease")
        try:
            return handler(request)
        except NodeFailedError as exc:
            # Transport gave up or the backend lost its last clean copy
            # mid-verb. The reliable transport only mutates the store on
            # the attempt that lands, so nothing partial was acknowledged.
            if request.op != "get":
                self.registry.add("kv.rejected_writes")
            return Response.fail(f"kv {request.op} failed: {exc}")

    def sample_request(self, rng: random.Random) -> Request:
        """A seeded draw from the keyspace popularity model:
        GET-dominated with ``write_fraction`` SETs, Zipf-skewed keys
        when built with ``skew > 0`` (the redis sampler's shape)."""
        if not self.n_keys:
            raise ValueError("sample_request needs a populated keyspace "
                             "(build the service with n_keys > 0)")
        if self._weights is not None:
            index = rng.choices(range(self.n_keys),
                                weights=self._weights, k=1)[0]
        else:
            index = rng.randrange(self.n_keys)
        key = b"kv:%d" % index
        if self.write_fraction > 0.0 and rng.random() < self.write_fraction:
            return Request("set", key=key,
                           value=_value(rng, self.value_bytes))
        return Request("get", key=key)

    # -- handlers --------------------------------------------------------------

    def _set(self, request: Request) -> Response:
        value = request.value
        if len(value) > self.max_value_bytes:
            return Response.fail(
                f"value of {len(value)} B exceeds the record limit of "
                f"{self.max_value_bytes} B")
        if not self._have_quorum():
            self.registry.add("kv.rejected_writes")
            return Response.fail("kv set rejected: no write quorum")
        key = request.key
        slot = self._slots.get(key)
        if slot is None:
            slot = self.backend.alloc_slot()
            self._slots[key] = slot
        version = self._versions.get(key, 0) + 1
        crc = crc32(value) & 0xFFFFFFFF
        record = _pack_header(version, len(value), crc) + value
        self.qp.wait(self.qp.post_write(self.backend.slot_offset(slot),
                                        record))
        # Acknowledged: the record is journaled on a quorum (the backend
        # wrote it through to every live member and journaled the rest).
        self._versions[key] = version
        self._expected[key] = (version, crc)
        self._lengths[key] = len(value)
        self.registry.add("kv.sets")
        return Response()

    def _get(self, request: Request) -> Response:
        key = request.key
        expected = self._expected.get(key)
        if expected is None:
            self.registry.add("kv.misses")
            return Response.fail(f"no such key {key!r}")
        length = self._lengths[key]
        offset = self.backend.slot_offset(self._slots[key])
        completion = self.qp.wait(
            self.qp.post_read(offset, _HEADER_BYTES + length))
        data = completion.data
        value = bytes(data[_HEADER_BYTES:])
        mismatch = self._audit(key, data[:_HEADER_BYTES], value)
        if mismatch:
            self.registry.add("kv.lost_updates")
            return Response.fail(f"lost update on {key!r}: {mismatch}")
        self.registry.add("kv.gets")
        return Response(value=value)

    def _delete(self, request: Request) -> Response:
        key = request.key
        if key not in self._expected:
            self.registry.add("kv.misses")
            return Response(value=False)
        if not self._have_quorum():
            self.registry.add("kv.rejected_writes")
            return Response.fail("kv delete rejected: no write quorum")
        version = self._versions[key] + 1
        offset = self.backend.slot_offset(self._slots[key])
        self.qp.wait(self.qp.post_write(offset, _pack_header(version, 0, 0)))
        self._versions[key] = version
        del self._expected[key]
        del self._lengths[key]
        self.registry.add("kv.deletes")
        return Response(value=True)

    # -- audit -----------------------------------------------------------------

    def _audit(self, key: bytes, header: bytes, value: bytes) -> str:
        """Compare a record against its acknowledged state; returns the
        discrepancy (empty string = clean). A *newer* version than
        acknowledged is not a lost update — it would mean an unacked
        write surfaced, which the transport's no-partial-effect rule
        makes impossible — so only regressions count."""
        version, crc = self._expected[key]
        stored_version, stored_length, stored_crc = _unpack_header(header)
        if stored_version < version:
            return (f"version regressed to {stored_version} "
                    f"(acknowledged {version})")
        if stored_version == version:
            if stored_length != len(value) or stored_crc != crc:
                return "header does not match the acknowledged write"
            if crc32(value) & 0xFFFFFFFF != crc:
                return "payload checksum mismatch"
        return ""

    def verify(self) -> int:
        """Audit every acknowledged key straight off the backend (no
        fault plan): the end-of-run lost-update sweep. Returns the number
        of discrepancies found (also added to ``kv.lost_updates``)."""
        mismatches = 0
        for key in sorted(self._expected):
            length = self._lengths[key]
            offset = self.backend.slot_offset(self._slots[key])
            data = self.backend.read_bytes(offset, _HEADER_BYTES + length)
            if self._audit(key, data[:_HEADER_BYTES],
                           bytes(data[_HEADER_BYTES:])):
                mismatches += 1
        if mismatches:
            self.registry.add("kv.lost_updates", mismatches)
        return mismatches


@SERVICES.register("kv")
def build_kv_service(system, n_keys: int = 64, value_bytes: int = 192,
                     skew: float = 0.0, write_fraction: float = 0.25,
                     seed: int = 29, lease_us: float = DEFAULT_LEASE_US,
                     net_faults=None, net_retry=None) -> KvStoreService:
    """Boot + populate one replicated KV service on ``system``.

    ``system`` must be booted on a redundant cluster backend
    (``backend="replicated:N"`` or ``"parity:K+1"``). Population is
    deterministic in ``seed`` and goes through the service's own write
    path (quorum check, reliable transport, version headers), so the
    populated state is exactly what ``n_keys`` acknowledged SETs leave.
    """
    service = KvStoreService(system, n_keys=n_keys, value_bytes=value_bytes,
                             skew=skew, write_fraction=write_fraction,
                             seed=seed, lease_us=lease_us,
                             net_faults=net_faults, net_retry=net_retry)
    rng = random.Random(seed)
    for i in range(n_keys):
        response = service.handle(Request("set", key=b"kv:%d" % i,
                                          value=_value(rng, value_bytes)))
        if not response.ok:
            raise RuntimeError(
                f"kv population failed on key {i}: {response.error}")
    return service


__all__ = [
    "DEFAULT_LEASE_US",
    "KV_OP_CYCLES",
    "KvStoreService",
    "build_kv_service",
]
