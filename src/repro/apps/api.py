"""The unified Workload/Service API every app serves through.

Historically each app exposed its own closed-loop driver (``GetWorkload``
runs its own GET loop, the taxi workload runs its own query batch), so
nothing generic — a load balancer, an admission controller, a latency
recorder — could drive "any app". This module defines the one
request/response surface the serving layer (:mod:`repro.serve`) speaks:

* :class:`Request` / :class:`Response` — typed, frozen request envelopes.
  ``op`` selects the handler (``"get"``, ``"mean_fare"``); ``key`` is
  the routing key consistent-hash balancers use.
* :class:`Service` — the protocol: ``handle(request) -> Response``.
  Services that want to be driven by generic scenario presets also
  provide ``sample_request(rng) -> Request`` — a deterministic draw from
  the app's own key/op popularity distribution.
* :class:`ServiceRegistry` — name -> factory, the same registry shape as
  the kernel/backend registries in :mod:`repro.core.spec`. Factories
  receive the booted system plus keyword parameters and return a ready
  (pre-populated) service. The built-in services self-register when
  their module imports; :data:`SERVICES` lazily imports them by name so
  ``SERVICES.build("redis", system)`` works without side-effect imports.

The old closed-loop entry points (``GetWorkload.run`` and friends) are
kept as thin deprecated aliases over ``Service.handle`` — byte-identical
behavior, plus a :class:`DeprecationWarning` pointing at ``repro.serve``.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

try:  # Protocol is 3.8+; runtime_checkable keeps isinstance() working.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - not reachable on supported pythons
    from typing_extensions import Protocol, runtime_checkable  # type: ignore


@dataclass(frozen=True)
class Request:
    """One request as the serving layer sees it.

    ``op`` names the service operation; ``key`` is the object addressed
    (and the consistent-hash routing key); ``value`` carries write
    payloads; ``args`` carries per-op extras (an LRANGE count, a query
    bound); ``client_id`` identifies the simulated client that issued it.
    """

    op: str
    key: bytes = b""
    value: bytes = b""
    args: Tuple[Any, ...] = ()
    client_id: int = 0

    def routing_key(self) -> bytes:
        """What key-affinity balancers hash: the key, or the op when the
        request addresses no object (analytics queries)."""
        return self.key if self.key else self.op.encode()


@dataclass(frozen=True)
class Response:
    """The service's answer: ``ok`` plus a value or an error string."""

    ok: bool = True
    value: Any = None
    error: str = ""

    @classmethod
    def fail(cls, error: str) -> "Response":
        return cls(ok=False, value=None, error=error)


@runtime_checkable
class Service(Protocol):
    """Anything the load balancer can drive: a named request handler."""

    name: str

    def handle(self, request: Request) -> Response:
        """Serve one request, charging simulated time as it goes."""
        ...  # pragma: no cover - protocol body


#: A service factory: (booted system, **params) -> ready Service.
ServiceFactory = Callable[..., Service]

#: Modules that self-register built-in services on import.
_BUILTIN_MODULES: Dict[str, str] = {
    "kv": "repro.apps.kvstore",
    "llm": "repro.apps.llm",
    "redis": "repro.apps.redis.service",
    "taxi": "repro.apps.dataframe",
}


class ServiceRegistry:
    """name -> :data:`ServiceFactory`, mirroring the kernel registry."""

    def __init__(self) -> None:
        self._factories: Dict[str, ServiceFactory] = {}

    def register(self, name: str,
                 factory: ServiceFactory = None) -> Callable:
        """Register ``factory`` under ``name`` (usable as a decorator)."""
        if factory is None:
            def deco(fn: ServiceFactory) -> ServiceFactory:
                self.register(name, fn)
                return fn
            return deco
        if name in self._factories:
            raise ValueError(f"service kind {name!r} already registered")
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registered service kind (tests/extensions only)."""
        self._factories.pop(name, None)

    def factory(self, name: str) -> ServiceFactory:
        """The factory for ``name``, lazily importing built-in modules."""
        if name not in self._factories and name in _BUILTIN_MODULES:
            __import__(_BUILTIN_MODULES[name])
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                f"unknown service kind {name!r}; pick from "
                f"{sorted(set(self._factories) | set(_BUILTIN_MODULES))}"
            ) from None

    def build(self, name: str, system: Any, **params: Any) -> Service:
        """Build a ready service of kind ``name`` on ``system``."""
        return self.factory(name)(system, **params)

    def kinds(self) -> Tuple[str, ...]:
        """Registered kinds plus the lazily importable built-ins."""
        return tuple(sorted(set(self._factories) | set(_BUILTIN_MODULES)))


#: The process-wide service registry, like ``repro.core.spec``'s kernels.
SERVICES = ServiceRegistry()


def deprecated_entry_point(old: str, new: str) -> None:
    """Emit the standard closed-loop deprecation warning.

    The old drivers keep working (and stay byte-identical — they are thin
    wrappers over ``Service.handle``), but new experiments should go
    through :mod:`repro.serve`, which adds open-loop arrivals, admission
    control, balancing and SLO accounting around the same handlers.
    """
    warnings.warn(
        f"{old} is a deprecated closed-loop entry point; use {new} "
        "(see docs/SERVING.md)", DeprecationWarning, stacklevel=3)


@dataclass
class ClosedLoopStats:
    """Summary of a generic closed-loop run (testing/back-compat aid)."""

    requests: int
    errors: int
    elapsed_us: float
    metrics: Dict[str, Any] = field(default_factory=dict)


def run_closed_loop(service: Service, system: Any, requests: int,
                    seed: int = 17) -> ClosedLoopStats:
    """Drive ``service`` with its own ``sample_request`` stream, serially.

    The minimal bridge from the Service protocol back to the historical
    closed-loop shape: one request at a time, no think time, no queueing.
    Useful for conformance tests; real serving goes through
    :class:`repro.serve.frontend.ServeFrontend`.
    """
    sampler = getattr(service, "sample_request", None)
    if sampler is None:
        raise TypeError(f"service {service.name!r} has no sample_request; "
                        "drive it with explicit Requests instead")
    rng = random.Random(seed)
    # Sample the whole request batch up front: samplers touch only their
    # own rng, so the draw sequence (and thus every request) is identical
    # to sampling inline, and the serve loop below stays branch-free.
    pending = [sampler(rng) for _ in range(requests)]
    errors = 0
    begin = system.clock.now
    for request in pending:
        response = service.handle(request)
        if not response.ok:
            errors += 1
    return ClosedLoopStats(requests=requests, errors=errors,
                           elapsed_us=system.clock.now - begin,
                           metrics=system.metrics())


__all__ = [
    "ClosedLoopStats",
    "Request",
    "Response",
    "SERVICES",
    "Service",
    "ServiceFactory",
    "ServiceRegistry",
    "deprecated_entry_point",
    "run_closed_loop",
]
