"""The one spec-string grammar: ``kind:key=value,key=value``.

Every declarative knob in the repo speaks the same tiny language —
``backend="sharded:4"``, ``serve="poisson:rate=5k,slo=2ms"``,
``repair="resilver_period=200"``, ``--net-faults drop=0.01,seed=7`` and
the rack ``topology="rack:compute=4,mem=4,oversub=4"``. Historically
each of those parsers was hand-rolled (split on ``,``, partition on
``=``, per-key ``if/elif``), so error wording, whitespace handling and
duplicate-key behaviour drifted apart. This module is the shared
grammar; the per-knob modules only declare *casts* (key -> value
parser) and keep their domain validation.

It lives under :mod:`repro.common` because the boot layer
(:mod:`repro.core.spec`) imports the knob modules at top level — the
helper must sit *below* all of them in the import graph. The public
entry point for spec authors is the re-export from
:mod:`repro.core.spec`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

#: A value parser for one spec key. Raise ``ValueError`` on bad text;
#: the grammar wraps it with the key and knob context.
Cast = Callable[[str], Any]


def split_kind(spec: str, default: str = "") -> Tuple[str, str]:
    """Split ``"kind:args"`` into ``(kind, args)``.

    The kind falls back to ``default`` when absent (``":rate=5"`` or
    ``""``); text without a colon is all kind (``"node"`` ->
    ``("node", "")``).
    """
    kind, _, args = spec.partition(":")
    return kind.strip() or default, args.strip()


def parse_kv_spec(args: str, casts: Mapping[str, Cast],
                  what: str = "spec") -> Dict[str, Any]:
    """Parse ``"key=value,key=value"`` through per-key ``casts``.

    Empty items are skipped (trailing commas are fine), duplicate keys
    keep the last value (the historical behaviour of every hand-rolled
    parser this replaces), and all three failure modes carry the knob
    name ``what`` so ``--backend`` errors never read like ``--serve``
    errors:

    * an item without ``=`` (or with an empty side) is malformed,
    * a key absent from ``casts`` is unknown (valid keys are listed),
    * a cast raising ``ValueError`` becomes a bad-value error.
    """
    out: Dict[str, Any] = {}
    for item in filter(None, (part.strip() for part in args.split(","))):
        key, eq, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not eq or not key or not value:
            raise ValueError(
                f"bad {what} item {item!r}: expected key=value")
        cast = casts.get(key)
        if cast is None:
            raise ValueError(f"unknown {what} key {key!r}; "
                             f"pick from {sorted(casts)}")
        try:
            out[key] = cast(value)
        except ValueError as exc:
            raise ValueError(
                f"bad {what} value {value!r} for key {key!r}: {exc}"
            ) from None
    return out


__all__ = ["Cast", "parse_kv_spec", "split_kind"]
