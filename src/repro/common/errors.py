"""Exception hierarchy for the simulated machine."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidAddressError(ReproError):
    """Access to a virtual address outside any mapped region (SIGSEGV)."""


class ProtectionError(ReproError):
    """Write to a read-only mapping, or a malformed PTE transition."""


class OutOfMemoryError(ReproError):
    """Local DRAM or remote memory exhausted beyond what reclaim can fix."""


class FaultError(ReproError):
    """A page fault the kernel could not service."""
