"""Byte-size units and page arithmetic.

The simulated machine uses 4 KiB pages, matching the paper's testbed (the
memory node additionally backs its region with 2 MiB huge pages; that only
affects the remote side's lookup cost, which the latency model folds into the
wire latency).
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


def align_down(value: int, alignment: int = PAGE_SIZE) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def align_up(value: int, alignment: int = PAGE_SIZE) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    return align_down(value + alignment - 1, alignment)


def pages_spanned(addr: int, size: int) -> int:
    """Number of pages touched by ``size`` bytes starting at ``addr``."""
    if size <= 0:
        return 0
    first = addr >> PAGE_SHIFT
    last = (addr + size - 1) >> PAGE_SHIFT
    return last - first + 1


def format_bytes(n: int) -> str:
    """Human-readable byte count (``format_bytes(2.5 * GIB) == '2.5GiB'``)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            if n == int(n):
                return f"{int(n)}{unit}"
            return f"{n:.1f}{unit}"
        n /= 1024
    raise AssertionError("unreachable")
