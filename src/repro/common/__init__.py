"""Shared substrate: units, simulated time, RNG, statistics, and errors."""

from repro.common.clock import Clock
from repro.common.errors import (
    ReproError,
    FaultError,
    InvalidAddressError,
    OutOfMemoryError,
    ProtectionError,
)
from repro.common.stats import Counter, Histogram, LatencyBreakdown, percentile
from repro.common.units import (
    KIB,
    MIB,
    GIB,
    PAGE_SHIFT,
    PAGE_SIZE,
    align_down,
    align_up,
    format_bytes,
    pages_spanned,
)

__all__ = [
    "Clock",
    "Counter",
    "FaultError",
    "GIB",
    "Histogram",
    "InvalidAddressError",
    "KIB",
    "LatencyBreakdown",
    "MIB",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "ProtectionError",
    "ReproError",
    "align_down",
    "align_up",
    "format_bytes",
    "pages_spanned",
    "percentile",
]
