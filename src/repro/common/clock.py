"""Simulated time.

All latencies in the simulator are expressed in microseconds, the natural
unit for RDMA-era far memory (a 4 KiB fetch is 2-3 us; a page-fault exception
is ~0.5 us). The clock only moves when a component explicitly charges time,
so runs are deterministic and independent of host speed.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Tuple


class Clock:
    """A monotonically advancing microsecond clock with deadline callbacks.

    Components may register ``call_at`` callbacks (e.g. a background cleaner
    waking up); they fire, in timestamp order, whenever the clock passes
    their deadline. Callbacks may re-arm themselves.
    """

    __slots__ = ("_now", "_timers", "_seq")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        # Min-heap of (deadline, seq, callback); the unique seq breaks
        # deadline ties in registration order, so firing order is exactly
        # the sorted-list order this queue used to keep.
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` microseconds."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        if not self._timers:
            # Hot path: no pending timers means nothing can fire, so the
            # advance is a bare addition.
            self._now += delta
            return
        self.advance_to(self._now + delta)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline``, firing any due timers."""
        if deadline < self._now:
            # Completions computed in the past are simply "already done".
            return
        timers = self._timers
        while timers and timers[0][0] <= deadline:
            when, _seq, callback = heappop(timers)
            if when > self._now:
                self._now = when
            callback()
        self._now = deadline

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``."""
        self._seq += 1
        heappush(self._timers, (max(when, self._now), self._seq, callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        self.call_at(self._now + delay, callback)
