"""Counters, histograms, and latency breakdowns.

Every kernel (DiLOS, Fastswap, AIFM runtime) owns a :class:`Counter` bundle
and a few :class:`Histogram`/:class:`LatencyBreakdown` instances; the harness
reads them after a run to produce the paper's tables and figures.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List


def percentile(samples: Iterable[float], pct: float) -> float:
    """Return the ``pct``-th percentile (0-100) by linear interpolation.

    Raises ``ValueError`` on an empty sample set — a silent 0.0 would turn a
    broken experiment into a plausible-looking tail latency.
    """
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if len(data) == 1:
        return data[0]
    rank = (pct / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A named bag of monotonically increasing integer counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class Histogram:
    """Retains raw samples; good enough at simulation scale.

    Provides mean/min/max/percentiles for tail-latency tables (Table 4).
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty histogram")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        return min(self._samples)

    def max(self) -> float:
        return max(self._samples)

    def pct(self, p: float) -> float:
        return percentile(self._samples, p)

    def reset(self) -> None:
        self._samples.clear()


class LogHistogram:
    """Bounded-memory log-bucketed histogram (HDR-histogram style).

    :class:`Histogram` retains every raw sample — fine for a few thousand
    fault waits, fatal for per-request latency at "millions of users"
    scale. ``LogHistogram`` folds each sample into one of a fixed set of
    geometric buckets (:data:`BUCKETS_PER_OCTAVE` per power of two, so
    quantiles carry at most ~:math:`2^{1/8}-1 \\approx 9\\%` relative
    error) and never allocates per sample. Memory is bounded by the
    *dynamic range* of the data — ~400 buckets across 18 decades — not by
    the sample count.

    Mean, min and max are tracked exactly; ``pct`` returns the geometric
    midpoint of the bucket containing the requested rank, clamped into
    ``[min, max]``. Everything is pure float math on the recorded counts,
    so two runs recording identical samples summarize bit-identically.
    """

    __slots__ = ("_counts", "_count", "_sum", "_min", "_max")

    #: Geometric bucket resolution: 8 buckets per power of two.
    BUCKETS_PER_OCTAVE = 8
    #: Values at or below this floor share the lowest bucket (1 ns in µs).
    FLOOR = 1e-3

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket(self, value: float) -> int:
        clamped = max(value, self.FLOOR)
        return math.floor(math.log2(clamped) * self.BUCKETS_PER_OCTAVE)

    def record(self, value: float) -> None:
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        """Number of occupied buckets (the actual memory footprint)."""
        return len(self._counts)

    def mean(self) -> float:
        if not self._count:
            raise ValueError("mean of empty histogram")
        return self._sum / self._count

    def min(self) -> float:
        if not self._count:
            raise ValueError("min of empty histogram")
        return self._min

    def max(self) -> float:
        if not self._count:
            raise ValueError("max of empty histogram")
        return self._max

    def pct(self, p: float) -> float:
        """The ``p``-th percentile (0-100) to bucket resolution."""
        if not self._count:
            raise ValueError("percentile of empty histogram")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        target = (p / 100.0) * self._count
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                midpoint = 2.0 ** ((index + 0.5) / self.BUCKETS_PER_OCTAVE)
                return min(max(midpoint, self._min), self._max)
        return self._max

    def reset(self) -> None:
        self._counts.clear()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf


class LatencyBreakdown:
    """Accumulates per-component latency for fault-handler breakdowns.

    Reproduces Figures 1 and 6: each handled fault contributes its component
    costs (hardware exception, software path, fetch wait, reclaim, ...), and
    the figure shows per-fault averages per component.
    """

    __slots__ = ("_totals", "_faults")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = defaultdict(float)
        self._faults = 0

    def record_fault(self, components: Dict[str, float]) -> None:
        """Record one fault's component costs (microseconds each)."""
        for name, value in components.items():
            self._totals[name] += value
        self._faults += 1

    @property
    def fault_count(self) -> int:
        return self._faults

    def averages(self) -> Dict[str, float]:
        """Per-fault average cost of each component."""
        if self._faults == 0:
            return {}
        return {k: v / self._faults for k, v in self._totals.items()}

    def average_total(self) -> float:
        if self._faults == 0:
            raise ValueError("no faults recorded")
        return sum(self._totals.values()) / self._faults

    def reset(self) -> None:
        self._totals.clear()
        self._faults = 0
