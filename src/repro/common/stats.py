"""Counters, histograms, and latency breakdowns.

Every kernel (DiLOS, Fastswap, AIFM runtime) owns a :class:`Counter` bundle
and a few :class:`Histogram`/:class:`LatencyBreakdown` instances; the harness
reads them after a run to produce the paper's tables and figures.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List


def percentile(samples: Iterable[float], pct: float) -> float:
    """Return the ``pct``-th percentile (0-100) by linear interpolation.

    Raises ``ValueError`` on an empty sample set — a silent 0.0 would turn a
    broken experiment into a plausible-looking tail latency.
    """
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if len(data) == 1:
        return data[0]
    rank = (pct / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A named bag of monotonically increasing integer counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class Histogram:
    """Retains raw samples; good enough at simulation scale.

    Provides mean/min/max/percentiles for tail-latency tables (Table 4).
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty histogram")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        return min(self._samples)

    def max(self) -> float:
        return max(self._samples)

    def pct(self, p: float) -> float:
        return percentile(self._samples, p)

    def reset(self) -> None:
        self._samples.clear()


class LatencyBreakdown:
    """Accumulates per-component latency for fault-handler breakdowns.

    Reproduces Figures 1 and 6: each handled fault contributes its component
    costs (hardware exception, software path, fetch wait, reclaim, ...), and
    the figure shows per-fault averages per component.
    """

    __slots__ = ("_totals", "_faults")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = defaultdict(float)
        self._faults = 0

    def record_fault(self, components: Dict[str, float]) -> None:
        """Record one fault's component costs (microseconds each)."""
        for name, value in components.items():
            self._totals[name] += value
        self._faults += 1

    @property
    def fault_count(self) -> int:
        return self._faults

    def averages(self) -> Dict[str, float]:
        """Per-fault average cost of each component."""
        if self._faults == 0:
            return {}
        return {k: v / self._faults for k, v in self._totals.items()}

    def average_total(self) -> float:
        if self._faults == 0:
            raise ValueError("no faults recorded")
        return sum(self._totals.values()) / self._faults

    def reset(self) -> None:
        self._totals.clear()
        self._faults = 0
