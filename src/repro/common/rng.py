"""Deterministic randomness helpers for workload generators.

Every generator takes an explicit seed so experiments are reproducible
run-to-run; nothing in the package touches the global ``random`` state.
"""

from __future__ import annotations

import random
from typing import List


def make_rng(seed: int) -> random.Random:
    """A private ``random.Random`` stream for one workload component."""
    return random.Random(seed)


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights ``1/rank**skew`` for ranks ``1..n``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def zipf_sample(rng: random.Random, n: int, count: int, skew: float = 1.0) -> List[int]:
    """Draw ``count`` indices in ``[0, n)`` from a Zipf(skew) distribution.

    Used for skewed key popularity (Redis workloads) and power-law degree
    targets (the Twitter-shaped graph generator).
    """
    weights = zipf_weights(n, skew)
    return rng.choices(range(n), weights=weights, k=count)
