"""DiLOS (EuroSys '23) reproduction on a simulated disaggregated machine.

Public entry points:

* :class:`repro.core.DilosSystem` — the paper's system.
* :class:`repro.baselines.fastswap.FastswapSystem` — the kernel-paging
  baseline.
* :class:`repro.baselines.aifm.AifmRuntime` — the user-level baseline.
* :func:`repro.harness.make_system` — build any of them by name.

See ``README.md`` for the architecture and ``DESIGN.md`` for how the
simulation substitutes for the paper's hardware.
"""

__version__ = "1.0.0"

from repro.core import DilosConfig, DilosSystem
from repro.baselines.aifm import AifmConfig, AifmRuntime
from repro.baselines.fastswap import FastswapConfig, FastswapSystem

__all__ = [
    "AifmConfig",
    "AifmRuntime",
    "DilosConfig",
    "DilosSystem",
    "FastswapConfig",
    "FastswapSystem",
    "__version__",
]
