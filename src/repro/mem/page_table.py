"""A four-level radix page table over 48-bit virtual addresses.

Matches the Intel layout the paper's unified page table rides on: four
levels of 512-entry tables indexed by 9-bit slices of the virtual page
number. Tables are materialized lazily. A one-entry leaf cache makes the
sequential walks that dominate paging workloads cheap.

All methods are keyed by *virtual page number* (``va >> 12``); byte-address
plumbing lives in :mod:`repro.mem.vm`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

_LEVEL_BITS = 9
_LEVEL_MASK = (1 << _LEVEL_BITS) - 1
_VPN_BITS = 36  # 48-bit VA, 4 KiB pages


class PageTable:
    """Sparse 4-level radix tree of integer PTEs."""

    __slots__ = ("_root", "_leaf_cache_key", "_leaf_cache", "leaf_tables")

    def __init__(self) -> None:
        self._root: Dict[int, Dict] = {}
        self._leaf_cache_key = -1
        self._leaf_cache: Dict[int, int] = {}
        #: Count of materialized leaf tables, for footprint reporting.
        self.leaf_tables = 0

    # -- walking -----------------------------------------------------------

    def _leaf_for(self, vpn: int, create: bool) -> Dict[int, int]:
        """Return the leaf table covering ``vpn`` (possibly empty dict)."""
        key = vpn >> _LEVEL_BITS
        if key == self._leaf_cache_key:
            return self._leaf_cache
        node = self._root
        for shift in (_VPN_BITS - _LEVEL_BITS,
                      _VPN_BITS - 2 * _LEVEL_BITS,
                      _VPN_BITS - 3 * _LEVEL_BITS):
            index = (vpn >> shift) & _LEVEL_MASK
            child = node.get(index)
            if child is None:
                if not create:
                    # Do not cache: this empty dict is not linked into the
                    # tree, and caching it would orphan later set() writes.
                    return {}
                child = {}
                node[index] = child
                if shift == _VPN_BITS - 3 * _LEVEL_BITS:
                    self.leaf_tables += 1
            node = child
        self._leaf_cache_key = key
        self._leaf_cache = node
        return node

    # -- access -------------------------------------------------------------

    def get(self, vpn: int) -> int:
        """The PTE for ``vpn`` (0 = invalid/unmapped)."""
        return self._leaf_for(vpn, create=False).get(vpn & _LEVEL_MASK, 0)

    def set(self, vpn: int, pte: int) -> None:
        """Install ``pte`` for ``vpn`` (0 clears the entry)."""
        leaf = self._leaf_for(vpn, create=True)
        index = vpn & _LEVEL_MASK
        if pte == 0:
            leaf.pop(index, None)
        else:
            leaf[index] = pte

    def update(self, vpn: int, old: int, new: int) -> bool:
        """Compare-and-set; models the atomic PTE transitions of §4.2.

        Returns False (and changes nothing) if the current PTE is not
        ``old`` — e.g. another core already flipped REMOTE to FETCHING.
        """
        leaf = self._leaf_for(vpn, create=True)
        index = vpn & _LEVEL_MASK
        if leaf.get(index, 0) != old:
            return False
        if new == 0:
            leaf.pop(index, None)
        else:
            leaf[index] = new
        return True

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(vpn, pte)`` pairs with non-zero PTEs."""
        for i1, l2 in self._root.items():
            for i2, l3 in l2.items():
                for i3, leaf in l3.items():
                    base = ((i1 << _LEVEL_BITS | i2) << _LEVEL_BITS | i3) << _LEVEL_BITS
                    for i4, pte in leaf.items():
                        yield base | i4, pte
