"""A four-level radix page table over 48-bit virtual addresses.

Matches the Intel layout the paper's unified page table rides on: four
levels of 512-entry tables indexed by 9-bit slices of the virtual page
number. Tables are materialized lazily. A one-entry leaf cache makes the
sequential walks that dominate paging workloads cheap.

All methods are keyed by *virtual page number* (``va >> 12``); byte-address
plumbing lives in :mod:`repro.mem.vm`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

_LEVEL_BITS = 9
_LEVEL_MASK = (1 << _LEVEL_BITS) - 1
_VPN_BITS = 36  # 48-bit VA, 4 KiB pages

# Mirrors of repro.mem.pte's bit layout (kept literal so this module stays
# dependency-free): present = bit 0, dirty = bit 6.
_PTE_PRESENT = 1 << 0
_PRESENT_DIRTY = (1 << 0) | (1 << 6)


class PageTable:
    """Sparse 4-level radix tree of integer PTEs.

    Besides the mapping itself, two aggregates are maintained exactly on
    every mutation, for O(1) "is there anything to do?" checks by the
    page manager's background passes:

    * :attr:`dirty_vpns` — the VPNs whose PTEs are currently present
      *and* dirty (anywhere in the table);
    * :attr:`unmap_epoch` — bumped each time a present PTE is replaced
      by a non-present one (eviction, munmap, madvise), i.e. each event
      that can leave a stale entry in an external LRU list.
    """

    __slots__ = ("_root", "_leaf_cache_key", "_leaf_cache", "leaf_tables",
                 "dirty_vpns", "unmap_epoch")

    def __init__(self) -> None:
        self._root: Dict[int, Dict] = {}
        self._leaf_cache_key = -1
        self._leaf_cache: Dict[int, int] = {}
        #: Count of materialized leaf tables, for footprint reporting.
        self.leaf_tables = 0
        #: VPNs of present PTEs with the dirty bit set, maintained exactly.
        self.dirty_vpns: set = set()
        #: Present -> non-present transition counter.
        self.unmap_epoch = 0

    # -- walking -----------------------------------------------------------

    def _leaf_for(self, vpn: int, create: bool) -> Dict[int, int]:
        """Return the leaf table covering ``vpn`` (possibly empty dict)."""
        key = vpn >> _LEVEL_BITS
        if key == self._leaf_cache_key:
            return self._leaf_cache
        node = self._root
        for shift in (_VPN_BITS - _LEVEL_BITS,
                      _VPN_BITS - 2 * _LEVEL_BITS,
                      _VPN_BITS - 3 * _LEVEL_BITS):
            index = (vpn >> shift) & _LEVEL_MASK
            child = node.get(index)
            if child is None:
                if not create:
                    # Do not cache: this empty dict is not linked into the
                    # tree, and caching it would orphan later set() writes.
                    return {}
                child = {}
                node[index] = child
                if shift == _VPN_BITS - 3 * _LEVEL_BITS:
                    self.leaf_tables += 1
            node = child
        self._leaf_cache_key = key
        self._leaf_cache = node
        return node

    # -- access -------------------------------------------------------------

    def get(self, vpn: int) -> int:
        """The PTE for ``vpn`` (0 = invalid/unmapped)."""
        return self._leaf_for(vpn, create=False).get(vpn & _LEVEL_MASK, 0)

    def set(self, vpn: int, pte: int) -> None:
        """Install ``pte`` for ``vpn`` (0 clears the entry)."""
        leaf = self._leaf_for(vpn, create=True)
        index = vpn & _LEVEL_MASK
        old = leaf.get(index, 0)
        if pte == 0:
            leaf.pop(index, None)
        else:
            leaf[index] = pte
        if old != pte:
            self._account(vpn, old, pte)

    def update(self, vpn: int, old: int, new: int) -> bool:
        """Compare-and-set; models the atomic PTE transitions of §4.2.

        Returns False (and changes nothing) if the current PTE is not
        ``old`` — e.g. another core already flipped REMOTE to FETCHING.
        """
        leaf = self._leaf_for(vpn, create=True)
        index = vpn & _LEVEL_MASK
        if leaf.get(index, 0) != old:
            return False
        if new == 0:
            leaf.pop(index, None)
        else:
            leaf[index] = new
        if old != new:
            self._account(vpn, old, new)
        return True

    def _account(self, vpn: int, old: int, new: int) -> None:
        """Maintain :attr:`dirty_vpns` / :attr:`unmap_epoch` on a change."""
        old_pd = old & _PRESENT_DIRTY == _PRESENT_DIRTY
        if old_pd != (new & _PRESENT_DIRTY == _PRESENT_DIRTY):
            if old_pd:
                self.dirty_vpns.discard(vpn)
            else:
                self.dirty_vpns.add(vpn)
        if old & _PTE_PRESENT and not new & _PTE_PRESENT:
            self.unmap_epoch += 1

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(vpn, pte)`` pairs with non-zero PTEs."""
        for i1, l2 in self._root.items():
            for i2, l3 in l2.items():
                for i3, leaf in l3.items():
                    base = ((i1 << _LEVEL_BITS | i2) << _LEVEL_BITS | i3) << _LEVEL_BITS
                    for i4, pte in leaf.items():
                        yield base | i4, pte
