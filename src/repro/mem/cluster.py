"""Multi-node remote memory: sharding, replication, parity striping.

§5.1 leaves multi-node support and fault tolerance as future work and
points at the two standard recipes — replication (Infiniswap, FaRM) and
erasure coding (Hydra, Carbink). This module implements both, plus plain
capacity sharding, behind the same backend interface the single
:class:`~repro.mem.remote.MemoryNode` exposes (``alloc_slot`` /
``slot_offset`` / ``read_bytes`` / ``write_bytes``), so any kernel runs
unchanged on a cluster: pass the backend to ``DilosSystem`` /
``FastswapSystem`` instead of letting them build a single node.

* :class:`ShardedMemory` — pages striped round-robin across nodes; pure
  capacity aggregation, no redundancy.
* :class:`ReplicatedMemory` — every write goes to the primary and all
  mirrors; reads fail over to the first live mirror when the primary dies.
* :class:`ParityStripedMemory` — RAID-5-style: k data nodes + one parity
  node; a failed data node's pages are reconstructed by XOR across the
  surviving stripe (the erasure-coding approach at its simplest).

Failure is injected with ``MemoryNode.fail()``. Because the redundant
backends keep accepting writes while a member is down, a member that
merely calls ``MemoryNode.recover()`` comes back holding **stale
bytes**. The backends therefore journal every range dirtied while a
member is unavailable (:class:`~repro.mem.repair.RepairJournal`) and
expose a :meth:`_ClusterBackend.rejoin` entry point: the member returns
in a *syncing* state — served only for ranges proven clean — until the
journal drains, either synchronously (no repair manager) or by the
paced background resilver of :class:`~repro.mem.repair.RepairManager`.
The same hooks (:meth:`_ClusterBackend.resilver_page`,
:meth:`_ClusterBackend.scrub_page`) back the periodic scrubber.

Counters live in a per-backend :class:`~repro.obs.registry.MetricsRegistry`
under canonical ``cluster.*`` names; the historical ``backend.counters``
attribute remains as a :class:`~repro.obs.registry.LegacyCounters` view
(``counters.get("failover_reads")`` keeps working).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Union

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.mem.repair import RepairJournal, ScrubReport
from repro.obs.names import CLUSTER_ALIASES
from repro.obs.registry import LegacyCounters, MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot


def _check_nodes(nodes: Sequence[MemoryNode], minimum: int) -> None:
    if len(nodes) < minimum:
        raise ValueError(f"need at least {minimum} memory nodes")
    if len({node.capacity for node in nodes}) != 1:
        raise ValueError("all nodes in a cluster must have equal capacity")


class _ClusterBackend:
    """Shared journal/metrics/rejoin machinery of the three backends.

    Subclasses assign their node topology first, then call
    ``super().__init__()``; members are integer keys into
    :meth:`_member_nodes` (for :class:`ParityStripedMemory`, ``k`` is
    the parity node).
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.registry.register_aliases(CLUSTER_ALIASES)
        for canonical in sorted(set(CLUSTER_ALIASES.values())):
            self.registry.counter(canonical)
        #: Historical flat-counter surface (``counters.get(...)``).
        self.counters = LegacyCounters(self.registry, namespace="cluster")
        #: Ranges dirtied while a member was down or stale.
        self.journal = RepairJournal()
        #: Members back up but not yet proven clean everywhere.
        self._syncing: Set[int] = set()
        #: The attached :class:`~repro.mem.repair.RepairManager`, if any.
        self.repair = None
        self.registry.gauge("cluster.stale_slots",
                            lambda: float(self.journal.total_dirty()))
        self.registry.gauge("cluster.degraded",
                            lambda: float(self.degraded))
        self.registry.gauge("cluster.nodes_down",
                            lambda: float(sum(n.failed
                                              for n in self._member_nodes())))
        self.registry.gauge("repair.nodes_syncing",
                            lambda: float(len(self._syncing)))
        # A syncing member that dies again is simply down; it re-enters
        # syncing through the next rejoin(). (The journal is kept.)
        for member, node in enumerate(self._member_nodes()):
            node.add_failure_listener(
                lambda m=member: self._syncing.discard(m))

    # -- member topology (subclass contract) ---------------------------------

    def _member_nodes(self) -> List[MemoryNode]:
        """Every member node, indexed by member key."""
        raise NotImplementedError

    def member_nodes(self) -> List[MemoryNode]:
        """Every member node, indexed by member key (public copy)."""
        return list(self._member_nodes())

    def live_members(self) -> List[int]:
        """Member keys of nodes currently up (failed ones excluded)."""
        return [member for member, node in enumerate(self._member_nodes())
                if not node.failed]

    # -- redundancy state ----------------------------------------------------

    @property
    def stale_slots(self) -> int:
        """Page slots whose content is stale on at least one member —
        the amount of redundancy currently lost to journaled writes."""
        return self.journal.total_dirty()

    @property
    def degraded(self) -> bool:
        """True while full redundancy is not available: a member is
        down, still syncing, or holds journaled stale ranges."""
        return (bool(self._syncing) or self.journal.total_dirty() > 0
                or any(node.failed for node in self._member_nodes()))

    def syncing_members(self) -> List[int]:
        return sorted(self._syncing)

    def metrics(self) -> MetricsSnapshot:
        """This backend's own snapshot (``cluster.*``/``repair.*``/...)."""
        return self.registry.snapshot(system=type(self).__name__)

    # -- rejoin / repair -----------------------------------------------------

    def attach_repair(self, manager) -> None:
        if self.repair is not None and self.repair is not manager:
            raise ValueError("a RepairManager is already attached")
        self.repair = manager

    def _resolve_member(self, node: Union[MemoryNode, int]) -> int:
        if isinstance(node, int):
            if not 0 <= node < len(self._member_nodes()):
                raise ValueError(f"no cluster member {node}")
            return node
        for member, candidate in enumerate(self._member_nodes()):
            if candidate is node:
                return member
        raise ValueError(f"node {node.name!r} is not a member of this cluster")

    def rejoin(self, node: Union[MemoryNode, int]) -> bool:
        """Bring a failed member back *correctly*: recover it, and if any
        of its content went stale while it was away, keep it in the
        syncing state (reads avoid its journaled ranges) until the
        resilver has replayed every dirty page. Returns True when the
        member is already back in full service, False while syncing
        continues in the background.
        """
        member = self._resolve_member(node)
        target = self._member_nodes()[member]
        if not target.failed:
            if member in self._syncing:
                # Idempotent re-entry: the member is already back and
                # mid-resilver. Don't re-count the rejoin or re-notify
                # the manager (which would restart its sync clock); with
                # no manager, just retry the synchronous fallback.
                if self.repair is not None:
                    return False
                return self._resilver_member_now(member)
            if self.journal.dirty_count(member) == 0:
                return True  # already in full service — nothing to do
            # Recovered out-of-band with stale ranges: genuine rejoin.
        else:
            target.recover()
        self.counters.add("rejoins")
        if self.journal.dirty_count(member) == 0:
            return True
        self._syncing.add(member)
        if self.repair is not None:
            self.repair.notify_rejoin(member)
            return False
        return self._resilver_member_now(member)

    def promote(self, member: int) -> None:
        """A syncing member drained its journal: full service again.

        Refused while the member still holds journaled stale ranges —
        promoting it early would drop it from ``_syncing`` while dirty,
        so the background resilver (which iterates ``syncing_members()``)
        would orphan its journal and the member would serve from the
        journal-protected degraded path forever."""
        if member not in self._syncing:
            return
        if self.journal.dirty_count(member) > 0:
            self.registry.add("repair.premature_promotes")
            return
        self._syncing.discard(member)
        self.registry.add("repair.nodes_promoted")

    def _resilver_member_now(self, member: int) -> bool:
        """Synchronous fallback resilver (no manager attached): replay
        the whole journal in zero simulated time. Returns False when no
        clean source is available yet (the member stays syncing and the
        journal keeps protecting reads)."""
        while True:
            pages = self.journal.dirty_pages(member)
            if not pages:
                self.promote(member)
                return True
            progressed = False
            for page in pages:
                if self.resilver_page(member, page) >= 0:
                    progressed = True
            if not progressed:
                return False

    def resilver_page(self, member: int, page: int) -> int:
        """Rebuild one journaled page of ``member`` from clean peers.

        Returns the wire bytes *read* to rebuild it (the resilver's
        charge), or -1 when no clean source is currently available (the
        page stays journaled and is retried later)."""
        raise NotImplementedError

    # -- scrub (subclass contract) -------------------------------------------

    @property
    def scrub_extent(self) -> int:
        """Rows the scrubber cycles through (0 = nothing to verify)."""
        return 0

    def scrub_page(self, row: int) -> ScrubReport:
        """Verify one row of at-rest redundancy; repair or quarantine."""
        raise NotImplementedError


class ShardedMemory(_ClusterBackend):
    """Pages striped across ``nodes``: global page g lives on node g % n.

    No redundancy: a dead shard's pages are simply unavailable, so there
    is nothing to journal and nothing to resilver — ``rejoin`` is
    ``recover`` plus bookkeeping, and the scrubber has no invariant to
    check."""

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 2)
        self.nodes: List[MemoryNode] = list(nodes)
        super().__init__()

    def _member_nodes(self) -> List[MemoryNode]:
        return self.nodes

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.nodes)

    @property
    def free_slots(self) -> int:
        return sum(node.free_slots for node in self.nodes)

    # -- slots -------------------------------------------------------------

    def alloc_slot(self) -> int:
        """A global slot on the node with the most free capacity."""
        best = max(range(len(self.nodes)),
                   key=lambda i: self.nodes[i].free_slots)
        if self.nodes[best].free_slots == 0:
            raise OutOfMemoryError("memory cluster exhausted")
        local = self.nodes[best].alloc_slot()
        return local * len(self.nodes) + best

    def free_slot(self, global_slot: int) -> None:
        node_index = global_slot % len(self.nodes)
        self.nodes[node_index].free_slot(global_slot // len(self.nodes))

    def slot_offset(self, global_slot: int) -> int:
        return global_slot << PAGE_SHIFT

    def _route(self, offset: int):
        """Map a global offset to (node, local offset)."""
        global_page = offset >> PAGE_SHIFT
        node = self.nodes[global_page % len(self.nodes)]
        local = ((global_page // len(self.nodes)) << PAGE_SHIFT) \
            | (offset & (PAGE_SIZE - 1))
        return node, local

    # -- data path (splits page-crossing requests) ---------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        parts = []
        while size > 0:
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)), size)
            parts.append(node.read_bytes(local, take))
            offset += take
            size -= take
        return b"".join(parts)

    def write_bytes(self, offset: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)),
                       len(data) - cursor)
            node.write_bytes(local, data[cursor:cursor + take])
            offset += take
            cursor += take

    def resilver_page(self, member: int, page: int) -> int:
        return -1  # no redundant copy to rebuild from


class ReplicatedMemory(_ClusterBackend):
    """Primary/mirror replication: writes fan out, reads fail over.

    While a replica is down its missed writes are journaled; after
    ``rejoin`` the replica serves only ranges the journal proves clean,
    and the resilver copies each stale page from the first clean live
    replica until the journal drains."""

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 2)
        self.primary = nodes[0]
        self.mirrors: List[MemoryNode] = list(nodes[1:])
        super().__init__()

    def _member_nodes(self) -> List[MemoryNode]:
        return self._replicas()

    @property
    def capacity(self) -> int:
        return self.primary.capacity

    @property
    def total_slots(self) -> int:
        return self.primary.total_slots

    @property
    def free_slots(self) -> int:
        return self.primary.free_slots

    def alloc_slot(self) -> int:
        # Slot metadata lives on the computing node; the same slot id
        # addresses the same offset on every replica.
        return self.primary.alloc_slot()

    def free_slot(self, slot: int) -> None:
        self.primary.free_slot(slot)

    def slot_offset(self, slot: int) -> int:
        return slot << PAGE_SHIFT

    def _replicas(self):
        return [self.primary] + self.mirrors

    def read_bytes(self, offset: int, size: int) -> bytes:
        for member, replica in enumerate(self._replicas()):
            if replica.failed:
                self.counters.add("failover_reads")
                continue
            if self.journal.is_dirty(member, offset, size):
                # The replica is up but this range went stale while it
                # was away and the resilver has not replayed it yet.
                self.counters.add("stale_reads_avoided")
                continue
            try:
                data = replica.read_bytes(offset, size)
            except NodeFailedError:
                self.counters.add("failover_reads")
                continue
            return data
        raise NodeFailedError("no replica holds a clean copy of this range")

    def write_bytes(self, offset: int, data: bytes) -> None:
        wrote = 0
        missed: List[int] = []
        for member, replica in enumerate(self._replicas()):
            try:
                replica.write_bytes(offset, data)
                wrote += 1
            except NodeFailedError:
                self.counters.add("writes_skipped_dead_replica")
                missed.append(member)
            else:
                # A write-through onto a stale range freshens it: pages
                # it fully covers no longer need resilvering.
                self.journal.clear_covered(member, offset, len(data))
        if wrote == 0:
            raise NodeFailedError("all replicas are down")
        self.counters.add("replicated_writes", wrote)
        # Journal only when the write took effect somewhere: a failed
        # write changed nothing, so nothing went stale.
        for member in missed:
            self.journal.record_range(member, offset, len(data))

    def resilver_page(self, member: int, page: int) -> int:
        replicas = self._replicas()
        target = replicas[member]
        if target.failed:
            return -1
        offset = page << PAGE_SHIFT
        for source_member, source in enumerate(replicas):
            if source_member == member or source.failed:
                continue
            if self.journal.is_dirty(source_member, offset, PAGE_SIZE):
                continue
            try:
                data = source.read_bytes(offset, PAGE_SIZE)
            except NodeFailedError:
                continue
            target.write_bytes(offset, data)
            self.journal.clear_page(member, page)
            return PAGE_SIZE
        return -1

    @property
    def scrub_extent(self) -> int:
        return self.primary.total_slots

    def scrub_page(self, row: int) -> ScrubReport:
        """Cross-replica agreement check for one page slot. The first
        clean live replica is authoritative (primary-copy semantics);
        divergent copies are rewritten from it, or journaled as
        quarantined when the repair write fails."""
        report = ScrubReport()
        offset = row << PAGE_SHIFT
        verifiable = [
            (member, replica)
            for member, replica in enumerate(self._replicas())
            if not replica.failed
            and not self.journal.is_dirty(member, offset, PAGE_SIZE)
        ]
        if len(verifiable) < 2:
            return report  # nothing to compare against
        report.members_checked = len(verifiable)
        report.bytes_read = len(verifiable) * PAGE_SIZE
        truth_member, truth_node = verifiable[0]
        truth = truth_node.read_bytes(offset, PAGE_SIZE)
        for member, replica in verifiable[1:]:
            if replica.read_bytes(offset, PAGE_SIZE) == truth:
                continue
            report.mismatches += 1
            try:
                replica.write_bytes(offset, truth)
                report.repaired += 1
            except NodeFailedError:
                self.journal.record_range(member, offset, PAGE_SIZE)
                report.quarantined += 1
        return report


class ParityStripedMemory(_ClusterBackend):
    """k data nodes + 1 parity node; XOR reconstruction on failure.

    Data page layout matches :class:`ShardedMemory` over the k data
    nodes; the parity node's local page r holds the XOR of every data
    node's local page r (one stripe row). Member keys 0..k-1 are the
    data nodes and k is the parity node; journal offsets are node-local
    (stripe rows line up across members).

    A degraded write keeps the invariant *parity row = XOR of the
    logical stripe row* — the absent member's new data is folded into
    parity and its physical page journaled stale, so reconstruction
    still yields the fresh bytes and a later rejoin cannot resurrect
    the old ones."""

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 3)
        self.data_nodes: List[MemoryNode] = list(nodes[:-1])
        self.parity_node = nodes[-1]
        super().__init__()

    def _member_nodes(self) -> List[MemoryNode]:
        return self.data_nodes + [self.parity_node]

    @property
    def k(self) -> int:
        return len(self.data_nodes)

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.data_nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.data_nodes)

    @property
    def free_slots(self) -> int:
        return sum(node.free_slots for node in self.data_nodes)

    def alloc_slot(self) -> int:
        best = max(range(self.k),
                   key=lambda i: self.data_nodes[i].free_slots)
        if self.data_nodes[best].free_slots == 0:
            raise OutOfMemoryError("memory cluster exhausted")
        local = self.data_nodes[best].alloc_slot()
        return local * self.k + best

    def free_slot(self, global_slot: int) -> None:
        self.data_nodes[global_slot % self.k].free_slot(global_slot // self.k)

    def slot_offset(self, global_slot: int) -> int:
        return global_slot << PAGE_SHIFT

    def _route(self, offset: int):
        global_page = offset >> PAGE_SHIFT
        index = global_page % self.k
        local_page = global_page // self.k
        local = (local_page << PAGE_SHIFT) | (offset & (PAGE_SIZE - 1))
        return index, local

    @staticmethod
    def _xor(a: bytes, b: bytes) -> bytes:
        # Vectorized: parity spans whole pages, and a per-byte Python loop
        # dominates reconstruction/write time at 4 KiB granularity.
        n = min(len(a), len(b))
        return np.bitwise_xor(np.frombuffer(a, np.uint8, n),
                              np.frombuffer(b, np.uint8, n)).tobytes()

    def _member_clean(self, member: int, node: MemoryNode,
                      local: int, size: int) -> bool:
        return not node.failed and \
            not self.journal.is_dirty(member, local, size)

    def _survivor_xor(self, failed_index: int, local: int, size: int) -> bytes:
        """Reconstruct a range of an absent/stale node from its stripe
        row. Every source must itself be clean: XOR-ing a stale or dead
        copy in would fabricate bytes that were never written."""
        if not self._member_clean(self.k, self.parity_node, local, size):
            raise NodeFailedError(
                "cannot reconstruct: parity is down or stale for this row")
        acc = self.parity_node.read_bytes(local, size)
        for index, node in enumerate(self.data_nodes):
            if index == failed_index:
                continue
            if not self._member_clean(index, node, local, size):
                raise NodeFailedError(
                    "cannot reconstruct: a second stripe member is down "
                    "or stale for this row")
            acc = self._xor(acc, node.read_bytes(local, size))
        self.counters.add("reconstruction_bytes", size * self.k)
        return acc

    def read_bytes(self, offset: int, size: int) -> bytes:
        parts = []
        while size > 0:
            index, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)), size)
            node = self.data_nodes[index]
            if self.journal.is_dirty(index, local, take):
                # Up (rejoined) but stale here: reconstruct instead of
                # serving the pre-crash bytes.
                self.counters.add("stale_reads_avoided")
                parts.append(self._survivor_xor(index, local, take))
            else:
                try:
                    parts.append(node.read_bytes(local, take))
                except NodeFailedError:
                    self.counters.add("degraded_reads")
                    parts.append(self._survivor_xor(index, local, take))
            offset += take
            size -= take
        return b"".join(parts)

    def write_bytes(self, offset: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            index, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)),
                       len(data) - cursor)
            piece = data[cursor:cursor + take]
            node = self.data_nodes[index]
            if node.failed:
                self._degraded_write(index, local, piece)
            elif self.journal.is_dirty(index, local, take):
                self._sync_write(index, node, local, piece)
            else:
                try:
                    old = node.read_bytes(local, take)
                    node.write_bytes(local, piece)
                except NodeFailedError:
                    self._degraded_write(index, local, piece)
                else:
                    self._update_parity(local, old, piece)
            offset += take
            cursor += take

    def _degraded_write(self, index: int, local: int, piece: bytes) -> None:
        """The home node is down: fold the new data into parity so it
        stays recoverable by XOR, and journal the home page stale. The
        parity write happens first — if no clean survivors exist the
        write raises and nothing (journal included) changes."""
        take = len(piece)
        acc = piece
        for other_index, other in enumerate(self.data_nodes):
            if other_index == index:
                continue
            if not self._member_clean(other_index, other, local, take):
                raise NodeFailedError(
                    "degraded write impossible: a second stripe member "
                    "is down or stale for this row")
            acc = self._xor(acc, other.read_bytes(local, take))
        if not self._member_clean(self.k, self.parity_node, local, take):
            raise NodeFailedError(
                "degraded write impossible: parity is down or stale "
                "for this row")
        self.parity_node.write_bytes(local, acc)
        self.journal.record_range(index, local, take)
        self.counters.add("degraded_writes")

    def _sync_write(self, index: int, node: MemoryNode,
                    local: int, piece: bytes) -> None:
        """Write onto a live-but-stale (syncing) page: store the data
        physically and *recompute* parity for the range — the RMW
        shortcut would fold the stale old bytes into parity. A full-page
        write makes the page clean outright."""
        take = len(piece)
        for other_index, other in enumerate(self.data_nodes):
            if other_index == index:
                continue
            if not self._member_clean(other_index, other, local, take):
                raise NodeFailedError(
                    "sync write impossible: a second stripe member is "
                    "down or stale for this row")
        if not self._member_clean(self.k, self.parity_node, local, take):
            raise NodeFailedError(
                "sync write impossible: parity is down or stale for "
                "this row")
        node.write_bytes(local, piece)
        acc = piece
        for other_index, other in enumerate(self.data_nodes):
            if other_index != index:
                acc = self._xor(acc, other.read_bytes(local, take))
        self.parity_node.write_bytes(local, acc)
        self.journal.clear_covered(index, local, take)
        self.counters.add("sync_writes")

    def _update_parity(self, local: int, old: bytes, piece: bytes) -> None:
        parity_member = self.k
        take = len(piece)
        if self.parity_node.failed or \
                self.journal.is_dirty(parity_member, local, take):
            # Down, or up-but-stale here: an RMW against stale parity
            # would corrupt the row further. Journal it for the
            # resilver; redundancy is simply lost meanwhile.
            self.journal.record_range(parity_member, local, take)
            self.counters.add("parity_writes_skipped")
            return
        try:
            # Read-modify-write the parity: P ^= old ^ new.
            parity_old = self.parity_node.read_bytes(local, take)
            self.parity_node.write_bytes(
                local, self._xor(parity_old, self._xor(old, piece)))
        except NodeFailedError:
            self.journal.record_range(parity_member, local, take)
            self.counters.add("parity_writes_skipped")

    def resilver_page(self, member: int, page: int) -> int:
        local = page << PAGE_SHIFT
        target = self._member_nodes()[member]
        if target.failed:
            return -1
        if member == self.k:
            # Parity page: recompute from the full (clean) data row.
            for index, node in enumerate(self.data_nodes):
                if not self._member_clean(index, node, local, PAGE_SIZE):
                    return -1
            acc = self.data_nodes[0].read_bytes(local, PAGE_SIZE)
            for node in self.data_nodes[1:]:
                acc = self._xor(acc, node.read_bytes(local, PAGE_SIZE))
        else:
            # Data page: XOR of parity and the other (clean) data rows.
            if not self._member_clean(self.k, self.parity_node,
                                      local, PAGE_SIZE):
                return -1
            for index, node in enumerate(self.data_nodes):
                if index != member and \
                        not self._member_clean(index, node, local, PAGE_SIZE):
                    return -1
            acc = self.parity_node.read_bytes(local, PAGE_SIZE)
            for index, node in enumerate(self.data_nodes):
                if index != member:
                    acc = self._xor(acc, node.read_bytes(local, PAGE_SIZE))
        target.write_bytes(local, acc)
        self.journal.clear_page(member, page)
        return self.k * PAGE_SIZE

    @property
    def scrub_extent(self) -> int:
        return self.data_nodes[0].total_slots

    def scrub_page(self, row: int) -> ScrubReport:
        """Verify the parity invariant for one stripe row. Rows with an
        absent or stale member are skipped (the journal already knows
        about them). On mismatch the data wins — k independent copies
        against one — so the parity page is rewritten, or journaled as
        quarantined if the rewrite fails."""
        report = ScrubReport()
        local = row << PAGE_SHIFT
        for member, node in enumerate(self._member_nodes()):
            if not self._member_clean(member, node, local, PAGE_SIZE):
                return report
        acc = self.data_nodes[0].read_bytes(local, PAGE_SIZE)
        for node in self.data_nodes[1:]:
            acc = self._xor(acc, node.read_bytes(local, PAGE_SIZE))
        report.members_checked = self.k + 1
        report.bytes_read = (self.k + 1) * PAGE_SIZE
        if self.parity_node.read_bytes(local, PAGE_SIZE) == acc:
            return report
        report.mismatches = 1
        try:
            self.parity_node.write_bytes(local, acc)
            report.repaired = 1
        except NodeFailedError:
            self.journal.record_range(self.k, local, PAGE_SIZE)
            report.quarantined = 1
        return report


__all__ = [
    "ParityStripedMemory",
    "ReplicatedMemory",
    "ShardedMemory",
]
