"""Multi-node remote memory: sharding, replication, parity striping.

§5.1 leaves multi-node support and fault tolerance as future work and
points at the two standard recipes — replication (Infiniswap, FaRM) and
erasure coding (Hydra, Carbink). This module implements both, plus plain
capacity sharding, behind the same backend interface the single
:class:`~repro.mem.remote.MemoryNode` exposes (``alloc_slot`` /
``slot_offset`` / ``read_bytes`` / ``write_bytes``), so any kernel runs
unchanged on a cluster: pass the backend to ``DilosSystem`` /
``FastswapSystem`` instead of letting them build a single node.

* :class:`ShardedMemory` — pages striped round-robin across nodes; pure
  capacity aggregation, no redundancy.
* :class:`ReplicatedMemory` — every write goes to the primary and all
  mirrors; reads fail over to the first live mirror when the primary dies.
* :class:`ParityStripedMemory` — RAID-5-style: k data nodes + one parity
  node; a failed data node's pages are reconstructed by XOR across the
  surviving stripe (the erasure-coding approach at its simplest).

Failure is injected with ``MemoryNode.fail()``; the backends count
failovers, degraded reads and reconstruction traffic.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.common.stats import Counter
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem.remote import MemoryNode, NodeFailedError


def _check_nodes(nodes: Sequence[MemoryNode], minimum: int) -> None:
    if len(nodes) < minimum:
        raise ValueError(f"need at least {minimum} memory nodes")
    if len({node.capacity for node in nodes}) != 1:
        raise ValueError("all nodes in a cluster must have equal capacity")


class ShardedMemory:
    """Pages striped across ``nodes``: global page g lives on node g % n."""

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 2)
        self.nodes: List[MemoryNode] = list(nodes)
        self.counters = Counter()

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.nodes)

    @property
    def free_slots(self) -> int:
        return sum(node.free_slots for node in self.nodes)

    # -- slots -------------------------------------------------------------

    def alloc_slot(self) -> int:
        """A global slot on the node with the most free capacity."""
        best = max(range(len(self.nodes)),
                   key=lambda i: self.nodes[i].free_slots)
        if self.nodes[best].free_slots == 0:
            raise OutOfMemoryError("memory cluster exhausted")
        local = self.nodes[best].alloc_slot()
        return local * len(self.nodes) + best

    def free_slot(self, global_slot: int) -> None:
        node_index = global_slot % len(self.nodes)
        self.nodes[node_index].free_slot(global_slot // len(self.nodes))

    def slot_offset(self, global_slot: int) -> int:
        return global_slot << PAGE_SHIFT

    def _route(self, offset: int):
        """Map a global offset to (node, local offset)."""
        global_page = offset >> PAGE_SHIFT
        node = self.nodes[global_page % len(self.nodes)]
        local = ((global_page // len(self.nodes)) << PAGE_SHIFT) \
            | (offset & (PAGE_SIZE - 1))
        return node, local

    # -- data path (splits page-crossing requests) ---------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        parts = []
        while size > 0:
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)), size)
            parts.append(node.read_bytes(local, take))
            offset += take
            size -= take
        return b"".join(parts)

    def write_bytes(self, offset: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)),
                       len(data) - cursor)
            node.write_bytes(local, data[cursor:cursor + take])
            offset += take
            cursor += take


class ReplicatedMemory:
    """Primary/mirror replication: writes fan out, reads fail over."""

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 2)
        self.primary = nodes[0]
        self.mirrors: List[MemoryNode] = list(nodes[1:])
        self.counters = Counter()

    @property
    def capacity(self) -> int:
        return self.primary.capacity

    @property
    def total_slots(self) -> int:
        return self.primary.total_slots

    @property
    def free_slots(self) -> int:
        return self.primary.free_slots

    def alloc_slot(self) -> int:
        # Slot metadata lives on the computing node; the same slot id
        # addresses the same offset on every replica.
        return self.primary.alloc_slot()

    def free_slot(self, slot: int) -> None:
        self.primary.free_slot(slot)

    def slot_offset(self, slot: int) -> int:
        return slot << PAGE_SHIFT

    def _replicas(self):
        return [self.primary] + self.mirrors

    def read_bytes(self, offset: int, size: int) -> bytes:
        for replica in self._replicas():
            try:
                data = replica.read_bytes(offset, size)
            except NodeFailedError:
                self.counters.add("failover_reads")
                continue
            return data
        raise NodeFailedError("all replicas are down")

    def write_bytes(self, offset: int, data: bytes) -> None:
        wrote = 0
        for replica in self._replicas():
            try:
                replica.write_bytes(offset, data)
                wrote += 1
            except NodeFailedError:
                self.counters.add("writes_skipped_dead_replica")
        if wrote == 0:
            raise NodeFailedError("all replicas are down")
        self.counters.add("replicated_writes", wrote)


class ParityStripedMemory:
    """k data nodes + 1 parity node; XOR reconstruction on failure.

    Data page layout matches :class:`ShardedMemory` over the k data
    nodes; the parity node's local page r holds the XOR of every data
    node's local page r (one stripe row).
    """

    def __init__(self, nodes: Sequence[MemoryNode]) -> None:
        _check_nodes(nodes, 3)
        self.data_nodes: List[MemoryNode] = list(nodes[:-1])
        self.parity_node = nodes[-1]
        self.counters = Counter()

    @property
    def k(self) -> int:
        return len(self.data_nodes)

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.data_nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.data_nodes)

    @property
    def free_slots(self) -> int:
        return sum(node.free_slots for node in self.data_nodes)

    def alloc_slot(self) -> int:
        best = max(range(self.k),
                   key=lambda i: self.data_nodes[i].free_slots)
        if self.data_nodes[best].free_slots == 0:
            raise OutOfMemoryError("memory cluster exhausted")
        local = self.data_nodes[best].alloc_slot()
        return local * self.k + best

    def free_slot(self, global_slot: int) -> None:
        self.data_nodes[global_slot % self.k].free_slot(global_slot // self.k)

    def slot_offset(self, global_slot: int) -> int:
        return global_slot << PAGE_SHIFT

    def _route(self, offset: int):
        global_page = offset >> PAGE_SHIFT
        index = global_page % self.k
        local_page = global_page // self.k
        local = (local_page << PAGE_SHIFT) | (offset & (PAGE_SIZE - 1))
        return index, local

    @staticmethod
    def _xor(a: bytes, b: bytes) -> bytes:
        # Vectorized: parity spans whole pages, and a per-byte Python loop
        # dominates reconstruction/write time at 4 KiB granularity.
        n = min(len(a), len(b))
        return np.bitwise_xor(np.frombuffer(a, np.uint8, n),
                              np.frombuffer(b, np.uint8, n)).tobytes()

    def _survivor_xor(self, failed_index: int, local: int, size: int) -> bytes:
        """Reconstruct a range of a failed node from its stripe row."""
        acc = self.parity_node.read_bytes(local, size)
        for index, node in enumerate(self.data_nodes):
            if index == failed_index:
                continue
            acc = self._xor(acc, node.read_bytes(local, size))
        self.counters.add("reconstruction_bytes", size * self.k)
        return acc

    def read_bytes(self, offset: int, size: int) -> bytes:
        parts = []
        while size > 0:
            index, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)), size)
            node = self.data_nodes[index]
            try:
                parts.append(node.read_bytes(local, take))
            except NodeFailedError:
                self.counters.add("degraded_reads")
                parts.append(self._survivor_xor(index, local, take))
            offset += take
            size -= take
        return b"".join(parts)

    def write_bytes(self, offset: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            index, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)),
                       len(data) - cursor)
            piece = data[cursor:cursor + take]
            node = self.data_nodes[index]
            try:
                old = node.read_bytes(local, take)
                node.write_bytes(local, piece)
            except NodeFailedError:
                # Degraded write: the home node is down, so rebuild the
                # parity from the survivors — the new data remains
                # recoverable by XOR even though it was never stored.
                self.counters.add("degraded_writes")
                acc = piece
                for other_index, other in enumerate(self.data_nodes):
                    if other_index == index:
                        continue
                    acc = self._xor(acc, other.read_bytes(local, take))
                self.parity_node.write_bytes(local, acc)
            else:
                try:
                    # Read-modify-write the parity: P ^= old ^ new.
                    parity_old = self.parity_node.read_bytes(local, take)
                    self.parity_node.write_bytes(
                        local, self._xor(parity_old, self._xor(old, piece)))
                except NodeFailedError:
                    # Data landed; redundancy is simply lost while the
                    # parity node is down.
                    self.counters.add("parity_writes_skipped")
            offset += take
            cursor += take
