"""The MMU model: virtual loads and stores with faulting.

:class:`VirtualMemory` is the only way applications touch data. Each access
is split at page boundaries; each page is translated through the TLB and
page table; non-present PTEs dispatch to the attached kernel's fault handler
(DiLOS or Fastswap), after which the access retries. Accessed and dirty bits
are maintained the way x86 hardware does: accessed set on TLB fill, dirty
set on the first write through a clean translation.

CPU time is charged per byte moved (``cpu_copy_per_byte``), so computation
and fetch pipelines interact realistically with prefetching.

The per-page loops are the hottest code in the simulator, so ``read``,
``write`` and ``touch`` inline the pure-TLB-hit case (present entry; for
writes, writable with the dirty bit already set) against locally bound
lookups, falling back to :meth:`VirtualMemory._translate` for everything
else. The fast path produces byte-for-byte identical accounting to the
per-page path — one TLB hit count and one LRU refresh per page, misses and
protection checks through ``_translate`` — and the clock is still charged
exactly once per call, after the loop. ``tests/test_golden_master.py`` and
the Hypothesis differential suite pin this equivalence.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

from repro.common.clock import Clock
from repro.common.errors import FaultError, ProtectionError
from repro.common.stats import Counter
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem import pte as pte_mod
from repro.mem.frames import FramePool
from repro.mem.page_table import PageTable
from repro.mem.tlb import Tlb

#: Fault handler signature: (faulting va, is_write) -> None.
FaultHandler = Callable[[int, bool], None]

_MAX_FAULT_RETRIES = 4
_PAGE_MASK = PAGE_SIZE - 1


class VirtualMemory:
    """Byte-granular load/store engine over the paged address space."""

    __slots__ = ("_clock", "_pt", "_frames", "_copy_cost", "tlb",
                 "counters", "_fault_handler")

    def __init__(self, clock: Clock, page_table: PageTable,
                 frames: FramePool, copy_cost_per_byte: float) -> None:
        self._clock = clock
        self._pt = page_table
        self._frames = frames
        self._copy_cost = copy_cost_per_byte
        self.tlb = Tlb()
        self.counters = Counter()
        self._fault_handler: FaultHandler = self._no_kernel

    @staticmethod
    def _no_kernel(va: int, is_write: bool) -> None:
        raise FaultError(f"page fault at {va:#x} with no kernel attached")

    def attach_kernel(self, handler: FaultHandler) -> None:
        """Install the kernel's page fault handler."""
        self._fault_handler = handler

    # -- translation ------------------------------------------------------

    def _translate(self, vpn: int, is_write: bool) -> int:
        """Return the local frame for ``vpn``, faulting as needed."""
        entry = self.tlb.lookup(vpn)
        if entry is not None:
            frame, writable, dirty_set = entry
            if is_write and not writable:
                raise ProtectionError(
                    f"write to read-only page {vpn:#x}")
            if not is_write or dirty_set:
                return frame
            # First write through a clean translation: set the PTE dirty
            # bit (a hardware-assisted walk on x86).
            pte = self._pt.get(vpn)
            self._pt.set(vpn, pte_mod.set_dirty(pte))
            self.tlb.mark_dirty_set(vpn)
            return frame

        for _attempt in range(_MAX_FAULT_RETRIES):
            pte = self._pt.get(vpn)
            if pte_mod.is_present(pte):
                if is_write and not pte & pte_mod.PTE_WRITE:
                    raise ProtectionError(
                        f"write to read-only page {vpn:#x}")
                frame = pte_mod.frame_of(pte)
                new = pte_mod.set_accessed(pte)
                if is_write:
                    new = pte_mod.set_dirty(new)
                if new != pte:
                    self._pt.set(vpn, new)
                self.tlb.fill(vpn, frame, writable=bool(new & pte_mod.PTE_WRITE),
                              dirty_set=pte_mod.is_dirty(new))
                return frame
            self._fault_handler(vpn << PAGE_SHIFT, is_write)

        raise FaultError(
            f"page {vpn:#x} still not present after "
            f"{_MAX_FAULT_RETRIES} fault retries")

    def _chunks(self, va: int, size: int) -> Iterator[Tuple[int, int, int]]:
        """Split ``[va, va+size)`` into per-page ``(vpn, offset, length)``."""
        while size > 0:
            vpn = va >> PAGE_SHIFT
            offset = va & _PAGE_MASK
            length = min(PAGE_SIZE - offset, size)
            yield vpn, offset, length
            va += length
            size -= length

    # -- data access --------------------------------------------------------

    def read(self, va: int, size: int) -> bytes:
        """Load ``size`` bytes at ``va`` (may fault per page)."""
        if size < 0:
            raise ValueError("negative read size")
        if size == 0:
            return b""
        tlb = self.tlb
        tlb_get = tlb.entries.get
        tlb_move = tlb.entries.move_to_end
        frame_bufs = self._frames._data
        translate = self._translate
        parts = []
        append = parts.append
        remaining = size
        hits = 0
        while remaining > 0:
            vpn = va >> PAGE_SHIFT
            offset = va & _PAGE_MASK
            length = PAGE_SIZE - offset
            if length > remaining:
                length = remaining
            entry = tlb_get(vpn)
            if entry is not None:
                tlb_move(vpn)
                hits += 1
                frame = entry[0]
            else:
                # Flush accrued hits before the slow path so accounting is
                # exact even if translation raises mid-access.
                tlb.hits += hits
                hits = 0
                frame = translate(vpn, False)
            append(bytes(frame_bufs[frame][offset:offset + length]))
            va += length
            remaining -= length
        tlb.hits += hits
        self._clock.advance(size * self._copy_cost)
        self.counters.add("bytes_read", size)
        return b"".join(parts) if len(parts) > 1 else parts[0]

    def write(self, va: int, data: bytes) -> None:
        """Store ``data`` at ``va`` (may fault per page)."""
        size = len(data)
        if size == 0:
            return
        tlb = self.tlb
        tlb_get = tlb.entries.get
        tlb_move = tlb.entries.move_to_end
        frame_bufs = self._frames._data
        translate = self._translate
        cursor = 0
        remaining = size
        hits = 0
        while remaining > 0:
            vpn = va >> PAGE_SHIFT
            offset = va & _PAGE_MASK
            length = PAGE_SIZE - offset
            if length > remaining:
                length = remaining
            entry = tlb_get(vpn)
            # A write is a pure hit only once the translation is writable
            # and its dirty bit is set; the first write through a clean
            # translation must walk the PTE, so it takes the slow path.
            if entry is not None and entry[1] and entry[2]:
                tlb_move(vpn)
                hits += 1
                frame = entry[0]
            else:
                tlb.hits += hits
                hits = 0
                frame = translate(vpn, True)
            frame_bufs[frame][offset:offset + length] = \
                data[cursor:cursor + length]
            cursor += length
            va += length
            remaining -= length
        tlb.hits += hits
        self._clock.advance(size * self._copy_cost)
        self.counters.add("bytes_written", size)

    # -- batch access -------------------------------------------------------

    def read_into(self, va: int, out) -> None:
        """Read ``len(out)`` bytes at ``va`` into a writable C-contiguous
        1-D uint8 numpy array, executing pure-TLB-hit spans as single
        fancy-index gathers. Accounting is identical to one
        :meth:`read` call (see :mod:`repro.mem.batch`)."""
        from repro.mem import batch
        batch.read_span_into(self, va, out)

    def write_from(self, va: int, values) -> None:
        """Write a C-contiguous 1-D uint8 numpy array at ``va``; the batch
        counterpart of one :meth:`write` call."""
        from repro.mem import batch
        batch.write_span_from(self, va, values)

    def read_batch(self, vas, sizes):
        """Batched loads: element ``i`` behaves exactly like
        ``read(vas[i], sizes[i])`` — per-element clock charge and counter —
        with hit spans vectorized. Returns a list of bytes."""
        from repro.mem import batch
        return batch.read_batch(self, vas, sizes)

    def write_batch(self, vas, datas) -> None:
        """Batched stores; element ``i`` behaves exactly like
        ``write(vas[i], datas[i])``."""
        from repro.mem import batch
        batch.write_batch(self, vas, datas)

    def apply_trace(self, ops):
        """Execute ``("r", va, size)`` / ``("w", va, data)`` tuples in
        order; returns per-op results (bytes for reads, None for writes)."""
        from repro.mem import batch
        return batch.apply_trace(self, ops)

    def touch(self, va: int, size: int, is_write: bool = False) -> None:
        """Fault in (and mark accessed/dirty) every page of a range without
        moving bytes — used by workloads whose computation is modeled by an
        explicit CPU charge rather than byte-by-byte copies."""
        if size <= 0:
            return
        vpn = va >> PAGE_SHIFT
        last = (va + size - 1) >> PAGE_SHIFT
        tlb = self.tlb
        translate = self._translate
        while vpn <= last:
            vpn += tlb.lookup_run(vpn, last - vpn + 1, is_write)
            if vpn <= last:
                translate(vpn, is_write)
                vpn += 1

    # -- typed helpers ----------------------------------------------------

    def read_u64(self, va: int) -> int:
        return int.from_bytes(self.read(va, 8), "little")

    def write_u64(self, va: int, value: int) -> None:
        self.write(va, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def read_u32(self, va: int) -> int:
        return int.from_bytes(self.read(va, 4), "little")

    def write_u32(self, va: int, value: int) -> None:
        self.write(va, (value & (2 ** 32 - 1)).to_bytes(4, "little"))
