"""Virtual address space: regions, the unified page table, remote backing.

The compatibility layer of §5 exposes two kinds of mappings: local-only
memory and disaggregated (``MAP_DDC``) memory whose pages migrate to the
memory node. A :class:`Region` records which kind a VA range is; the kernel
consults it on first-touch faults.

Remote backing slots are allocated lazily: a DDC page gets a remote page
frame the first time the kernel needs one (first eviction), and keeps it for
the lifetime of the mapping so REMOTE PTEs can simply carry the remote pfn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import InvalidAddressError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE, align_up
from repro.mem.page_table import PageTable
from repro.mem.remote import MemoryNode


@dataclass(frozen=True)
class Region:
    """A contiguous mapped VA range."""

    base: int
    size: int
    ddc: bool
    name: str
    #: mmap PROT_WRITE; read-only mappings trap stores (SIGSEGV model).
    writable: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, va: int) -> bool:
        return self.base <= va < self.end


class AddressSpace:
    """The single address space shared by the app and the LibOS."""

    #: Mappings start well above zero so that null-ish pointers fault.
    _MMAP_BASE = 0x0000_1000_0000

    def __init__(self, memory_node: Optional[MemoryNode]) -> None:
        self.page_table = PageTable()
        self._memory_node = memory_node
        self._regions: List[Region] = []
        self._next_base = self._MMAP_BASE
        self._remote_slot: Dict[int, int] = {}

    # -- region management --------------------------------------------------

    def mmap(self, size: int, ddc: bool = True, name: str = "anon",
             writable: bool = True) -> Region:
        """Map ``size`` bytes (page-rounded); returns the new region."""
        if size <= 0:
            raise ValueError("mmap size must be positive")
        if ddc and self._memory_node is None:
            raise ValueError("MAP_DDC requires a memory node")
        size = align_up(size)
        region = Region(self._next_base, size, ddc, name, writable)
        # Leave an unmapped guard page between regions.
        self._next_base = region.end + PAGE_SIZE
        self._regions.append(region)
        return region

    def munmap(self, region: Region) -> None:
        """Remove ``region`` from the address space.

        The caller (kernel) is responsible for having released its frames,
        PTEs and remote slots first.
        """
        self._regions.remove(region)

    def region_for(self, va: int) -> Region:
        """The region containing ``va``; raises on unmapped addresses."""
        for region in self._regions:
            if region.contains(va):
                return region
        raise InvalidAddressError(f"address {va:#x} is not mapped")

    def regions(self) -> List[Region]:
        return list(self._regions)

    # -- remote backing -------------------------------------------------------

    def remote_pfn_for(self, vpn: int) -> int:
        """Remote page frame backing ``vpn``, allocated on first use."""
        slot = self._remote_slot.get(vpn)
        if slot is None:
            if self._memory_node is None:
                raise InvalidAddressError(
                    f"page {vpn:#x} has no remote backing (no memory node)")
            slot = self._memory_node.alloc_slot()
            self._remote_slot[vpn] = slot
        return slot

    def remote_offset_for(self, vpn: int) -> int:
        """Byte offset of ``vpn``'s backing within the remote region."""
        return self._memory_node.slot_offset(self.remote_pfn_for(vpn))

    def has_remote_backing(self, vpn: int) -> bool:
        return vpn in self._remote_slot

    def release_remote(self, vpn: int) -> None:
        """Free the remote slot backing ``vpn`` (on munmap/free)."""
        slot = self._remote_slot.pop(vpn, None)
        if slot is not None and self._memory_node is not None:
            self._memory_node.free_slot(slot)

    # -- conveniences -----------------------------------------------------------

    @staticmethod
    def vpn(va: int) -> int:
        return va >> PAGE_SHIFT
