"""Online repair: degraded-write journaling, resilver, and scrub.

The cluster backends in :mod:`repro.mem.cluster` mask single-node
failures (replica failover, XOR reconstruction), but §5.1-style fault
tolerance is only *correct* if a failed node's eventual rejoin is
handled: the node comes back with its pre-crash contents, and every
slot written while it was down is silently stale. Rack-scale
disaggregation treats node churn and rebuild as steady-state, so this
module makes rejoin a first-class, correct-by-construction operation:

* :class:`RepairJournal` — while a member is down (or stale), the
  backend records every dirtied slot range here at page granularity.
  The read path consults the journal, so a stale page is *never*
  served from a rejoined member, even if ``MemoryNode.recover()`` is
  called directly.
* :class:`RepairManager` — drives two paced simulated-clock timers
  against one backend (in the style of ``PageManager._tick``):

  - the **resilver** replays journaled pages onto a rejoined member
    from the surviving replica (or by XOR reconstruction), charging
    wire time on its own :class:`~repro.net.qp.QueuePair` so rebuild
    bandwidth shows up in the timeline next to foreground traffic;
    when a member's journal drains it is promoted back to full
    service;
  - the **scrubber** periodically walks stripe rows / replica pairs
    verifying cross-replica agreement and the parity invariant
    (catching at-rest divergence the way the reliable transport's CRC
    catches wire corruption), repairing mismatches from the
    authoritative copy or quarantining them through the journal when
    the repair write fails.

* :class:`RepairPolicy` — the knobs (resilver period/batch, scrub
  period/batch), accepted everywhere as a spec string
  (``"resilver_period=200,resilver_batch=8,scrub_period=5000"``) via
  :func:`coerce_repair_policy` — the same pattern as ``net_faults``.

A backend used without a manager still rejoins correctly:
``backend.rejoin(node)`` falls back to an immediate synchronous
resilver (zero simulated time), and the journal protects reads in the
window where neither has run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Union

from repro.common.clock import Clock
from repro.common.specparse import parse_kv_spec
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.net.latency import LatencyModel
from repro.net.qp import NetStats, QueuePair
from repro.obs.tracer import NULL_TRACER


class RepairJournal:
    """Per-member record of slot ranges dirtied while the member was
    unavailable or stale, kept at page granularity.

    Members are backend-defined keys (replica index, data-node index,
    the parity node). A page is *dirty* for a member when the member's
    physical contents may differ from the cluster's logical contents —
    reads must not be served from it, and the resilver must rewrite it
    before the member returns to full service.
    """

    def __init__(self) -> None:
        self._dirty: Dict[Any, Set[int]] = {}

    def record_range(self, member: Any, offset: int, size: int) -> None:
        """Mark every page overlapping ``[offset, offset + size)`` dirty."""
        if size <= 0:
            return
        first = offset >> PAGE_SHIFT
        last = (offset + size - 1) >> PAGE_SHIFT
        self._dirty.setdefault(member, set()).update(range(first, last + 1))

    def clear_covered(self, member: Any, offset: int, size: int) -> None:
        """Drop pages *fully* covered by ``[offset, offset + size)`` — a
        write that refreshed a whole page made that page clean again; a
        partial write leaves the rest of the page stale, so it stays."""
        pages = self._dirty.get(member)
        if not pages or size < PAGE_SIZE:
            return
        first_full = -(-offset // PAGE_SIZE)
        end_full = (offset + size) >> PAGE_SHIFT
        for page in range(first_full, end_full):
            pages.discard(page)
        if not pages:
            del self._dirty[member]

    def clear_page(self, member: Any, page: int) -> None:
        pages = self._dirty.get(member)
        if pages is None:
            return
        pages.discard(page)
        if not pages:
            del self._dirty[member]

    def clear_member(self, member: Any) -> None:
        self._dirty.pop(member, None)

    def is_dirty(self, member: Any, offset: int, size: int) -> bool:
        """Does any page overlapping ``[offset, offset + size)`` hold
        potentially stale bytes on ``member``?"""
        pages = self._dirty.get(member)
        if not pages or size <= 0:
            return False
        first = offset >> PAGE_SHIFT
        last = (offset + size - 1) >> PAGE_SHIFT
        return any(page in pages for page in range(first, last + 1))

    def dirty_pages(self, member: Any) -> List[int]:
        """The member's dirty pages, sorted (the resilver's work list)."""
        return sorted(self._dirty.get(member, ()))

    def dirty_count(self, member: Any) -> int:
        return len(self._dirty.get(member, ()))

    def total_dirty(self) -> int:
        """Dirty pages across every member — the backend's staleness."""
        return sum(len(pages) for pages in self._dirty.values())

    def members(self) -> List[Any]:
        """Members with at least one dirty page, sorted by repr for
        deterministic iteration."""
        return sorted(self._dirty, key=repr)

    def __repr__(self) -> str:
        inner = ", ".join(f"{member}:{len(pages)}"
                          for member, pages in sorted(self._dirty.items(),
                                                      key=lambda kv: repr(kv[0])))
        return f"RepairJournal({inner})"


@dataclass
class ScrubReport:
    """What one scrubbed stripe row / replica row turned up."""

    #: Member copies actually compared (0 = row unverifiable right now).
    members_checked: int = 0
    #: Copies that disagreed with the authoritative content.
    mismatches: int = 0
    #: Divergent copies rewritten from the authoritative content.
    repaired: int = 0
    #: Divergent copies that could not be repaired (the write failed);
    #: journaled so reads avoid them until a later resilver succeeds.
    quarantined: int = 0
    #: Wire bytes a real scrubber would have read for this row.
    bytes_read: int = 0

    def merge(self, other: "ScrubReport") -> None:
        self.members_checked += other.members_checked
        self.mismatches += other.mismatches
        self.repaired += other.repaired
        self.quarantined += other.quarantined
        self.bytes_read += other.bytes_read


@dataclass
class RepairPolicy:
    """Pacing knobs for the resilver and the scrubber."""

    #: Simulated µs between resilver batches.
    resilver_period_us: float = 200.0
    #: Pages replayed per resilver tick (across all syncing members).
    resilver_batch_pages: int = 8
    #: Simulated µs between scrub batches; 0 disables the scrubber.
    scrub_period_us: float = 0.0
    #: Stripe/replica rows verified per scrub tick.
    scrub_batch_pages: int = 16

    #: Spec-string keys (``"resilver_period=200,scrub_period=5000"``).
    _SPEC_KEYS = {
        "resilver_period": ("resilver_period_us", float),
        "resilver_batch": ("resilver_batch_pages", int),
        "scrub_period": ("scrub_period_us", float),
        "scrub_batch": ("scrub_batch_pages", int),
    }

    def validate(self) -> "RepairPolicy":
        if self.resilver_period_us <= 0:
            raise ValueError("resilver period must be positive")
        if self.resilver_batch_pages <= 0:
            raise ValueError("resilver batch must be positive")
        if self.scrub_period_us < 0:
            raise ValueError("scrub period cannot be negative")
        if self.scrub_batch_pages <= 0:
            raise ValueError("scrub batch must be positive")
        return self

    @classmethod
    def from_spec(cls, spec: str) -> "RepairPolicy":
        """Parse ``"resilver_period=200,resilver_batch=8,scrub_period=5000,
        scrub_batch=16"``; every key optional, ``""`` means defaults.
        Grammar shared with every other spec knob
        (:func:`repro.common.specparse.parse_kv_spec`)."""
        casts = {key: cast for key, (_attr, cast) in cls._SPEC_KEYS.items()}
        policy = cls()
        for key, value in parse_kv_spec(spec, casts,
                                        what="repair spec").items():
            setattr(policy, cls._SPEC_KEYS[key][0], value)
        return policy.validate()


def coerce_repair_policy(
        value: Union[None, str, Dict[str, Any], RepairPolicy],
) -> Optional[RepairPolicy]:
    """Accept ``None``, a spec string, a kwargs dict, or a ready policy —
    the same coercion convention as ``net_faults``/``net_retry``."""
    if value is None or isinstance(value, RepairPolicy):
        return value.validate() if isinstance(value, RepairPolicy) else None
    if isinstance(value, str):
        return RepairPolicy.from_spec(value)
    if isinstance(value, dict):
        return RepairPolicy(**value).validate()
    raise TypeError(f"cannot coerce {value!r} to a RepairPolicy")


class _RepairSink:
    """Placeholder remote for the repair QP: the manager moves bytes
    through the backend itself and only charges wire occupancy."""


class RepairManager:
    """Background resilver + scrubber for one cluster backend.

    Attaches itself to the backend (``backend.repair``); the backend
    calls :meth:`notify_rejoin` from ``rejoin()`` and the manager paces
    the rebuild on the shared simulated clock. All repair traffic is
    charged on the manager's own queue pair (``self.qp``) so rebuild
    bandwidth appears in the timeline — and in ``net`` trace spans —
    alongside foreground traffic. Counters land in the backend's
    metrics registry under ``repair.*`` and ``scrub.*``.
    """

    def __init__(self, backend, clock: Clock,
                 policy: Union[None, str, Dict[str, Any], RepairPolicy] = None,
                 tracer=NULL_TRACER,
                 model: Optional[LatencyModel] = None) -> None:
        self.backend = backend
        self.clock = clock
        self.policy = (coerce_repair_policy(policy)
                       or RepairPolicy()).validate()
        self.tracer = tracer
        self.net = NetStats()
        self.qp = QueuePair(f"repair@{type(backend).__name__}", clock,
                            model or LatencyModel(), _RepairSink(),
                            self.net, tracer=tracer)
        self._registry = backend.registry
        # Pre-create every repair/scrub counter so snapshots taken
        # before the first tick already carry the full (zeroed) key set.
        for name in ("repair.pages_resilvered", "repair.bytes_resilvered",
                     "repair.source_stalls", "repair.nodes_promoted",
                     "scrub.pages_checked", "scrub.mismatches",
                     "scrub.repaired", "scrub.quarantined", "scrub.passes"):
            self._registry.counter(name)
        self._resilver_armed = False
        self._scrub_on = False
        self._scrub_armed = False
        self._scrub_cursor = 0
        self._sync_started: Dict[Any, float] = {}
        backend.attach_repair(self)
        if self.policy.scrub_period_us > 0:
            self.start_scrub()

    # -- resilver ------------------------------------------------------------

    def notify_rejoin(self, member: Any) -> None:
        """A member entered the syncing state: arm the resilver timer."""
        self._sync_started.setdefault(member, self.clock.now)
        if not self._resilver_armed:
            self._resilver_armed = True
            self.clock.call_after(self.policy.resilver_period_us,
                                  self._resilver_tick)

    def _resilver_tick(self) -> None:
        self._resilver_armed = False
        backend = self.backend
        registry = self._registry
        budget = self.policy.resilver_batch_pages
        for member in list(backend.syncing_members()):
            while budget > 0:
                pages = backend.journal.dirty_pages(member)
                if not pages:
                    break
                moved = backend.resilver_page(member, pages[0])
                if moved < 0:
                    # No clean source right now (e.g. the only survivor is
                    # down too); leave the page journaled and retry on the
                    # next tick.
                    registry.add("repair.source_stalls")
                    break
                self.qp.charge_attempt(moved, "read")
                self.qp.charge_attempt(PAGE_SIZE, "write")
                registry.add("repair.pages_resilvered")
                registry.add("repair.bytes_resilvered", PAGE_SIZE)
                budget -= 1
            if backend.journal.dirty_count(member) == 0:
                backend.promote(member)
                start = self._sync_started.pop(member, self.clock.now)
                if self.tracer.enabled:
                    self.tracer.complete("repair.resilver", "repair", start,
                                         self.clock.now - start,
                                         {"member": str(member)})
            if budget == 0:
                break
        if backend.syncing_members():
            self._resilver_armed = True
            self.clock.call_after(self.policy.resilver_period_us,
                                  self._resilver_tick)

    # -- scrub ---------------------------------------------------------------

    def start_scrub(self) -> None:
        """Arm the periodic scrubber (idempotent)."""
        if self.policy.scrub_period_us <= 0:
            raise ValueError("scrub_period_us must be positive to scrub")
        self._scrub_on = True
        if not self._scrub_armed:
            self._scrub_armed = True
            self.clock.call_after(self.policy.scrub_period_us,
                                  self._scrub_tick)

    def stop_scrub(self) -> None:
        """Let the scrub timer lapse after its current period."""
        self._scrub_on = False

    def _scrub_tick(self) -> None:
        self._scrub_armed = False
        if not self._scrub_on:
            return
        extent = self.backend.scrub_extent
        if extent > 0:
            registry = self._registry
            for _ in range(min(self.policy.scrub_batch_pages, extent)):
                row = self._scrub_cursor % extent
                report = self.backend.scrub_page(row)
                if report.members_checked:
                    registry.add("scrub.pages_checked",
                                 report.members_checked)
                if report.mismatches:
                    registry.add("scrub.mismatches", report.mismatches)
                    if self.tracer.enabled:
                        self.tracer.instant("scrub.mismatch", "repair",
                                            self.clock.now, {"row": row})
                if report.repaired:
                    registry.add("scrub.repaired", report.repaired)
                if report.quarantined:
                    registry.add("scrub.quarantined", report.quarantined)
                if report.bytes_read:
                    self.qp.charge_attempt(report.bytes_read, "read")
                self._scrub_cursor += 1
                if self._scrub_cursor % extent == 0:
                    registry.add("scrub.passes")
        self._scrub_armed = True
        self.clock.call_after(self.policy.scrub_period_us, self._scrub_tick)


__all__ = [
    "RepairJournal",
    "RepairManager",
    "RepairPolicy",
    "ScrubReport",
    "coerce_repair_policy",
]
