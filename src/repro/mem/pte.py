"""Page-table-entry encoding — DiLOS' unified page table tags (§4.1).

A PTE is a plain 64-bit integer in the hardware (x86-64) format. DiLOS adds
no side structures: all disaggregation state is encoded *in the PTE itself*,
distinguished by the three least significant bits (present, write, user),
exactly as Figure 4 describes:

====================  =======  =====  ====  ==========================
tag                   present  write  user  payload (bits 12+)
====================  =======  =====  ====  ==========================
``LOCAL``             1        x      x     local frame number
``REMOTE``            0        1      0     remote page frame number
``FETCHING``          0        0      1     fetch token
``ACTION``            0        1      1     action datum (guide-defined)
``INVALID``           0        0      0     —  (unmapped)
====================  =======  =====  ====  ==========================

Accessed (bit 5) and dirty (bit 6) follow x86. The hit tracker (§4.3) scans
accessed bits; the cleaner (§4.4) scans dirty bits.
"""

from __future__ import annotations

import enum

PTE_PRESENT = 1 << 0
PTE_WRITE = 1 << 1
PTE_USER = 1 << 2
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
_PAYLOAD_SHIFT = 12
_TAG_MASK = PTE_PRESENT | PTE_WRITE | PTE_USER


class Tag(enum.Enum):
    """The DiLOS interpretation of a PTE's low bits."""

    INVALID = 0
    LOCAL = 1
    REMOTE = 2
    FETCHING = 3
    ACTION = 4


def classify(pte: int) -> Tag:
    """Decode the DiLOS tag of a PTE."""
    if pte & PTE_PRESENT:
        return Tag.LOCAL
    low = pte & _TAG_MASK
    if low == PTE_WRITE:
        return Tag.REMOTE
    if low == PTE_USER:
        return Tag.FETCHING
    if low == (PTE_WRITE | PTE_USER):
        return Tag.ACTION
    if pte == 0:
        return Tag.INVALID
    # Payload bits without a recognizable tag indicate corruption.
    raise ValueError(f"malformed PTE {pte:#x}")


def make_local(frame: int, writable: bool = True,
               accessed: bool = False, dirty: bool = False) -> int:
    """A present PTE pointing at local ``frame``."""
    pte = (frame << _PAYLOAD_SHIFT) | PTE_PRESENT | PTE_USER
    if writable:
        pte |= PTE_WRITE
    if accessed:
        pte |= PTE_ACCESSED
    if dirty:
        pte |= PTE_DIRTY
    return pte


def make_remote(remote_pfn: int) -> int:
    """A non-present PTE recording the page's remote frame number."""
    return (remote_pfn << _PAYLOAD_SHIFT) | PTE_WRITE


def make_fetching(token: int) -> int:
    """A non-present PTE marking an in-flight fetch (token names it)."""
    return (token << _PAYLOAD_SHIFT) | PTE_USER


def make_action(action_id: int) -> int:
    """A non-present PTE carrying guide-defined action data (§4.4)."""
    return (action_id << _PAYLOAD_SHIFT) | PTE_WRITE | PTE_USER


def payload(pte: int) -> int:
    """The frame number / remote pfn / token / action id of a PTE."""
    return pte >> _PAYLOAD_SHIFT


def frame_of(pte: int) -> int:
    """Local frame number of a LOCAL PTE."""
    if not pte & PTE_PRESENT:
        raise ValueError(f"PTE {pte:#x} is not present")
    return pte >> _PAYLOAD_SHIFT


def is_present(pte: int) -> bool:
    """True when the PTE maps a local frame (present bit set)."""
    return bool(pte & PTE_PRESENT)


def is_accessed(pte: int) -> bool:
    """True when the hardware accessed bit is set."""
    return bool(pte & PTE_ACCESSED)


def is_dirty(pte: int) -> bool:
    """True when the hardware dirty bit is set."""
    return bool(pte & PTE_DIRTY)


def set_accessed(pte: int) -> int:
    """The PTE with its accessed bit set."""
    return pte | PTE_ACCESSED


def clear_accessed(pte: int) -> int:
    """The PTE with its accessed bit cleared (clock-hand rotation)."""
    return pte & ~PTE_ACCESSED


def set_dirty(pte: int) -> int:
    """The PTE with its dirty bit set (first write through a clean map)."""
    return pte | PTE_DIRTY


def clear_dirty(pte: int) -> int:
    """The PTE with its dirty bit cleared (after a write-back)."""
    return pte & ~PTE_DIRTY
