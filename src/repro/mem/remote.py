"""The memory node: a big registered region served by the RNIC.

The paper's memory node is a thin server — after setup, the RNIC services
all one-sided reads and writes without host involvement (§5). Accordingly
this model is a flat byte store addressed by offset; allocation of remote
page frames (by the computing node's kernel) is a simple bump/free-list
allocator over page-sized slots.

The 2 MiB huge-page optimization of §5 affects only the remote NIC's page
table walk cost, which is folded into the fabric base latency.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE


class NodeFailedError(Exception):
    """Raised when a one-sided operation hits a failed memory node."""


class MemoryNode:
    """Remote memory pool with page-slot allocation and raw byte access."""

    __slots__ = ("capacity", "name", "_store", "_free_slots", "_slot_free",
                 "total_slots", "_failed", "_failure_listeners")

    def __init__(self, capacity_bytes: int, name: str = "memnode") -> None:
        if capacity_bytes <= 0 or capacity_bytes % PAGE_SIZE:
            raise ValueError("capacity must be a positive multiple of the page size")
        self.capacity = capacity_bytes
        self.name = name
        # numpy zeros is calloc-backed: a multi-GiB registered region
        # costs nothing until pages are actually written, where a
        # bytearray would memset the whole capacity at boot.
        self._store = np.zeros(capacity_bytes, dtype=np.uint8)
        total_slots = capacity_bytes >> PAGE_SHIFT
        self._free_slots: List[int] = list(range(total_slots - 1, -1, -1))
        # One byte per slot (1 = free) so free_slot can reject double
        # frees in O(1) without a Python set over 100k+ slot ids.
        self._slot_free = bytearray(b"\x01" * total_slots)
        self.total_slots = total_slots
        self._failed = False
        self._failure_listeners: List[Callable[[], None]] = []

    # -- failure injection (for fault-tolerance experiments) ---------------

    def add_failure_listener(self, listener: Callable[[], None]) -> None:
        """Subscribe to node death. Queue pairs register here so that a
        crash with verbs in flight is observed by the issuer (the
        response is lost -> timeout/error), never silently absorbed."""
        self._failure_listeners.append(listener)

    def fail(self) -> None:
        """Simulate the node crashing: all subsequent IO raises, and every
        in-flight operation's response is lost (listeners are told)."""
        already_down = self._failed
        self._failed = True
        if not already_down:
            for listener in self._failure_listeners:
                listener()

    def recover(self) -> None:
        """Bring the node back (its memory content is as it was)."""
        self._failed = False

    @property
    def failed(self) -> bool:
        return self._failed

    def _check_alive(self) -> None:
        if self._failed:
            raise NodeFailedError(f"memory node {self.name} is down")

    # -- page-slot allocation (control path, done once per page) ----------

    @property
    def free_slots(self) -> int:
        return len(self._free_slots)

    def alloc_slot(self) -> int:
        """Reserve one remote page frame; returns its remote pfn."""
        if not self._free_slots:
            raise OutOfMemoryError("memory node exhausted")
        slot = self._free_slots.pop()
        self._slot_free[slot] = 0
        return slot

    def free_slot(self, remote_pfn: int) -> None:
        if not 0 <= remote_pfn < self.total_slots:
            raise ValueError(f"remote pfn {remote_pfn} out of range")
        if self._slot_free[remote_pfn]:
            # A double free (or a free of a never-allocated slot) would
            # put the pfn on the free list twice and hand the same remote
            # frame to two pages.
            raise ValueError(
                f"remote pfn {remote_pfn} is not allocated (double free?)")
        self._slot_free[remote_pfn] = 1
        self._free_slots.append(remote_pfn)

    # An instance method so that clustered backends (repro.mem.cluster)
    # can define their own slot layouts behind the same interface.
    def slot_offset(self, remote_pfn: int) -> int:
        """Byte offset of a remote page frame within the registered region."""
        return remote_pfn << PAGE_SHIFT

    # -- one-sided data path (what the RNIC does) --------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        self._check_alive()
        if offset < 0 or offset + size > self.capacity:
            raise ValueError(f"remote read [{offset}, {offset + size}) out of bounds")
        return self._store[offset:offset + size].tobytes()

    def write_bytes(self, offset: int, data: bytes) -> None:
        self._check_alive()
        if offset < 0 or offset + len(data) > self.capacity:
            raise ValueError(f"remote write [{offset}, {offset + len(data)}) out of bounds")
        self._store[offset:offset + len(data)] = np.frombuffer(data, np.uint8)
