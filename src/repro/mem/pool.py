"""The global pooled allocator: placement-aware slots over memory nodes.

The cluster backends in :mod:`repro.mem.cluster` bake placement into
their address map — :class:`~repro.mem.cluster.ShardedMemory` stripes
page ``g`` onto node ``g % n`` forever. A rack-scale pool (DRackSim,
CXL-ClusterSim) needs the opposite: **where** a page lands is a policy
decision made per allocation, because placement decides which fabric
links the page's traffic crosses and how much capacity ends up stranded
on nodes nobody's workload can reach cheaply.

:class:`PooledMemory` therefore keeps a *contiguous* per-node address
map (global slot ``node * node_slots + local``, so
:meth:`PooledMemory.node_of` resolves any offset to its owning node in
O(1) — the fabric's routing function) and delegates the choice of node
to a pluggable :class:`PlacementPolicy` from the **placement registry**:

* ``locality`` — the requester's home node first; spill to the nearest
  node with space (counted in ``pool.spills``). Minimal fabric
  crossings, maximal stranding under uneven demand.
* ``load`` — the node with the most free slots. Balanced occupancy,
  but most traffic crosses the (possibly oversubscribed) ToR.
* ``pack`` — lowest-index node with space (first-fit). Minimizes the
  number of partially-used nodes — the fragmentation-aware policy —
  at the price of concentrating load on the packed nodes' links.
* ``interleave`` — round-robin striping, the ShardedMemory layout as a
  policy.

Compute nodes allocate through per-tenant :class:`PoolClient` views
(``pool.client(name, home=i)``), which carry the requester's identity —
the standard backend surface (``alloc_slot``/``read_bytes``/...) has no
argument to express it. Placement-outcome metrics land in canonical
``pool.*`` names: ``pool.alloc``/``pool.free``/``pool.spills`` counters
plus ``pool.stranded_slots`` (free capacity sitting above the
fullest node's free level — space uneven placement has made cheaply
unreachable) and ``pool.frag_imbalance`` (max-min node occupancy
spread) gauges.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem.cluster import _check_nodes, _ClusterBackend
from repro.mem.remote import MemoryNode


class PlacementPolicy:
    """Chooses the memory node for one allocation.

    Subclasses implement :meth:`choose`; ``prefers_home`` marks
    policies whose first choice is the requester's home node, so the
    pool knows when a deviation is a *spill* worth counting.
    """

    #: Registry name (set by :func:`register_placement`).
    name = "?"
    #: Does this policy treat ``home`` as the preferred node?
    prefers_home = False

    def choose(self, pool: "PooledMemory", home: int) -> int:
        """Index of the node to allocate on (it must have free space).

        Raises :class:`~repro.common.errors.OutOfMemoryError` when no
        node has a free slot.
        """
        raise NotImplementedError


PlacementFactory = Callable[[], PlacementPolicy]

_PLACEMENTS: Dict[str, PlacementFactory] = {}


def register_placement(
        name: str) -> Callable[[PlacementFactory], PlacementFactory]:
    """Register a placement-policy factory under ``name`` (decorator)."""
    def deco(factory: PlacementFactory) -> PlacementFactory:
        if name in _PLACEMENTS:
            raise ValueError(f"placement policy {name!r} already registered")
        _PLACEMENTS[name] = factory
        return factory
    return deco


def placement_kinds() -> Tuple[str, ...]:
    """All registered placement policies, in registration order."""
    return tuple(_PLACEMENTS)


def make_placement(
        policy: Union[str, PlacementPolicy, None]) -> PlacementPolicy:
    """Name/ready-policy/None (= ``"load"``) -> :class:`PlacementPolicy`."""
    if policy is None:
        policy = "load"
    if isinstance(policy, PlacementPolicy):
        return policy
    factory = _PLACEMENTS.get(policy)
    if factory is None:
        raise ValueError(f"unknown placement policy {policy!r}; "
                         f"pick from {placement_kinds()}")
    built = factory()
    built.name = policy
    return built


def _first_free(pool: "PooledMemory", order) -> int:
    for index in order:
        if pool.nodes[index].free_slots > 0:
            return index
    raise OutOfMemoryError("memory pool exhausted")


@register_placement("locality")
class LocalityPlacement(PlacementPolicy):
    """Home node first; spill to the nearest node with space."""

    prefers_home = True

    def choose(self, pool: "PooledMemory", home: int) -> int:
        order = sorted(range(len(pool.nodes)),
                       key=lambda i: (abs(i - home), i))
        return _first_free(pool, order)


@register_placement("load")
class LoadPlacement(PlacementPolicy):
    """The node with the most free slots (ties -> lowest index)."""

    def choose(self, pool: "PooledMemory", home: int) -> int:
        best = max(range(len(pool.nodes)),
                   key=lambda i: (pool.nodes[i].free_slots, -i))
        if pool.nodes[best].free_slots == 0:
            raise OutOfMemoryError("memory pool exhausted")
        return best


@register_placement("pack")
class PackPlacement(PlacementPolicy):
    """First-fit packing: the lowest-index node with space.

    The fragmentation-aware policy — it keeps the pool's free capacity
    contiguous on the tail nodes (fewest partially-used nodes), so
    whole nodes stay empty and reassignable.
    """

    def choose(self, pool: "PooledMemory", home: int) -> int:
        return _first_free(pool, range(len(pool.nodes)))


@register_placement("interleave")
class InterleavePlacement(PlacementPolicy):
    """Round-robin striping across nodes (the ShardedMemory layout)."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, pool: "PooledMemory", home: int) -> int:
        n = len(pool.nodes)
        order = [(self._next + i) % n for i in range(n)]
        chosen = _first_free(pool, order)
        self._next = (chosen + 1) % n
        return chosen


class PoolClient:
    """One compute node's (tenant's) view of a :class:`PooledMemory`.

    Implements the standard backend surface, so a kernel boots on it
    unchanged; allocations carry this client's home node into the
    placement policy, and the data path goes straight to the pool (the
    fabric, not this facade, charges link traversal).
    """

    __slots__ = ("pool", "name", "home")

    def __init__(self, pool: "PooledMemory", name: str, home: int) -> None:
        self.pool = pool
        self.name = name
        self.home = home

    # -- slots (placement-aware) -----------------------------------------

    def alloc_slot(self) -> int:
        return self.pool.alloc_for(self.home, owner=self.name)

    def free_slot(self, slot: int) -> None:
        self.pool.free_slot(slot)

    def slot_offset(self, slot: int) -> int:
        return self.pool.slot_offset(slot)

    # -- data path / capacity (pool-wide) --------------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        return self.pool.read_bytes(offset, size)

    def write_bytes(self, offset: int, data: bytes) -> None:
        self.pool.write_bytes(offset, data)

    def node_of(self, offset: int) -> int:
        return self.pool.node_of(offset)

    @property
    def capacity(self) -> int:
        return self.pool.capacity

    @property
    def total_slots(self) -> int:
        return self.pool.total_slots

    @property
    def free_slots(self) -> int:
        return self.pool.free_slots

    def __repr__(self) -> str:
        return f"PoolClient({self.name!r}, home=m{self.home})"


class PooledMemory(_ClusterBackend):
    """A global slot pool over equal memory nodes, placement decided
    per allocation by a :class:`PlacementPolicy`.

    Global slot ``node * node_slots + local`` keeps each node's pages
    contiguous in the global offset space, so :meth:`node_of` — the
    fabric's routing function — is a division, and placement (not an
    address hash) decides which links a page's traffic crosses.
    """

    def __init__(self, nodes: Sequence[MemoryNode],
                 policy: Union[str, PlacementPolicy, None] = "load") -> None:
        _check_nodes(nodes, 1)
        self.nodes: List[MemoryNode] = list(nodes)
        self.policy = make_placement(policy)
        self.node_slots = self.nodes[0].total_slots
        self._node_bytes = self.node_slots << PAGE_SHIFT
        self._clients: Dict[str, PoolClient] = {}
        # Slot ownership: which client (by name) holds each live slot, so
        # a departing tenant's slots can all be returned. Anonymous
        # allocations (owner=None) are untracked, as before.
        self._slot_owner: Dict[int, str] = {}
        self._owned: Dict[str, Set[int]] = {}
        super().__init__()
        self.registry.counter("pool.alloc")
        self.registry.counter("pool.free")
        self.registry.counter("pool.spills")
        self.registry.gauge("pool.stranded_slots",
                            lambda: float(self.stranded_slots))
        self.registry.gauge("pool.frag_imbalance",
                            lambda: self.frag_imbalance)
        self.registry.gauge("pool.clients",
                            lambda: float(len(self._clients)))
        for index, node in enumerate(self.nodes):
            self.registry.gauge(f"pool.n{index}.free_slots",
                                lambda n=node: float(n.free_slots))

    def _member_nodes(self) -> List[MemoryNode]:
        return self.nodes

    # -- capacity ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.nodes)

    @property
    def free_slots(self) -> int:
        return sum(node.free_slots for node in self.nodes)

    # -- placement-outcome metrics ----------------------------------------

    @property
    def stranded_slots(self) -> int:
        """Free slots sitting above the fullest node's free level.

        0 when free space is spread evenly; maximal when one node is
        exhausted while others idle — capacity that exists but that the
        policy has made reachable only by spilling across the fabric.
        """
        free = [node.free_slots for node in self.nodes]
        lowest = min(free)
        return sum(f - lowest for f in free)

    @property
    def frag_imbalance(self) -> float:
        """Spread of per-node occupancy: max - min used fraction."""
        used = [1.0 - node.free_slots / node.total_slots
                for node in self.nodes]
        return max(used) - min(used)

    # -- clients ----------------------------------------------------------

    def client(self, name: str, home: int = 0) -> PoolClient:
        """The (cached) placement-aware view for requester ``name``
        homed on node ``home``."""
        if not 0 <= home < len(self.nodes):
            raise ValueError(f"no memory node {home}")
        existing = self._clients.get(name)
        if existing is not None:
            if existing.home != home:
                raise ValueError(
                    f"client {name!r} already registered with home "
                    f"m{existing.home}")
            return existing
        made = PoolClient(self, name, home)
        self._clients[name] = made
        return made

    def release_client(self, name: str) -> int:
        """Tear down a tenant: free every slot it still owns.

        A departed tenant that never freed its pages would otherwise
        strand capacity forever (and ``pool.stranded_slots`` drifts
        upward across tenant churn, since the leaked slots concentrate
        on whichever nodes the policy favored). Removes the cached
        :class:`PoolClient` and returns the number of slots reclaimed.
        Raises ``KeyError`` for an unknown client name.
        """
        client = self._clients.pop(name, None)
        owned = self._owned.pop(name, None)
        if client is None and owned is None:
            raise KeyError(f"no pool client {name!r}")
        freed = 0
        for global_slot in sorted(owned or ()):
            self._slot_owner.pop(global_slot, None)
            node_index, local = divmod(global_slot, self.node_slots)
            self.nodes[node_index].free_slot(local)
            self.registry.add("pool.free")
            freed += 1
        if freed:
            # Lazily registered: steady-state pools (no churn) keep their
            # historical metric key set, so pinned digests stay valid.
            self.registry.add("pool.reclaimed_slots", freed)
        return freed

    # -- slots -------------------------------------------------------------

    def alloc_for(self, home: int, owner: Optional[str] = None) -> int:
        """Allocate one page slot for a requester homed on ``home``.

        ``owner`` (a client name) records ownership so
        :meth:`release_client` can return the slot if the tenant departs
        without freeing it."""
        node_index = self.policy.choose(self, home)
        local = self.nodes[node_index].alloc_slot()
        self.registry.add("pool.alloc")
        if self.policy.prefers_home and node_index != home:
            self.registry.add("pool.spills")
        global_slot = node_index * self.node_slots + local
        if owner is not None:
            self._slot_owner[global_slot] = owner
            self._owned.setdefault(owner, set()).add(global_slot)
        return global_slot

    def alloc_slot(self) -> int:
        """Anonymous allocation (no client identity): home node 0."""
        return self.alloc_for(0)

    def free_slot(self, global_slot: int) -> None:
        node_index, local = divmod(global_slot, self.node_slots)
        self.nodes[node_index].free_slot(local)
        owner = self._slot_owner.pop(global_slot, None)
        if owner is not None:
            owned = self._owned.get(owner)
            if owned is not None:
                owned.discard(global_slot)
                if not owned:
                    del self._owned[owner]
        self.registry.add("pool.free")

    def slot_offset(self, global_slot: int) -> int:
        return global_slot << PAGE_SHIFT

    # -- routing -----------------------------------------------------------

    def node_of(self, offset: int) -> int:
        """The memory-node index owning ``offset`` (fabric routing)."""
        index = offset // self._node_bytes
        if not 0 <= index < len(self.nodes):
            raise ValueError(f"offset {offset:#x} outside the pool")
        return index

    def _route(self, offset: int) -> Tuple[MemoryNode, int]:
        index = self.node_of(offset)
        return self.nodes[index], offset - index * self._node_bytes

    # -- data path (splits page-crossing requests) --------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        parts = []
        while size > 0:
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)), size)
            parts.append(node.read_bytes(local, take))
            offset += take
            size -= take
        return b"".join(parts)

    def write_bytes(self, offset: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            node, local = self._route(offset)
            take = min(PAGE_SIZE - (offset & (PAGE_SIZE - 1)),
                       len(data) - cursor)
            node.write_bytes(local, data[cursor:cursor + take])
            offset += take
            cursor += take

    def resilver_page(self, member: int, page: int) -> int:
        return -1  # no redundant copy to rebuild from

    def __repr__(self) -> str:
        return (f"PooledMemory({len(self.nodes)} nodes, "
                f"policy={self.policy.name!r})")


__all__ = [
    "InterleavePlacement",
    "LoadPlacement",
    "LocalityPlacement",
    "PackPlacement",
    "PlacementPolicy",
    "PoolClient",
    "PooledMemory",
    "make_placement",
    "placement_kinds",
    "register_placement",
]
