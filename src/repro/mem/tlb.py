"""A software model of the translation lookaside buffer.

The TLB caches ``vpn -> (frame, writable, dirty_set)`` so repeated accesses
to a hot page skip the page-table walk. Anything that rewrites a PTE
(eviction, accessed-bit clearing by the hit tracker or the clock algorithm)
must invalidate the entry — the simulated equivalents of TLB shootdowns.

``dirty_set`` mirrors x86: the first *write* through a clean translation
must go back to the PTE to set the dirty bit; afterwards writes are pure
TLB hits.

This sits on the per-access hot path, so the class is ``__slots__``-ed and
exposes :meth:`lookup_run` — a coalesced lookup that services a run of
consecutive pure hits in one call with exactly the same hit accounting and
LRU motion as per-page :meth:`lookup` calls would produce. The entry store
is intentionally reachable as :attr:`entries` so
:class:`~repro.mem.vm.VirtualMemory` can inline the hit path; any code
that *mutates* it must go through the methods here to keep the hit/miss
counters honest.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class Tlb:
    """Fixed-capacity LRU translation cache."""

    __slots__ = ("_capacity", "entries", "hits", "misses")

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self._capacity = capacity
        self.entries: "OrderedDict[int, Tuple[int, bool, bool]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[Tuple[int, bool, bool]]:
        """Return ``(frame, writable, dirty_set)`` or None on a miss."""
        entry = self.entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self.entries.move_to_end(vpn)
        self.hits += 1
        return entry

    def lookup_run(self, vpn: int, count: int, is_write: bool = False) -> int:
        """Coalesced lookup: the length of the pure-hit run at ``vpn``.

        Walks up to ``count`` consecutive pages, counting a hit and
        refreshing LRU position for each pure hit — identical accounting
        to ``count`` individual :meth:`lookup` calls. Stops at the first
        page that is absent or (for writes) not yet writable-and-dirty;
        that page is *not* counted here — the caller's slow path performs
        the one real lookup for it, so totals match the per-page path.
        """
        entries = self.entries
        get = entries.get
        move = entries.move_to_end
        n = 0
        for v in range(vpn, vpn + count):
            entry = get(v)
            if entry is None or (is_write and not (entry[1] and entry[2])):
                break
            move(v)
            n += 1
        self.hits += n
        return n

    def fill(self, vpn: int, frame: int, writable: bool, dirty_set: bool) -> None:
        """Install a translation, evicting LRU if full."""
        self.entries[vpn] = (frame, writable, dirty_set)
        self.entries.move_to_end(vpn)
        if len(self.entries) > self._capacity:
            self.entries.popitem(last=False)

    def mark_dirty_set(self, vpn: int) -> None:
        """Record that the PTE dirty bit has been set for ``vpn``."""
        entry = self.entries.get(vpn)
        if entry is not None:
            frame, writable, _ = entry
            self.entries[vpn] = (frame, writable, True)

    def invalidate(self, vpn: int) -> None:
        """Shoot down a single translation."""
        self.entries.pop(vpn, None)

    def flush(self) -> None:
        """Drop every translation."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)
