"""A software model of the translation lookaside buffer.

The TLB caches ``vpn -> (frame, writable, dirty_set)`` so repeated accesses
to a hot page skip the page-table walk. Anything that rewrites a PTE
(eviction, accessed-bit clearing by the hit tracker or the clock algorithm)
must invalidate the entry — the simulated equivalents of TLB shootdowns.

``dirty_set`` mirrors x86: the first *write* through a clean translation
must go back to the PTE to set the dirty bit; afterwards writes are pure
TLB hits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class Tlb:
    """Fixed-capacity LRU translation cache."""

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[int, Tuple[int, bool, bool]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[Tuple[int, bool, bool]]:
        """Return ``(frame, writable, dirty_set)`` or None on a miss."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.hits += 1
        return entry

    def fill(self, vpn: int, frame: int, writable: bool, dirty_set: bool) -> None:
        """Install a translation, evicting LRU if full."""
        self._entries[vpn] = (frame, writable, dirty_set)
        self._entries.move_to_end(vpn)
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def mark_dirty_set(self, vpn: int) -> None:
        """Record that the PTE dirty bit has been set for ``vpn``."""
        entry = self._entries.get(vpn)
        if entry is not None:
            frame, writable, _ = entry
            self._entries[vpn] = (frame, writable, True)

    def invalidate(self, vpn: int) -> None:
        """Shoot down a single translation."""
        self._entries.pop(vpn, None)

    def flush(self) -> None:
        """Drop every translation."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
