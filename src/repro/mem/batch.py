"""Vectorized batch execution over the MMU (the batch access engine).

Applications touch far memory through per-page Python loops in
:meth:`repro.mem.vm.VirtualMemory.read` / ``write``; at hundreds of
nanoseconds of interpreter overhead per page those loops dominate wall
time once the simulated machinery around them has been optimized. This
module executes whole access runs instead: it splits a run into **spans
of consecutive TLB hits** and moves each span's bytes with a single numpy
fancy-index gather/scatter over the frame pool's shared 2-D view
(:meth:`repro.mem.frames.FramePool.as_ndarray`), falling back to the
scalar fault path (:meth:`VirtualMemory._translate`) only at span
boundaries.

Determinism contract (pinned by ``tests/test_batch_differential.py`` and
the golden masters):

* **Identical accounting.** Per page: one TLB hit count and one LRU
  refresh, in access order; accrued hits flush before every slow-path
  entry (exactly the scalar fast path's rule). Per element: one clock
  charge of ``size * cpu_copy_per_byte`` *after* the element's pages, and
  one ``bytes_read`` / ``bytes_written`` counter add — so timers fire at
  the same simulated instants, in the same states, as under per-element
  scalar calls.
* **Copy-before-fault.** A span's bytes are gathered before the next
  slow-path translation: a later fault in the same element may evict and
  reuse an earlier page's frame, so data movement never outlives the
  translation that produced it. Within a pure-hit span nothing advances
  the clock, so deferring the gather to the span boundary is safe.
* **No new metrics.** The engine adds no counters of its own; a batch run
  and the equivalent scalar run produce byte-identical metrics snapshots.

``REPRO_BATCH=0`` in the environment disables the engine; ported call
sites then take their original scalar loops. The differential suite uses
the same switch (via :func:`force`) to compare both paths in-process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.units import PAGE_SHIFT, PAGE_SIZE

_PAGE_MASK = PAGE_SIZE - 1

#: Engine kill switch (``REPRO_BATCH=0`` restores the scalar loops).
ENABLED = os.environ.get("REPRO_BATCH", "1") not in ("0", "false", "off")

#: Elements at or below this size run through the scalar per-page loop
#: even on the batch path: a span of one or two pages cannot amortize
#: numpy's per-call overhead, and both paths are accounting-identical, so
#: the choice is pure wall-clock strategy.
SPAN_THRESHOLD = 2 * PAGE_SIZE


def enabled() -> bool:
    """Whether ported call sites should take the batch path."""
    return ENABLED


@contextmanager
def force(on: bool):
    """Temporarily force the engine on or off (tests/differential runs)."""
    global ENABLED
    saved, ENABLED = ENABLED, on
    try:
        yield
    finally:
        ENABLED = saved


# -- span execution ----------------------------------------------------------


def read_span_into(vm, va: int, out) -> None:
    """Read ``out.nbytes`` bytes at ``va`` into uint8 array ``out``.

    ``out`` must be a writable C-contiguous 1-D uint8 numpy array; its
    length is the read size. Accounting is exactly one scalar
    ``vm.read(va, len(out))`` call.
    """
    size = len(out)
    if size == 0:
        return
    tlb = vm.tlb
    tlb_get = tlb.entries.get
    tlb_move = tlb.entries.move_to_end
    frames_nd = vm._frames.as_ndarray()
    translate = vm._translate
    pos = 0
    remaining = size
    hits = 0
    span_frames: List[int] = []
    span_pos = 0
    while remaining > 0:
        vpn = va >> PAGE_SHIFT
        offset = va & _PAGE_MASK
        length = PAGE_SIZE - offset
        if length > remaining:
            length = remaining
        entry = tlb_get(vpn)
        if entry is not None:
            tlb_move(vpn)
            hits += 1
            if length == PAGE_SIZE:  # implies offset == 0
                if not span_frames:
                    span_pos = pos
                span_frames.append(entry[0])
            else:
                if span_frames:
                    _gather(frames_nd, span_frames, out, span_pos)
                    span_frames = []
                out[pos:pos + length] = \
                    frames_nd[entry[0], offset:offset + length]
        else:
            # Span and hit flush before the slow path: the fault may evict
            # span frames, and accounting must be exact if it raises.
            if span_frames:
                _gather(frames_nd, span_frames, out, span_pos)
                span_frames = []
            tlb.hits += hits
            hits = 0
            frame = translate(vpn, False)
            out[pos:pos + length] = frames_nd[frame, offset:offset + length]
        pos += length
        va += length
        remaining -= length
    if span_frames:
        _gather(frames_nd, span_frames, out, span_pos)
    tlb.hits += hits
    vm._clock.advance(size * vm._copy_cost)
    vm.counters.add("bytes_read", size)


def write_span_from(vm, va: int, values) -> None:
    """Write uint8 array ``values`` at ``va``; one scalar ``vm.write``'s
    worth of accounting (first write through a clean translation walks the
    PTE via the slow path, exactly like the scalar loop)."""
    size = len(values)
    if size == 0:
        return
    tlb = vm.tlb
    tlb_get = tlb.entries.get
    tlb_move = tlb.entries.move_to_end
    frames_nd = vm._frames.as_ndarray()
    translate = vm._translate
    pos = 0
    remaining = size
    hits = 0
    span_frames: List[int] = []
    span_pos = 0
    while remaining > 0:
        vpn = va >> PAGE_SHIFT
        offset = va & _PAGE_MASK
        length = PAGE_SIZE - offset
        if length > remaining:
            length = remaining
        entry = tlb_get(vpn)
        if entry is not None and entry[1] and entry[2]:
            tlb_move(vpn)
            hits += 1
            if length == PAGE_SIZE:
                if not span_frames:
                    span_pos = pos
                span_frames.append(entry[0])
            else:
                if span_frames:
                    _scatter(frames_nd, span_frames, values, span_pos)
                    span_frames = []
                frames_nd[entry[0], offset:offset + length] = \
                    values[pos:pos + length]
        else:
            if span_frames:
                _scatter(frames_nd, span_frames, values, span_pos)
                span_frames = []
            tlb.hits += hits
            hits = 0
            frame = translate(vpn, True)
            frames_nd[frame, offset:offset + length] = values[pos:pos + length]
        pos += length
        va += length
        remaining -= length
    if span_frames:
        _scatter(frames_nd, span_frames, values, span_pos)
    tlb.hits += hits
    vm._clock.advance(size * vm._copy_cost)
    vm.counters.add("bytes_written", size)


def _gather(frames_nd, span_frames: List[int], out, pos: int) -> None:
    """One fancy-index gather of whole frames into ``out`` at ``pos``."""
    k = len(span_frames)
    if k == 1:
        out[pos:pos + PAGE_SIZE] = frames_nd[span_frames[0]]
    else:
        out[pos:pos + k * PAGE_SIZE].reshape(k, PAGE_SIZE)[:] = \
            frames_nd[span_frames]


def _scatter(frames_nd, span_frames: List[int], values, pos: int) -> None:
    """One fancy-index scatter of whole frames from ``values`` at ``pos``."""
    k = len(span_frames)
    if k == 1:
        frames_nd[span_frames[0]] = values[pos:pos + PAGE_SIZE]
    else:
        frames_nd[span_frames] = \
            values[pos:pos + k * PAGE_SIZE].reshape(k, PAGE_SIZE)


# -- element-batch API -------------------------------------------------------


def read_batch(vm, vas: Sequence[int], sizes: Sequence[int]) -> List[bytes]:
    """Batched loads: ``[vm.read(va, size) for va, size in zip(...)]``,
    with each element's pure-hit spans executed as single gathers."""
    import numpy as np
    if len(vas) != len(sizes):
        raise ValueError("vas and sizes must have equal length")
    results: List[bytes] = []
    for va, size in zip(vas, sizes):
        if size <= SPAN_THRESHOLD:
            results.append(vm.read(va, size))
            continue
        out = np.empty(size, dtype=np.uint8)
        read_span_into(vm, va, out)
        results.append(out.tobytes())
    return results


def write_batch(vm, vas: Sequence[int], datas: Sequence[bytes]) -> None:
    """Batched stores: ``[vm.write(va, data) for va, data in zip(...)]``."""
    import numpy as np
    if len(vas) != len(datas):
        raise ValueError("vas and datas must have equal length")
    for va, data in zip(vas, datas):
        if len(data) <= SPAN_THRESHOLD:
            vm.write(va, data)
            continue
        write_span_from(vm, va, np.frombuffer(data, dtype=np.uint8))


def apply_trace(vm, ops: Iterable[Tuple]) -> List[Optional[bytes]]:
    """Execute an access trace of ``("r", va, size)`` / ``("w", va, data)``
    tuples in order; returns the read results (None for writes).

    Element ordering — including clock charges and therefore timer firing
    points — matches issuing the same scalar calls one by one.
    """
    import numpy as np
    results: List[Optional[bytes]] = []
    for op in ops:
        kind, va, arg = op
        if kind == "r":
            if arg <= SPAN_THRESHOLD:
                results.append(vm.read(va, arg))
            else:
                out = np.empty(arg, dtype=np.uint8)
                read_span_into(vm, va, out)
                results.append(out.tobytes())
        elif kind == "w":
            if len(arg) <= SPAN_THRESHOLD:
                vm.write(va, arg)
            else:
                write_span_from(vm, va, np.frombuffer(arg, dtype=np.uint8))
            results.append(None)
        else:
            raise ValueError(f"unknown trace op {kind!r}")
    return results
