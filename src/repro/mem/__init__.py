"""Memory substrate: PTEs, page table, TLB, frames, remote node, MMU."""

from repro.mem.addrspace import AddressSpace, Region
from repro.mem.frames import FramePool
from repro.mem.page_table import PageTable
from repro.mem.remote import MemoryNode
from repro.mem.repair import RepairJournal, RepairManager, RepairPolicy
from repro.mem.tlb import Tlb
from repro.mem.vm import VirtualMemory

__all__ = [
    "AddressSpace",
    "FramePool",
    "MemoryNode",
    "PageTable",
    "RepairJournal",
    "RepairManager",
    "RepairPolicy",
    "Region",
    "Tlb",
    "VirtualMemory",
]
