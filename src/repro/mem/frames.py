"""The computing node's local DRAM: a pool of 4 KiB frames.

Frames carry real bytes (``bytearray``) so that eviction, write-back and
fetch round-trips are verifiable — a paging bug shows up as corrupted
workload data, not just a wrong counter.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)


class FramePool:
    """Fixed-size pool of local physical frames with a free list."""

    __slots__ = ("total_frames", "_data", "_free", "_is_free")

    def __init__(self, total_frames: int) -> None:
        if total_frames <= 0:
            raise ValueError("frame pool needs at least one frame")
        self.total_frames = total_frames
        self._data: List[bytearray] = [None] * total_frames  # type: ignore[list-item]
        self._free: List[int] = list(range(total_frames - 1, -1, -1))
        self._is_free: List[bool] = [True] * total_frames

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def used_frames(self) -> int:
        return self.total_frames - len(self._free)

    def alloc(self) -> int:
        """Pop a zeroed frame off the free list."""
        if not self._free:
            raise OutOfMemoryError("local DRAM exhausted")
        frame = self._free.pop()
        self._is_free[frame] = False
        buf = self._data[frame]
        if buf is None:
            self._data[frame] = bytearray(PAGE_SIZE)
        else:
            buf[:] = _ZERO_PAGE
        return frame

    def free(self, frame: int) -> None:
        """Return ``frame`` to the free list."""
        if not 0 <= frame < self.total_frames:
            raise ValueError(f"frame {frame} out of range")
        if self._data[frame] is None:
            raise ValueError(f"frame {frame} was never allocated")
        if self._is_free[frame]:
            raise ValueError(f"double free of frame {frame}")
        self._is_free[frame] = True
        self._free.append(frame)

    def data(self, frame: int) -> bytearray:
        """The 4 KiB backing buffer of ``frame``."""
        buf = self._data[frame]
        if buf is None:
            raise ValueError(f"frame {frame} not allocated")
        return buf
