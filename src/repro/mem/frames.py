"""The computing node's local DRAM: a pool of 4 KiB frames.

Frames carry real bytes so that eviction, write-back and fetch round-trips
are verifiable — a paging bug shows up as corrupted workload data, not just
a wrong counter.

All frames live in **one contiguous buffer**; each frame is exposed as a
``memoryview`` slice (supporting the same reads, slice-assignments and
``bytes()`` conversions a per-frame ``bytearray`` did), and the whole pool
doubles as a zero-copy ``(total_frames, PAGE_SIZE)`` uint8 numpy array via
:meth:`FramePool.as_ndarray`. That 2-D view is what the batch execution
engine (:mod:`repro.mem.batch`) fancy-indexes to gather or scatter a whole
run of frames in a single vector operation.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)


class FramePool:
    """Fixed-size pool of local physical frames with a free list."""

    __slots__ = ("total_frames", "_buf", "_nd", "_data", "_free", "_is_free",
                 "_ever_used")

    def __init__(self, total_frames: int) -> None:
        if total_frames <= 0:
            raise ValueError("frame pool needs at least one frame")
        self.total_frames = total_frames
        self._buf = bytearray(total_frames * PAGE_SIZE)
        self._nd = None
        view = memoryview(self._buf)
        self._data: List[memoryview] = [
            view[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]
            for i in range(total_frames)]
        self._free: List[int] = list(range(total_frames - 1, -1, -1))
        self._is_free: List[bool] = [True] * total_frames
        self._ever_used: List[bool] = [False] * total_frames

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def used_frames(self) -> int:
        return self.total_frames - len(self._free)

    def alloc(self) -> int:
        """Pop a zeroed frame off the free list."""
        if not self._free:
            raise OutOfMemoryError("local DRAM exhausted")
        frame = self._free.pop()
        self._is_free[frame] = False
        if self._ever_used[frame]:
            self._data[frame][:] = _ZERO_PAGE
        else:
            # Fresh slice of the backing buffer: already zero.
            self._ever_used[frame] = True
        return frame

    def free(self, frame: int) -> None:
        """Return ``frame`` to the free list."""
        if not 0 <= frame < self.total_frames:
            raise ValueError(f"frame {frame} out of range")
        if not self._ever_used[frame]:
            raise ValueError(f"frame {frame} was never allocated")
        if self._is_free[frame]:
            raise ValueError(f"double free of frame {frame}")
        self._is_free[frame] = True
        self._free.append(frame)

    def data(self, frame: int) -> memoryview:
        """The 4 KiB backing buffer of ``frame``."""
        if not self._ever_used[frame]:
            raise ValueError(f"frame {frame} not allocated")
        return self._data[frame]

    def as_ndarray(self):
        """Zero-copy ``(total_frames, PAGE_SIZE)`` uint8 view of the pool.

        Writable and always current: it aliases the same buffer the
        per-frame memoryviews write through.
        """
        if self._nd is None:
            import numpy as np
            self._nd = np.frombuffer(self._buf, dtype=np.uint8).reshape(
                self.total_frames, PAGE_SIZE)
        return self._nd
