"""The canonical metric namespace and the per-kernel legacy alias tables.

Canonical names are dotted and lowercase (``fault.major``,
``net.bytes_read``). Shared concepts use *identical* keys on every kernel:
a DiLOS major fault, a Fastswap major fault, and an AIFM object miss all
land on ``fault.major``, so cross-system tables and dashboards never need
per-kernel key translation. The alias tables map each kernel's historical
flat names onto the canonical set; ``MetricsSnapshot.as_flat_dict`` emits
both spellings so pre-existing benchmarks keep working.
"""

from __future__ import annotations

import re
from typing import Dict

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def validate_name(name: str) -> str:
    """Return ``name`` if it is a valid canonical dotted metric name.

    Valid names have at least two dot-separated segments, each starting
    with a lowercase letter and containing only ``[a-z0-9_]``.
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"invalid canonical metric name {name!r}: expected dotted "
            "lowercase segments like 'fault.major'")
    return name


#: Canonical keys every kernel must register, even when the value stays 0.
#: This is the cross-kernel contract the harness and reports rely on.
SHARED_KEYS = frozenset({
    "fault.major",
    "fault.minor",
    "prefetch.issued",
    "net.bytes_read",
    "net.bytes_written",
    "reclaim.pages_evicted",
})

#: Canonical reliability keys registered (at zero) by every kernel that
#: routes remote IO through the reliable transport (``net_faults`` set).
#: Kept out of :data:`SHARED_KEYS` on purpose: perfect-wire runs never
#: create a ``ReliableQP``, so the keys only exist on fault-injected runs.
NET_RELIABILITY_KEYS = frozenset({
    "net.ops",
    "net.retry",
    "net.timeout",
    "net.corrupt_detected",
    "net.failover",
    "net.giveup",
})

#: Canonical serving-layer keys minted by
#: :class:`repro.serve.frontend.ServeFrontend` in the cluster registry.
#: Counters unless noted: ``serve.offered`` (open-loop arrivals),
#: ``serve.admitted``, ``serve.shed`` (admission drops),
#: ``serve.completed``, ``serve.errors`` (non-ok responses),
#: ``serve.slo_violations``, ``serve.goodput`` (completed within SLO);
#: ``serve.latency_us`` (bounded log-histogram: p50/p99/p999);
#: ``serve.queue_depth`` (log-histogram of depth seen at admission);
#: ``serve.offered_rps`` / ``serve.goodput_rps`` (gauges, set at the end
#: of a run from the virtual serving timeline).
SERVE_KEYS = frozenset({
    "serve.offered",
    "serve.admitted",
    "serve.shed",
    "serve.completed",
    "serve.errors",
    "serve.slo_violations",
    "serve.goodput",
    "serve.latency_us",
    "serve.queue_depth",
    "serve.offered_rps",
    "serve.goodput_rps",
})

#: DiLOS kernel + page manager: legacy flat name -> canonical name.
DILOS_ALIASES: Dict[str, str] = {
    "major_faults": "fault.major",
    "minor_faults": "fault.minor",
    "first_touch_faults": "fault.first_touch",
    "first_touch_inline_reclaims": "fault.first_touch_inline_reclaims",
    "resolved_during_exception": "fault.resolved_during_exception",
    "prefetches_issued": "prefetch.issued",
    "prefetch_skipped_no_frames": "prefetch.skipped_no_frames",
    "prefetch_hit_ratio": "prefetch.hit_ratio",
    "guide_handled_faults": "guide.handled_faults",
    "guide_subpage_fetches": "guide.subpage_fetches",
    "action_fetches": "guide.action_fetches",
    "swap_cache_installs": "swapcache.installs",
    "fetch_node_failures": "net.fetch_node_failures",
    "fetches_dropped": "net.fetches_dropped",
    "writeback_node_failures": "net.writeback_node_failures",
    "net_bytes_read": "net.bytes_read",
    "net_bytes_written": "net.bytes_written",
    "direct_reclaims": "reclaim.direct",
    "direct_reclaimed_pages": "reclaim.direct_reclaimed_pages",
    "pages_evicted": "reclaim.pages_evicted",
    "pages_cleaned": "reclaim.pages_cleaned",
    "cleaned_full_pages": "reclaim.cleaned_full_pages",
    "cleaned_guided_pages": "reclaim.cleaned_guided_pages",
    "cleaned_empty_pages": "reclaim.cleaned_empty_pages",
    "madvise_willneed_pages": "madvise.willneed_pages",
    "madvise_dontneed_pages": "madvise.dontneed_pages",
    "tlb_hits": "tlb.hits",
    "tlb_misses": "tlb.misses",
    "checkpoints": "migration.checkpoints",
    "restored_pages": "migration.restored_pages",
}

#: Fastswap kernel: legacy flat name -> canonical name. Note the drift
#: fixes: ``readahead_issued`` and DiLOS' ``prefetches_issued`` were two
#: spellings of the same concept; both now land on ``prefetch.issued``,
#: and frontswap ``writebacks`` are ``reclaim.pages_cleaned``.
FASTSWAP_ALIASES: Dict[str, str] = {
    "major_faults": "fault.major",
    "minor_faults": "fault.minor",
    "first_touch_faults": "fault.first_touch",
    "spurious_faults": "fault.spurious",
    "prefetches_issued": "prefetch.issued",
    "readahead_issued": "prefetch.issued",
    "readahead_skipped_no_frames": "prefetch.skipped_no_frames",
    "fetch_node_failures": "net.fetch_node_failures",
    "writeback_node_failures": "net.writeback_node_failures",
    "net_bytes_read": "net.bytes_read",
    "net_bytes_written": "net.bytes_written",
    "direct_reclaims": "reclaim.direct",
    "pages_evicted": "reclaim.pages_evicted",
    "pages_cleaned": "reclaim.pages_cleaned",
    "writebacks": "reclaim.pages_cleaned",
    "kswapd_runs": "reclaim.kswapd_runs",
    "swapcache_reclaimed": "swapcache.reclaimed",
    "swap_cache_size": "swapcache.size",
    "tlb_hits": "tlb.hits",
    "tlb_misses": "tlb.misses",
}

#: Cluster memory backends (repro.mem.cluster): historical ad-hoc
#: ``Counter()`` names -> canonical ``cluster.*`` names. The backends
#: keep their ``.counters`` attribute as a :class:`LegacyCounters` view
#: over these, so ``backend.counters.get("failover_reads")`` still works.
CLUSTER_ALIASES: Dict[str, str] = {
    "failover_reads": "cluster.failover_reads",
    "replicated_writes": "cluster.replicated_writes",
    "writes_skipped_dead_replica": "cluster.writes_skipped_dead_replica",
    "degraded_reads": "cluster.degraded_reads",
    "degraded_writes": "cluster.degraded_writes",
    "reconstruction_bytes": "cluster.reconstruction_bytes",
    "parity_writes_skipped": "cluster.parity_writes_skipped",
    "stale_reads_avoided": "cluster.stale_reads_avoided",
    "rejoins": "cluster.rejoins",
}

#: Repair/scrub keys minted by :class:`repro.mem.repair.RepairManager`
#: in the backend's registry (documented here; created lazily):
#: ``repair.pages_resilvered``, ``repair.bytes_resilvered``,
#: ``repair.source_stalls``, ``repair.nodes_syncing`` (gauge),
#: ``repair.nodes_promoted``, ``scrub.pages_checked``,
#: ``scrub.mismatches``, ``scrub.repaired``, ``scrub.quarantined``,
#: ``scrub.passes``.

#: AIFM runtime: legacy flat name -> canonical name. An object miss is
#: AIFM's major fault; evacuation is its eviction; evacuation write-backs
#: are its page cleaning.
AIFM_ALIASES: Dict[str, str] = {
    "derefs": "deref.total",
    "object_misses": "fault.major",
    "prefetches_issued": "prefetch.issued",
    "objects_evacuated": "reclaim.pages_evicted",
    "evacuation_writebacks": "reclaim.pages_cleaned",
    "objects_allocated": "heap.objects_allocated",
    "objects_freed": "heap.objects_freed",
    "heap_used": "heap.bytes_used",
    "net_bytes_read": "net.bytes_read",
    "net_bytes_written": "net.bytes_written",
}
