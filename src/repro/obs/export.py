"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

The Chrome form is the JSON Object Format (``{"traceEvents": [...]}``)
with timestamps already in microseconds — the simulator's native unit —
so a trace drops straight into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` with no scaling. Each event category gets its own
``tid`` (named via ``thread_name`` metadata events), which renders each
subsystem — fault path, prefetch, reclaim, net — as its own track even
though the simulation is single-threaded.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.obs.tracer import TraceRecord

#: pid stamped on every event; the simulation is one "process".
TRACE_PID = 1


def _records(events: Iterable) -> List[TraceRecord]:
    return list(events.events() if hasattr(events, "events") else events)


def to_jsonl(events: Iterable) -> str:
    """One JSON object per line, oldest event first."""
    records = _records(events)
    return "\n".join(json.dumps(r.as_dict(), sort_keys=True)
                     for r in records) + ("\n" if records else "")


def write_jsonl(events: Iterable, path) -> int:
    """Write JSONL to ``path``; returns the number of events written."""
    records = _records(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(records))
    return len(records)


def chrome_trace(events: Iterable,
                 process_name: str = "repro") -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` JSON object from trace records.

    Accepts a :class:`~repro.obs.tracer.Tracer` or any iterable of
    :class:`TraceRecord`. Events are sorted by start timestamp (spans are
    buffered at exit, so an enclosing span can trail its children);
    categories are assigned stable ``tid``s in first-seen order.
    """
    records = _records(events)
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
        "args": {"name": process_name},
    }]
    body: List[Dict[str, Any]] = []
    for record in records:
        tid = tids.get(record.cat)
        if tid is None:
            tid = tids[record.cat] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": record.cat},
            })
        event = record.as_dict()
        event["pid"] = TRACE_PID
        event["tid"] = tid
        if record.ph == "i":
            event["s"] = "t"  # instant scope: thread
        body.append(event)
    # Spans are emitted at *exit*, so an enclosing span lands in the buffer
    # after its children (e.g. reclaim.direct after the cleaner-tick spans
    # its clock advance triggered). Sort by start time, longest-first at
    # ties, which both restores per-tid monotonicity and puts parents
    # before children the way trace viewers expect.
    body.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    trace_events.extend(body)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable, path,
                       process_name: str = "repro") -> Dict[str, Any]:
    """Export, validate, and write Chrome-format JSON to ``path``."""
    doc = chrome_trace(events, process_name=process_name)
    validate_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: Union[Dict[str, Any], str]) -> Dict[str, Any]:
    """Check a Chrome-format trace document; raise ``ValueError`` if bad.

    Validates the object shape, per-event required fields, phase-specific
    fields (``dur`` on ``X`` events), and that timestamps are
    non-decreasing per tid (the simulated clock is monotonic, so a
    violation means an exporter or instrumentation bug).
    """
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace must be an object with a 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    last_ts: Dict[int, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        if ph not in ("X", "i"):
            raise ValueError(f"traceEvents[{i}] has unsupported ph {ph!r}")
        if "ts" not in event:
            raise ValueError(f"traceEvents[{i}] missing 'ts'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}] ts {ts!r} is not a "
                             "non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] complete event needs a "
                                 f"non-negative 'dur', got {dur!r}")
        tid = event["tid"]
        if ts < last_ts.get(tid, 0.0):
            raise ValueError(
                f"traceEvents[{i}] ts {ts} goes backwards on tid {tid} "
                f"(last was {last_ts[tid]})")
        last_ts[tid] = ts
    return doc


def fault_breakdown_from_spans(events: Iterable,
                               name: str = "fault.major") -> Dict[str, Any]:
    """Reconstruct the Fig.-6 fault-latency breakdown from trace spans.

    Averages the per-component latencies attached to each ``name`` span's
    ``args["components"]`` and cross-checks them against span durations.
    Returns ``{"count", "avg_total_us", "components": {...},
    "span_total_us", "component_total_us"}`` — the last two are the sums
    over all spans of span duration vs. component latencies, which the
    E-F6 regression test requires to agree within 5 %.
    """
    spans = [r for r in _records(events) if r.ph == "X" and r.name == name]
    count = len(spans)
    totals: Dict[str, float] = {}
    span_total = 0.0
    for span in spans:
        span_total += span.dur
        for component, us in span.args.get("components", {}).items():
            totals[component] = totals.get(component, 0.0) + us
    component_total = sum(totals.values())
    return {
        "count": count,
        "avg_total_us": span_total / count if count else 0.0,
        "components": {c: t / count for c, t in totals.items()} if count
                      else {},
        "span_total_us": span_total,
        "component_total_us": component_total,
    }
