"""The typed metrics registry all kernels report through.

Four instrument kinds, all registered under canonical dotted names
(:mod:`repro.obs.names`):

* :class:`Counter` — monotonically increasing scalar (``fault.major``);
* :class:`Gauge` — point-in-time value, usually bound to a callable
  (``net.bytes_read`` reads the fabric's byte accounting at snapshot time);
* :class:`Histogram` — raw samples with percentiles (``fault.minor_wait_us``);
* :class:`LatencyBreakdown` — per-component fault-latency accumulation
  (``fault.breakdown``, the Figure 1/6 data).

``registry.snapshot(...)`` freezes everything into a
:class:`~repro.obs.snapshot.MetricsSnapshot`. :class:`LegacyCounters` is a
drop-in view with the old ``Counter.add(raw_name)`` surface, so code and
tests written against a kernel's historical flat counter names keep
working while the storage is canonical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Union

from repro.common import stats as _stats
from repro.obs.names import validate_name
from repro.obs.snapshot import MetricsSnapshot
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class Counter:
    """A single monotonically increasing counter instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: either set explicitly or bound to a callable
    that is evaluated lazily at snapshot time (zero steady-state cost)."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram(_stats.Histogram):
    """A named histogram instrument (raw samples + percentiles)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def summary(self) -> Dict[str, float]:
        """Count/mean/min/max/p50/p99 for snapshots; empty dict if empty."""
        if not self.count:
            return {}
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.pct(50),
            "p99": self.pct(99),
        }


class LogHistogram(_stats.LogHistogram):
    """A named bounded-memory log-bucketed histogram instrument.

    The per-request instrument: recording folds the sample into a fixed
    geometric bucket (no per-sample allocation), so serving-scale request
    streams — millions of latencies — cost a few hundred ints total. Its
    summary adds ``p999``, the serving tail the SLO layer reports on.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def summary(self) -> Dict[str, float]:
        """Count/mean/min/max/p50/p99/p999; empty dict if empty."""
        if not self.count:
            return {}
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.pct(50),
            "p99": self.pct(99),
            "p999": self.pct(99.9),
        }


class LatencyBreakdown(_stats.LatencyBreakdown):
    """A named per-component latency breakdown instrument."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name


Instrument = Union[Counter, Gauge, Histogram, LogHistogram, LatencyBreakdown]


class MetricsRegistry:
    """Canonical-namespaced home of every instrument of one system.

    Instruments are created on first request and shared thereafter;
    requesting an existing name with a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._aliases: Dict[str, str] = {}

    # -- instrument factories ------------------------------------------------

    def _register(self, name: str, kind) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(validate_name(name))
            self._instruments[name] = inst
        elif type(inst) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter)

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._register(name, Gauge)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        # NOTE: retains raw samples. Audit (PR 6): the only per-sample
        # users are the kernels' ``fault.minor_wait_us`` (bounded by the
        # workload's minor-fault count and pinned by the golden-master
        # digests, so left as-is). Anything recording per *request* must
        # use :meth:`log_histogram` instead.
        return self._register(name, Histogram)

    def log_histogram(self, name: str) -> LogHistogram:
        """A bounded-memory log-bucketed histogram (per-request scale)."""
        return self._register(name, LogHistogram)

    def breakdown(self, name: str) -> LatencyBreakdown:
        return self._register(name, LatencyBreakdown)

    # -- shorthands ----------------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``, creating it on first use."""
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.counter(name)
        inst.add(amount)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge; 0 when unregistered."""
        inst = self._instruments.get(name)
        if inst is None:
            return 0
        if isinstance(inst, (Counter, Gauge)):
            return inst.value
        raise TypeError(f"metric {name!r} is a {type(inst).__name__}, "
                        "not a scalar instrument")

    def names(self):
        """All registered canonical names, sorted."""
        return sorted(self._instruments)

    # -- legacy aliasing -----------------------------------------------------

    def alias(self, legacy: str, canonical: str) -> None:
        """Map a legacy flat name onto a canonical one (for flat views)."""
        existing = self._aliases.get(legacy)
        if existing is not None and existing != canonical:
            raise ValueError(f"alias {legacy!r} already maps to {existing!r}")
        self._aliases[legacy] = validate_name(canonical)

    def register_aliases(self, table: Mapping[str, str]) -> None:
        for legacy, canonical in table.items():
            self.alias(legacy, canonical)

    @property
    def aliases(self) -> Dict[str, str]:
        return dict(self._aliases)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero counters, clear histograms and breakdowns. Gauges are
        live views and are left untouched."""
        for inst in self._instruments.values():
            if not isinstance(inst, Gauge):
                inst.reset()

    def snapshot(self, system: str = "", time_us: float = 0.0) -> MetricsSnapshot:
        """Freeze every instrument into a typed snapshot."""
        counters: Dict[str, float] = {}
        raw_counters: Dict[str, int] = {}
        breakdowns: Dict[str, Dict[str, float]] = {}
        breakdown_counts: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                counters[name] = inst.value
            elif isinstance(inst, (Histogram, LogHistogram)):
                histograms[name] = inst.summary()
            else:
                breakdowns[name] = inst.averages()
                breakdown_counts[name] = inst.fault_count
        counter_names = {n for n, i in self._instruments.items()
                         if isinstance(i, Counter)}
        for legacy, canonical in self._aliases.items():
            if canonical in counter_names:
                raw_counters[legacy] = int(counters[canonical])
        return MetricsSnapshot(
            system=system, time_us=time_us, counters=counters,
            breakdowns=breakdowns, breakdown_counts=breakdown_counts,
            histograms=histograms, aliases=dict(self._aliases),
            raw_counters=raw_counters)


class LegacyCounters:
    """The old per-kernel ``Counter`` bag surface over a registry.

    ``add``/``get`` translate historical flat names through the kernel's
    alias table; unknown names are auto-namespaced under ``misc.`` so
    third-party code can still mint ad-hoc counters.
    """

    def __init__(self, registry: MetricsRegistry,
                 namespace: str = "misc") -> None:
        self._registry = registry
        self._namespace = namespace

    def _canonical(self, raw: str) -> str:
        canonical = self._registry._aliases.get(raw)
        if canonical is None:
            canonical = f"{self._namespace}.{raw}"
            self._registry.alias(raw, canonical)
        return canonical

    def add(self, name: str, amount: int = 1) -> None:
        self._registry.add(self._canonical(name), amount)

    def get(self, name: str) -> int:
        return int(self._registry.value(self._canonical(name)))

    def as_dict(self) -> Dict[str, int]:
        registry = self._registry
        out = {}
        for raw, canonical in registry._aliases.items():
            inst = registry._instruments.get(canonical)
            if isinstance(inst, Counter):
                out[raw] = inst.value
        return out

    def reset(self) -> None:
        self._registry.reset()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
        return f"LegacyCounters({inner})"


@dataclass
class Observability:
    """The injectable observability bundle: one registry + one tracer.

    Every system owns one (``system.obs``); pass your own to
    ``make_system(..., obs=...)`` or a system constructor to share a
    registry across systems or to turn tracing on.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Union[Tracer, NullTracer] = NULL_TRACER

    @classmethod
    def default(cls) -> "Observability":
        """Fresh registry, tracing disabled (the zero-overhead default)."""
        return cls(registry=MetricsRegistry(), tracer=NULL_TRACER)

    @classmethod
    def tracing(cls, capacity: int = 65536) -> "Observability":
        """Fresh registry with an enabled ring-buffered tracer."""
        return cls(registry=MetricsRegistry(),
                   tracer=Tracer(capacity=capacity, enabled=True))
