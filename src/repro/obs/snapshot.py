"""Typed, frozen view of a :class:`~repro.obs.registry.MetricsRegistry`.

``MetricsSnapshot`` is the return type of ``BaseSystem.metrics()``. It is
a dataclass for typed consumers and simultaneously a ``Mapping`` over its
flat view, because the pre-existing surface treats ``metrics()`` as a
plain dict: benchmarks subscript it, ``Trace.replay`` and ``LibOS``
assign new keys into it, and reports iterate ``.items()``. Assignment
lands in :attr:`extra` so the registry data stays immutable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping

# Keys historically emitted as plain gauges (not integer counters) whose
# flat spelling must not be re-emitted under ``counter.<name>``.
_GAUGE_FLAT_KEYS = ("prefetch_hit_ratio", "swap_cache_size", "heap_used")


@dataclass
class MetricsSnapshot(Mapping):
    """One system's metrics at one simulated instant.

    Attributes:
        system: system name (``"dilos"``, ``"fastswap"``, ``"aifm"``).
        time_us: simulated clock time when the snapshot was taken.
        counters: canonical name -> counter/gauge value.
        breakdowns: canonical name -> per-component average latency (µs).
        breakdown_counts: canonical name -> number of recorded samples.
        histograms: canonical name -> summary stats (count/mean/p50/...).
        aliases: legacy flat name -> canonical name (this kernel's table).
        raw_counters: legacy flat name -> value, for old consumers.
        extra: mutable overflow bag; ``snapshot[key] = value`` writes here.
    """

    system: str = ""
    time_us: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    breakdowns: Dict[str, Dict[str, float]] = field(default_factory=dict)
    breakdown_counts: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)
    raw_counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- typed accessors -----------------------------------------------------

    def value(self, canonical: str, default: float = 0) -> float:
        """Counter/gauge value under its canonical name."""
        return self.counters.get(canonical, default)

    # -- determinism digest ----------------------------------------------------

    def canonical_json(self) -> str:
        """Canonical JSON over every registry-owned field of the snapshot.

        ``extra`` is excluded: it is a mutable overflow bag that harness
        code writes presentation values into, not simulation output. Keys
        are sorted and floats use ``repr`` (via ``json``), so the string —
        and therefore :meth:`digest` — is stable across interpreter runs
        and Python versions for identical simulation results.
        """
        return json.dumps(
            {
                "system": self.system,
                "time_us": self.time_us,
                "counters": self.counters,
                "breakdowns": self.breakdowns,
                "breakdown_counts": self.breakdown_counts,
                "histograms": self.histograms,
                "raw_counters": self.raw_counters,
            },
            sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json`.

        This is the golden-master contract: two runs are *metrics-identical*
        iff their digests match — same simulated clock, same counters and
        gauges, same breakdown averages, same histogram summaries.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- flat compatibility view ---------------------------------------------

    def as_flat_dict(self) -> Dict[str, Any]:
        """The historical flat-dict form of ``metrics()``.

        Emits ``system``/``time_us`` metadata, every canonical counter and
        gauge, every legacy spelling (``major_faults`` next to
        ``fault.major``), the old ``counter.<raw>`` entries, and ``extra``.
        Later sources win, so an ``extra`` assignment can shadow anything.
        """
        flat: Dict[str, Any] = {"system": self.system, "time_us": self.time_us}
        flat.update(self.counters)
        for legacy, canonical in self.aliases.items():
            if canonical in self.counters:
                flat[legacy] = self.counters[canonical]
        for raw, value in self.raw_counters.items():
            if raw not in _GAUGE_FLAT_KEYS:
                flat[f"counter.{raw}"] = value
        for name, components in self.breakdowns.items():
            for component, avg_us in components.items():
                flat[f"{name}.avg_{component}_us"] = avg_us
        for name, summary in self.histograms.items():
            for stat, value in summary.items():
                flat[f"{name}.{stat}"] = value
        flat.update(self.extra)
        return flat

    # -- Mapping protocol (over the flat view) -------------------------------

    def __getitem__(self, key: str) -> Any:
        if key in self.extra:
            return self.extra[key]
        flat = self.as_flat_dict()
        return flat[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.extra[key] = value

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_flat_dict())

    def __len__(self) -> int:
        return len(self.as_flat_dict())

    def __contains__(self, key: object) -> bool:
        return key in self.as_flat_dict()

    def get(self, key: str, default: Any = None) -> Any:
        flat = self.as_flat_dict()
        return flat.get(key, default)

    def keys(self):
        return self.as_flat_dict().keys()

    def values(self):
        return self.as_flat_dict().values()

    def items(self):
        return self.as_flat_dict().items()
