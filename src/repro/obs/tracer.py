"""Simulated-clock event tracing with ring-buffer bounding.

The tracer records two event shapes, mirroring the Chrome ``trace_event``
phases used by the exporter:

* **complete** (``ph="X"``): a span with a start timestamp and duration —
  a fault being handled, a reclaim pass, a wire read in flight;
* **instant** (``ph="i"``): a point event — a prefetch issued, a page
  evicted.

Timestamps are simulated-clock microseconds (the simulator's native
unit), so exported traces show *simulated* concurrency, not host time.

The hot-path contract is zero overhead when disabled: instrumented code
guards every emission with ``if tracer.enabled:``, and the module-level
:data:`NULL_TRACER` singleton keeps that check a plain attribute load on
systems built without tracing. The buffer is a bounded deque; overflow
drops the *oldest* events and counts them in :attr:`Tracer.dropped`.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class TraceRecord:
    """One trace event.

    Attributes:
        name: event name (``fault.major``, ``net.read``, ...).
        cat: category — becomes the Perfetto track (``fault``, ``net``...).
        ph: phase, ``"X"`` (complete span) or ``"i"`` (instant).
        ts: simulated-clock start time, microseconds.
        dur: span duration in microseconds (0.0 for instants).
        args: small JSON-safe payload (vpn, bytes, components...).
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: float,
                 dur: float = 0.0,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.args = args or {}

    def as_dict(self) -> Dict[str, Any]:
        out = {"name": self.name, "cat": self.cat, "ph": self.ph,
               "ts": self.ts}
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        return (f"TraceRecord({self.name!r}, cat={self.cat!r}, "
                f"ph={self.ph!r}, ts={self.ts}, dur={self.dur})")


class Tracer:
    """Bounded recorder of :class:`TraceRecord` events.

    The tracer does not own a clock reference; callers pass explicit
    timestamps (they already have ``clock.now`` in hand on the fault
    path), which also lets one tracer serve several clocked components.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.dropped = 0
        self._events: deque = deque(maxlen=capacity)

    # -- emission ------------------------------------------------------------

    def _append(self, record: TraceRecord) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(record)

    def instant(self, name: str, cat: str, ts: float,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event at simulated time ``ts``."""
        if not self.enabled:
            return
        self._append(TraceRecord(name, cat, "i", ts, 0.0, args))

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a span that started at ``ts`` and lasted ``dur`` µs."""
        if not self.enabled:
            return
        self._append(TraceRecord(name, cat, "X", ts, dur, args))

    @contextmanager
    def span(self, name: str, cat: str, clock,
             args: Optional[Dict[str, Any]] = None):
        """Context manager measuring a span on ``clock`` (simulated µs).

        The span is emitted on exit with ``dur = clock.now - entry_now``,
        including when the body raises.
        """
        if not self.enabled:
            yield
            return
        start = clock.now
        try:
            yield
        finally:
            self.complete(name, cat, start, clock.now - start, args)

    # -- inspection / lifecycle ----------------------------------------------

    def events(self) -> List[TraceRecord]:
        """All buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(list(self._events))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class NullTracer:
    """Disabled tracer with the full :class:`Tracer` surface.

    ``enabled`` is always ``False``; every emission is a no-op. Used as
    the default so un-traced systems pay only an attribute check.
    """

    enabled = False
    capacity = 0
    dropped = 0

    def instant(self, name: str, cat: str, ts: float,
                args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        pass

    @contextmanager
    def span(self, name: str, cat: str, clock,
             args: Optional[Dict[str, Any]] = None):
        yield

    def events(self) -> List[TraceRecord]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def clear(self) -> None:
        pass


#: Shared no-op tracer; safe to use as a default for any number of systems.
NULL_TRACER = NullTracer()
