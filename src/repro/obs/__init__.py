"""Unified observability: typed metrics + simulated-clock event tracing.

Every kernel (DiLOS, Fastswap, the AIFM runtime) reports through one
:class:`MetricsRegistry` of typed instruments registered under a canonical
dotted namespace (``fault.major``, ``net.bytes_read``, ...), and emits
structured span/instant events through one :class:`Tracer` stamped with
simulated-clock time. The registry snapshots to a typed
:class:`MetricsSnapshot` (the return type of ``BaseSystem.metrics()``);
the tracer exports to JSONL and Chrome ``trace_event`` JSON (loadable in
Perfetto). See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.names import (
    AIFM_ALIASES,
    DILOS_ALIASES,
    FASTSWAP_ALIASES,
    NET_RELIABILITY_KEYS,
    SERVE_KEYS,
    SHARED_KEYS,
    validate_name,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LatencyBreakdown,
    LegacyCounters,
    LogHistogram,
    MetricsRegistry,
    Observability,
)
from repro.obs.snapshot import MetricsSnapshot
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceRecord, Tracer
from repro.obs.export import (
    chrome_trace,
    fault_breakdown_from_spans,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "AIFM_ALIASES",
    "Counter",
    "DILOS_ALIASES",
    "FASTSWAP_ALIASES",
    "Gauge",
    "Histogram",
    "LatencyBreakdown",
    "LegacyCounters",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NET_RELIABILITY_KEYS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SERVE_KEYS",
    "SHARED_KEYS",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "fault_breakdown_from_spans",
    "to_jsonl",
    "validate_chrome_trace",
    "validate_name",
    "write_chrome_trace",
    "write_jsonl",
]
