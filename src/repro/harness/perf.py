"""Wall-clock performance suite over the simulator's hot kernels.

The simulator's results are *simulated-time* numbers, but how long the
simulation itself takes to run is what bounds every experiment sweep.
This module defines the hot-path benchmark kernels (sequential read/write,
quicksort, a Redis GET mix — across DiLOS, Fastswap, and AIFM), times
them on the host clock, and emits ``BENCH_perf.json`` at the repo root:
the repo's wall-clock performance trajectory.

Two contracts are enforced on every run:

* **Determinism** — each benchmark runs on a fresh system with fixed
  seeds and must produce the same metrics digest
  (:meth:`~repro.obs.snapshot.MetricsSnapshot.digest`) on every
  iteration; a digest flap fails the run before any timing is reported.
* **No regression** — each benchmark's best wall time is compared against
  the reference recorded in ``benchmarks/perf/baseline.json``; exceeding
  ``reference * tolerance`` makes the runner exit non-zero.

``baseline.json`` also carries a frozen ``pre_pr`` section: the wall
times measured on the unoptimized code, against which the emitted
speedups are computed.

Run via ``python -m repro perf`` (or ``scripts/perf_report.py``)::

    python -m repro perf                    # full run, write BENCH_perf.json
    python -m repro perf --smoke            # 1 iteration, harness sanity only
    python -m repro perf --update-baseline  # re-record the reference times
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.common.units import MIB, PAGE_SIZE

#: BENCH_perf.json schema identifier.
SCHEMA = "repro-perf/1"
#: baseline.json schema identifier.
BASELINE_SCHEMA = "repro-perf-baseline/1"
#: Default allowed wall-clock regression vs the recorded reference.
#: Wall time on shared machines is noisy; 1.6x is loose enough to dodge
#: scheduler jitter while still catching a hot path falling off a cliff.
DEFAULT_TOLERANCE = 1.6

_REPO_ROOT = Path(__file__).resolve().parents[3]
#: Where ``python -m repro perf`` writes its report.
DEFAULT_OUT = _REPO_ROOT / "BENCH_perf.json"
#: Reference + pre-PR wall times, checked in with the benchmark suite.
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "perf" / "baseline.json"


@dataclass
class PerfRun:
    """What one execution of a benchmark kernel yields."""

    sim_us: float
    ops: int
    checksum: str


@dataclass
class PerfCase:
    """One hot-path benchmark: a named, self-contained kernel."""

    name: str
    description: str
    fn: Callable[[], PerfRun]
    #: The headline benchmark carries the PR's speedup claim.
    headline: bool = False


@dataclass
class PerfResult:
    """One benchmark's timing plus its determinism checksum."""

    name: str
    wall_us: float
    sim_us: float
    ops: int
    checksum: str

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "wall_us": round(self.wall_us, 1),
                "sim_us": self.sim_us, "ops": self.ops,
                "checksum": self.checksum}


# -- benchmark kernels --------------------------------------------------------
#
# Each kernel boots a fresh system (determinism requires it) and returns
# sim time, a host-meaningful op count, and the metrics digest. Imports
# are local so ``repro.harness`` stays cheap to import.


def _seqread_dilos() -> PerfRun:
    """Headline: resident sequential scan — the pure TLB-hit fast path."""
    from repro.apps.seqrw import SequentialWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = SequentialWorkload(4 * MIB)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 1.0))
    workload.run(system, "read", verify=True)
    pages = workload.working_set_bytes // PAGE_SIZE
    return PerfRun(system.clock.now, 2 * pages, system.metrics().digest())


def _seqread_dilos_cold() -> PerfRun:
    """Memory-constrained scan: fault handler + prefetch + reclaim."""
    from repro.apps.seqrw import SequentialWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = SequentialWorkload(2 * MIB)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.25))
    workload.run(system, "read", verify=True)
    pages = workload.working_set_bytes // PAGE_SIZE
    return PerfRun(system.clock.now, 2 * pages, system.metrics().digest())


def _seqwrite_dilos() -> PerfRun:
    from repro.apps.seqrw import SequentialWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = SequentialWorkload(2 * MIB)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.5))
    workload.run(system, "write")
    pages = workload.working_set_bytes // PAGE_SIZE
    return PerfRun(system.clock.now, 2 * pages, system.metrics().digest())


def _seqread_fastswap() -> PerfRun:
    from repro.apps.seqrw import SequentialWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = SequentialWorkload(2 * MIB)
    system = make_system("fastswap",
                         local_bytes_for(workload.footprint_bytes, 0.25))
    workload.run(system, "read", verify=True)
    pages = workload.working_set_bytes // PAGE_SIZE
    return PerfRun(system.clock.now, 2 * pages, system.metrics().digest())


def _seqscan_aifm() -> PerfRun:
    """AIFM remoteable-array scan under heap pressure (evacuation active)."""
    from repro.baselines.aifm import RemArray
    from repro.harness.experiment import local_bytes_for, make_system

    count, item = 2048, 128
    system = make_system("aifm-rdma", local_bytes_for(count * item, 0.25))
    array = RemArray(system, count, item)
    for i in range(count):
        array.set(i, (i & 0xFF).to_bytes(1, "little") * item)
    for i, data in enumerate(array.scan()):
        if data[0] != (i & 0xFF):
            raise AssertionError(f"item {i} corrupted")
    return PerfRun(system.clock.now, 2 * count, system.metrics().digest())


def _quicksort_dilos() -> PerfRun:
    from repro.apps.quicksort import QuicksortWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = QuicksortWorkload(count=1 << 13)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.5))
    result = workload.run(system, verify=True)
    return PerfRun(system.clock.now, result.count,
                   system.metrics().digest())


def _redis_get(kind: str) -> PerfRun:
    from repro.alloc import Mimalloc
    from repro.apps.redis import GetWorkload, RedisServer
    from repro.harness.experiment import local_bytes_for, make_system

    workload = GetWorkload(value_size="mixed", n_keys=80, n_queries=250)
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, 0.25),
                         remote_bytes=128 * MIB)
    server = RedisServer(system, Mimalloc(system, arena_bytes=32 * MIB))
    workload.populate(server)
    system.clock.advance(5000)
    workload.drive(server, verify=True)
    return PerfRun(system.clock.now, workload.n_keys + workload.n_queries,
                   system.metrics().digest())


def _kmeans_dilos() -> PerfRun:
    """App-level: chunked Lloyd's k-means over far-memory points."""
    from repro.apps.kmeans import KMeansWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = KMeansWorkload(n_points=1 << 14, dim=8, clusters=10,
                              iterations=4)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.5))
    result = workload.run(system)
    return PerfRun(system.clock.now,
                   workload.n_points * workload.iterations,
                   system.metrics().digest())


def _dataframe_dilos() -> PerfRun:
    """App-level: the taxi analytics query mix over far-memory columns."""
    from repro.apps.dataframe import TaxiAnalyticsWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = TaxiAnalyticsWorkload(rows=1 << 16)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.5))
    workload.run(system)
    return PerfRun(system.clock.now, workload.rows,
                   system.metrics().digest())


def _llm_decode_dilos() -> PerfRun:
    """App-level: LLM decode-heavy inference, KV cache paged at 25%
    local (the random-gather path the P:D sweep stresses)."""
    from repro.apps.llm import LlmConfig, LlmWorkload
    from repro.harness.experiment import local_bytes_for, make_system

    workload = LlmWorkload(n_requests=12, seed=31,
                           config=LlmConfig(heads=8, max_tokens=192),
                           prompt_min=24, prompt_max=80,
                           out_min=8, out_max=16)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.25))
    result = workload.run(system)
    return PerfRun(system.clock.now, result.decoded_tokens,
                   system.metrics().digest())


def _rack_redis_pool() -> PerfRun:
    """Rack-level: open-loop redis serving over the pooled, contended
    fabric (locality placement on an oversubscribed ToR)."""
    from repro.sim.rack import make_rack

    serve = ("poisson:rate=400k,clients=1m,slo=2ms,requests=600,"
             "seed=29,balance=round_robin")
    cluster = make_rack(tenants=8,
                        topology="rack:compute=4,mem=4,link=100,oversub=4",
                        placement="locality", serve=serve, n_keys=32)
    report = cluster.serve()
    return PerfRun(cluster.clock.now, report.completed,
                   cluster.metrics().digest())


def _kv_get_replicated() -> PerfRun:
    """App-level: the replicated KV service under its chaos schedule
    (lossy wire, lease-holder kill, rejoin + resilver at serving load)."""
    from repro.harness.scenarios import kv_failover

    cluster, report = kv_failover(requests=400)
    return PerfRun(cluster.clock.now, report.completed,
                   cluster.metrics().digest())


CASES: List[PerfCase] = [
    PerfCase("seqread_dilos",
             "DiLOS resident 4 MiB sequential read (TLB-hit fast path)",
             _seqread_dilos, headline=True),
    PerfCase("seqread_dilos_cold",
             "DiLOS 2 MiB sequential read at 25% local (fault path)",
             _seqread_dilos_cold),
    PerfCase("seqwrite_dilos",
             "DiLOS 2 MiB sequential write at 50% local",
             _seqwrite_dilos),
    PerfCase("seqread_fastswap",
             "Fastswap 2 MiB sequential read at 25% local (swap path)",
             _seqread_fastswap),
    PerfCase("seqscan_aifm",
             "AIFM remoteable-array populate + scan at 25% local heap",
             _seqscan_aifm),
    PerfCase("quicksort_dilos",
             "DiLOS quicksort of 8K u64s at 50% local",
             _quicksort_dilos),
    PerfCase("redis_get_dilos",
             "DiLOS Redis GET, Facebook mixed value sizes",
             lambda: _redis_get("dilos-readahead")),
    PerfCase("redis_get_fastswap",
             "Fastswap Redis GET, Facebook mixed value sizes",
             lambda: _redis_get("fastswap")),
    PerfCase("kmeans_dilos",
             "DiLOS k-means over 16K far-memory points at 50% local",
             _kmeans_dilos),
    PerfCase("dataframe_dilos",
             "DiLOS taxi analytics over 64K far-memory rows at 50% local",
             _dataframe_dilos),
    PerfCase("llm_decode_dilos",
             "DiLOS LLM decode: random KV-cache gathers at 25% local",
             _llm_decode_dilos),
    PerfCase("rack_redis_pool",
             "8 redis tenants served over a pooled 4:1-oversubscribed rack",
             _rack_redis_pool),
    PerfCase("kv_get_replicated",
             "replicated KV service surviving a lease-holder kill + resilver",
             _kv_get_replicated),
]


def case_by_name(name: str) -> PerfCase:
    for case in CASES:
        if case.name == name:
            return case
    raise KeyError(f"unknown perf case {name!r}")


# -- running ------------------------------------------------------------------


def run_case(case: PerfCase, iterations: int = 3) -> PerfResult:
    """Best-of-``iterations`` wall time; raises if the digest is unstable."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    best_wall = None
    run: Optional[PerfRun] = None
    for _ in range(iterations):
        t0 = time.perf_counter()
        this = case.fn()
        wall_us = (time.perf_counter() - t0) * 1e6
        if run is not None and (this.checksum != run.checksum
                                or this.sim_us != run.sim_us):
            raise AssertionError(
                f"{case.name}: non-deterministic run — metrics digest "
                f"{this.checksum[:12]} != {run.checksum[:12]} "
                f"(sim {this.sim_us} vs {run.sim_us})")
        run = this
        if best_wall is None or wall_us < best_wall:
            best_wall = wall_us
    return PerfResult(case.name, best_wall, run.sim_us, run.ops,
                      run.checksum)


def load_baseline(path: Path) -> Dict[str, Any]:
    if not path.exists():
        return {"schema": BASELINE_SCHEMA, "pre_pr": {}, "reference": {},
                "tolerance": DEFAULT_TOLERANCE}
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: unexpected baseline schema "
                         f"{data.get('schema')!r}")
    return data


def build_report(results: List[PerfResult], baseline: Dict[str, Any],
                 iterations: int, tolerance: float) -> Dict[str, Any]:
    """Assemble the BENCH_perf.json payload (includes regression verdicts)."""
    pre_pr = baseline.get("pre_pr", {})
    reference = baseline.get("reference", {})
    rows = []
    for result in results:
        row = result.as_dict()
        base = pre_pr.get(result.name)
        if base:
            row["baseline_wall_us"] = base
            row["speedup_vs_baseline"] = round(base / result.wall_us, 2)
        ref = reference.get(result.name)
        if ref:
            row["reference_wall_us"] = ref
            row["regressed"] = result.wall_us > ref * tolerance
        rows.append(row)
    return {
        "schema": SCHEMA,
        "suite": "benchmarks/perf",
        "iterations": iterations,
        "tolerance": tolerance,
        "host": {"python": platform.python_version(),
                 "implementation": platform.python_implementation(),
                 "machine": platform.machine()},
        "benchmarks": rows,
    }


def _run_case_cell(cell) -> PerfResult:
    """Picklable pool worker for ``--jobs``: resolve the case by name in
    the child (the CASES thunks are lambdas, which do not pickle) and
    run it there."""
    name, iterations = cell
    return run_case(case_by_name(name), iterations)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Run the wall-clock perf suite; write BENCH_perf.json "
                    "and fail on regression past tolerance.")
    parser.add_argument("--iterations", type=int, default=3,
                        help="runs per benchmark; best wall time is kept")
    parser.add_argument("--smoke", action="store_true",
                        help="single iteration per benchmark (CI smoke)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="report path (default: repo-root "
                             "BENCH_perf.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline/reference wall-time file")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed wall-time factor over the reference "
                             "(default: baseline file's, else "
                             f"{DEFAULT_TOLERANCE})")
    parser.add_argument("--only", nargs="+", metavar="NAME", default=None,
                        help="run only these benchmarks")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan cases out across N worker processes "
                             "(checksums/sim times are identical to a "
                             "serial run; wall times may inflate under "
                             "CPU contention, so prefer serial when "
                             "gating)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the reference section from this run")
    parser.add_argument("--record-pre-pr", action="store_true",
                        help="also freeze this run as the pre-PR baseline "
                             "(one-time, on the unoptimized code)")
    args = parser.parse_args(argv)

    iterations = 1 if args.smoke else args.iterations
    cases = CASES if args.only is None else [case_by_name(n)
                                             for n in args.only]
    baseline = load_baseline(args.baseline)
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance", DEFAULT_TOLERANCE))

    from repro.harness.parallel import fanout

    results: List[PerfResult] = fanout(
        _run_case_cell, [(case.name, iterations) for case in cases],
        args.jobs)
    for result in results:
        print(f"  {result.name:<22} {result.wall_us / 1000:9.1f} ms wall   "
              f"{result.sim_us / 1000:9.2f} ms sim   "
              f"{result.ops:>6} ops   {result.checksum[:12]}")

    if args.update_baseline or args.record_pre_pr:
        for result in results:
            baseline["reference"][result.name] = round(result.wall_us, 1)
            if args.record_pre_pr:
                baseline["pre_pr"][result.name] = round(result.wall_us, 1)
        baseline["tolerance"] = tolerance
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated {args.baseline}")

    report = build_report(results, baseline, iterations, tolerance)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    regressed = [row for row in report["benchmarks"]
                 if row.get("regressed")]
    for row in regressed:
        print(f"REGRESSION: {row['name']} took {row['wall_us'] / 1000:.1f} "
              f"ms vs reference {row['reference_wall_us'] / 1000:.1f} ms "
              f"(tolerance {tolerance}x)", file=sys.stderr)
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
