"""Memory-trace recording and replay.

A recorded trace captures an application's *memory behaviour* — every
load/store with its virtual address, size, and the compute gap since the
previous access — decoupled from the application code. Replaying the same
trace on different kernels (DiLOS vs Fastswap, different prefetchers,
different media) compares paging subsystems on byte-identical access
sequences, the methodology behind trace-driven studies like the paper's
motivation experiments (§3).

Traces serialize to JSON-lines, so they can be stored with experiment
results and replayed later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.api import BaseSystem


@dataclass(frozen=True)
class TraceEvent:
    """One memory access, ``gap_us`` of compute after the previous one."""

    op: str  # "read" | "write" | "touch"
    va: int
    size: int
    gap_us: float


class Trace:
    """A recorded region layout plus an ordered access sequence."""

    def __init__(self, regions: List[Tuple[int, bool, str]],
                 events: List[TraceEvent]) -> None:
        self.regions = regions
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    @property
    def bytes_accessed(self) -> int:
        return sum(e.size for e in self.events)

    # -- persistence --------------------------------------------------------

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(json.dumps({"regions": self.regions}) + "\n")
            for event in self.events:
                fh.write(json.dumps([event.op, event.va, event.size,
                                     event.gap_us]) + "\n")

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            regions = [tuple(r) for r in header["regions"]]
            events = [TraceEvent(*json.loads(line))
                      for line in fh if line.strip()]
        return cls(regions, events)

    # -- replay ----------------------------------------------------------------

    def replay(self, system: BaseSystem):
        """Re-create the regions and drive the accesses; returns the
        system's :class:`~repro.obs.MetricsSnapshot` with the replay's
        simulated duration added under ``replay_us``."""
        for size, ddc, name in self.regions:
            system.mmap(size, ddc=ddc, name=name)
        start = system.clock.now
        memory = system.memory
        for event in self.events:
            if event.gap_us:
                system.cpu(event.gap_us)
            if event.op == "read":
                memory.read(event.va, event.size)
            elif event.op == "write":
                # Replay stores deterministic filler: the trace captures
                # behaviour, not payloads.
                memory.write(event.va, b"\xA7" * event.size)
            elif event.op == "touch":
                memory.touch(event.va, event.size)
            else:
                raise ValueError(f"unknown trace op {event.op!r}")
        metrics = system.metrics()
        metrics["replay_us"] = system.clock.now - start
        return metrics


class RecordingMemory:
    """A proxy over :class:`VirtualMemory` that logs every access."""

    def __init__(self, system: BaseSystem) -> None:
        self._inner = system.vm
        self._clock = system.clock
        self._events: List[TraceEvent] = []
        self._last_time = system.clock.now

    def _log(self, op: str, va: int, size: int) -> None:
        now = self._clock.now
        self._events.append(TraceEvent(op, va, size,
                                       max(0.0, now - self._last_time)))

    def read(self, va: int, size: int) -> bytes:
        self._log("read", va, size)
        data = self._inner.read(va, size)
        self._last_time = self._clock.now
        return data

    def write(self, va: int, data: bytes) -> None:
        self._log("write", va, len(data))
        self._inner.write(va, data)
        self._last_time = self._clock.now

    def touch(self, va: int, size: int, is_write: bool = False) -> None:
        self._log("touch", va, size)
        self._inner.touch(va, size, is_write)
        self._last_time = self._clock.now

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class TraceRecorder:
    """Attach to a system, run the application, then ``finish()``."""

    def __init__(self, system: BaseSystem) -> None:
        self._system = system
        self._proxy = RecordingMemory(system)
        system.vm = self._proxy  # apps reach memory via system.memory

    def finish(self) -> Trace:
        """Detach and return the recorded trace."""
        self._system.vm = self._proxy._inner
        regions = [(r.size, r.ddc, r.name)
                   for r in self._system.addr_space.regions()]
        return Trace(regions, list(self._proxy._events))
