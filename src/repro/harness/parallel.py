"""Multiprocessing fan-out for benchmark grids.

``repro sweep`` and ``python -m repro perf`` evaluate independent cells
(one booted system per workload × kernel × ratio, or one perf case per
cell); each cell is deterministic given its spec, so the grid can be
distributed across cores without changing a single result. This module
is the one place that policy lives:

* :func:`fanout` — order-preserving parallel map over picklable cells.
  ``jobs <= 1`` (or a single cell) degrades to the plain serial loop, so
  serial and parallel runs share one code path and produce identical
  merged results.
* :func:`cell_seed` — a stable per-cell seed derived from the cell's
  identity (not from worker index or scheduling order), so any cell that
  wants its own RNG stream gets the same stream no matter which process
  runs it or in which order.

Workers must be module-level functions and cells must be picklable; the
pool uses ``fork`` where available (no re-import cost) and falls back to
``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import zlib
from typing import Callable, List, Optional, Sequence, TypeVar

Cell = TypeVar("Cell")
Result = TypeVar("Result")


def cell_seed(*identity, base: int = 0) -> int:
    """A deterministic 31-bit seed from the cell's identity.

    ``cell_seed("kmeans", "dilos-readahead", 0.5)`` is stable across
    processes, hosts and Python versions (CRC-32 of the repr, not
    ``hash()``, which is salted per process).
    """
    text = "\x1f".join(repr(part) for part in identity)
    return (zlib.crc32(text.encode()) ^ base) & 0x7FFFFFFF


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def fanout(worker: Callable[[Cell], Result], cells: Sequence[Cell],
           jobs: Optional[int] = None) -> List[Result]:
    """Run ``worker(cell)`` for every cell; results in input order.

    ``jobs`` of ``None``, 0 or 1 means serial (same code path the pool
    workers take, so outputs are identical by construction). ``worker``
    must be a module-level function and every cell picklable when
    ``jobs > 1``.
    """
    cells = list(cells)
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with ctx.Pool(processes=min(jobs, len(cells))) as pool:
        # pool.map preserves input order regardless of completion order.
        return pool.map(worker, cells)
