"""Experiment plumbing shared by benchmarks and examples.

The paper's evaluation sweeps each workload across systems (Fastswap,
DiLOS x prefetcher, DiLOS-TCP, AIFM) and local-memory ratios (12.5%, 25%,
50%, 100% of the working set). ``make_system`` builds any of those by a
short presentation key; ``sweep_ratios`` runs a measurement function over
the grid and collects :class:`Measurement` rows the report module formats.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.common.clock import Clock
from repro.common.units import KIB, MIB
from repro.core.spec import (
    BackendSpec,
    SystemSpec,
    backend_label,
    kernel_kinds,
)
from repro.obs import Observability

#: Presentation keys, matching the paper's figure legends. Sourced from
#: the kernel registry so extensions registered via
#: :func:`repro.core.spec.register_kernel` show up everywhere.
SYSTEM_KINDS = kernel_kinds()

#: The paper's local-memory sweep.
PAPER_RATIOS = (0.125, 0.25, 0.50, 1.0)

#: Floor on local memory so watermarks and metadata always fit.
MIN_LOCAL_BYTES = 192 * KIB


def local_bytes_for(footprint_bytes: int, ratio: float,
                    minimum: int = MIN_LOCAL_BYTES) -> int:
    """Local cache size for a workload footprint at a sweep ratio."""
    if not 0.0 < ratio <= 1.5:
        raise ValueError(f"implausible local-memory ratio {ratio}")
    scaled = footprint_bytes * ratio
    if ratio >= 1.0:
        # The paper's "100%" keeps the whole working set resident; leave
        # headroom for the free-frame watermark reserve so the page manager
        # does not evict a fully fitting working set.
        scaled *= 1.15
    return max(int(scaled), minimum)


def make_system(kind: str, local_bytes: int,
                remote_bytes: int = 512 * MIB,
                obs: Optional[Observability] = None,
                backend: BackendSpec = "node",
                clock: Optional[Clock] = None,
                **overrides: Any):
    """Boot a system by presentation key.

    Compatibility shim over :meth:`repro.core.spec.SystemSpec.boot` — the
    registry-driven boot layer. Returns a :class:`BaseSystem` for the
    paging systems or an :class:`AifmRuntime` for the AIFM variants.
    ``obs`` injects an observability bundle — e.g.
    ``Observability.tracing()`` to record simulated-clock trace events —
    the default is a fresh registry with tracing disabled.

    ``backend`` selects the remote-memory backend: ``"node"`` (one
    memory node, the default), a cluster spec such as ``"sharded:4"``,
    ``"replicated:3"`` or ``"parity:4+1"``, or a ready backend object to
    share across systems. ``clock`` injects a shared timeline.

    Extra keyword arguments pass straight into the system's config
    dataclass; notably ``net_faults`` (a :class:`repro.net.FaultPlan`
    or a spec string such as ``"drop=0.01,corrupt=0.005,seed=7"``) and
    ``net_retry`` route all remote IO through the reliable transport —
    the same knob every kind understands. ``repair`` (a
    :class:`repro.mem.repair.RepairPolicy` or a spec string such as
    ``"resilver_period=200,scrub_period=5000"``) attaches the online
    resilver/scrub manager to a cluster backend. ``serve`` (a
    :class:`repro.serve.ServeSpec` or a spec string such as
    ``"poisson:rate=5k,clients=1m,slo=2ms"``) attaches an open-loop
    serving configuration, used when the system is enrolled as a service
    tenant (see docs/SERVING.md).
    """
    spec = SystemSpec(kind=kind, local_mem_bytes=local_bytes,
                      remote_mem_bytes=remote_bytes, backend=backend,
                      obs=obs, clock=clock,
                      net_faults=overrides.pop("net_faults", None),
                      net_retry=overrides.pop("net_retry", None),
                      repair=overrides.pop("repair", None),
                      serve=overrides.pop("serve", None),
                      overrides=overrides)
    return spec.boot()


@dataclass
class Measurement:
    """One cell of a paper table/figure."""

    system: str
    workload: str
    ratio: float
    value: float
    unit: str
    extra: Dict[str, Any] = field(default_factory=dict)

    def record_metrics(self, system) -> "Measurement":
        """Attach ``system``'s metrics snapshot under ``extra["metrics"]``.

        The snapshot is flattened so saved measurement JSON stays plain
        (canonical dotted keys plus legacy spellings). Returns ``self``
        so runners can ``return measurement.record_metrics(system)``.
        """
        snapshot = system.metrics()
        flat = (snapshot.as_flat_dict()
                if hasattr(snapshot, "as_flat_dict") else dict(snapshot))
        self.extra["metrics"] = flat
        return self


class _GridCell:
    """Picklable invoker for one (system, ratio) cell of a sweep grid.

    ``sweep_ratios --jobs`` ships these to pool workers, so the wrapped
    runner must itself be picklable (a module-level function or class
    instance, not a closure) when ``jobs > 1``.
    """

    def __init__(self, runner: Callable[..., Measurement],
                 backend: BackendSpec, takes_backend: bool) -> None:
        self.runner = runner
        self.backend = backend
        self.takes_backend = takes_backend

    def __call__(self, cell) -> Measurement:
        kind, ratio = cell
        if self.takes_backend:
            return self.runner(kind, ratio, backend=self.backend)
        return self.runner(kind, ratio)


def sweep_ratios(
    workload_name: str,
    runner: Callable[..., Measurement],
    systems: Iterable[str],
    ratios: Iterable[float] = PAPER_RATIOS,
    backend: BackendSpec = "node",
    jobs: Optional[int] = None,
) -> List[Measurement]:
    """Run ``runner(system_kind, ratio)`` over the full grid.

    ``backend`` pins every booted system to one backend spec (e.g.
    ``"sharded:4"``); it is forwarded to runners that accept a
    ``backend`` keyword and stamped into each measurement's ``extra``.

    ``jobs > 1`` fans the grid cells out across that many worker
    processes (each cell boots its own system, so cells are fully
    independent and every simulated result is identical to a serial
    run); results are merged back in grid order. Parallel runs require
    ``runner`` to be picklable.
    """
    from repro.harness.parallel import fanout

    takes_backend = "backend" in inspect.signature(runner).parameters
    cells = [(kind, ratio) for kind in systems for ratio in ratios]
    results = fanout(_GridCell(runner, backend, takes_backend), cells, jobs)
    for (kind, ratio), measurement in zip(cells, results):
        measurement.system = kind
        measurement.workload = workload_name
        measurement.ratio = ratio
        measurement.extra.setdefault("backend", backend_label(backend))
    return results


def pick(measurements: List[Measurement], system: str,
         ratio: Optional[float] = None) -> Measurement:
    """The unique measurement for (system, ratio); raises if absent."""
    hits = [m for m in measurements
            if m.system == system and (ratio is None or m.ratio == ratio)]
    if len(hits) != 1:
        raise LookupError(
            f"expected one measurement for {system}@{ratio}, found {len(hits)}")
    return hits[0]
