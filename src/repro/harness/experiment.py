"""Experiment plumbing shared by benchmarks and examples.

The paper's evaluation sweeps each workload across systems (Fastswap,
DiLOS x prefetcher, DiLOS-TCP, AIFM) and local-memory ratios (12.5%, 25%,
50%, 100% of the working set). ``make_system`` builds any of those by a
short presentation key; ``sweep_ratios`` runs a measurement function over
the grid and collects :class:`Measurement` rows the report module formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.common.units import KIB, MIB
from repro.baselines.aifm import AifmConfig, AifmRuntime
from repro.baselines.fastswap import FastswapConfig, FastswapSystem
from repro.core import DilosConfig, DilosSystem
from repro.obs import Observability

#: Presentation keys, matching the paper's figure legends.
SYSTEM_KINDS = (
    "fastswap",
    "dilos-none",
    "dilos-readahead",
    "dilos-trend",
    "dilos-stride",
    "dilos-tcp",
    "aifm",
    "aifm-rdma",
)

#: The paper's local-memory sweep.
PAPER_RATIOS = (0.125, 0.25, 0.50, 1.0)

#: Floor on local memory so watermarks and metadata always fit.
MIN_LOCAL_BYTES = 192 * KIB


def local_bytes_for(footprint_bytes: int, ratio: float,
                    minimum: int = MIN_LOCAL_BYTES) -> int:
    """Local cache size for a workload footprint at a sweep ratio."""
    if not 0.0 < ratio <= 1.5:
        raise ValueError(f"implausible local-memory ratio {ratio}")
    scaled = footprint_bytes * ratio
    if ratio >= 1.0:
        # The paper's "100%" keeps the whole working set resident; leave
        # headroom for the free-frame watermark reserve so the page manager
        # does not evict a fully fitting working set.
        scaled *= 1.15
    return max(int(scaled), minimum)


def make_system(kind: str, local_bytes: int,
                remote_bytes: int = 512 * MIB,
                obs: Optional[Observability] = None, **overrides: Any):
    """Boot a system by presentation key.

    Returns a :class:`BaseSystem` for the paging systems or an
    :class:`AifmRuntime` for the AIFM variants. ``obs`` injects an
    observability bundle — e.g. ``Observability.tracing()`` to record
    simulated-clock trace events — without per-kind constructor churn;
    the default is a fresh registry with tracing disabled.

    Extra keyword arguments pass straight into the system's config
    dataclass; notably ``net_faults`` (a :class:`repro.net.FaultPlan`
    or a spec string such as ``"drop=0.01,corrupt=0.005,seed=7"``) and
    ``net_retry`` route all remote IO through the reliable transport —
    the same knob every kind understands.
    """
    if kind == "fastswap":
        return FastswapSystem(FastswapConfig(
            local_mem_bytes=local_bytes, remote_mem_bytes=remote_bytes,
            **overrides), obs=obs)
    if kind.startswith("dilos"):
        flavor = kind.split("-", 1)[1] if "-" in kind else "readahead"
        config = DilosConfig(local_mem_bytes=local_bytes,
                             remote_mem_bytes=remote_bytes, **overrides)
        if flavor == "tcp":
            config.prefetcher = "readahead"
            config.tcp_emulation = True
        elif flavor in ("none", "readahead", "trend", "stride"):
            config.prefetcher = flavor
        else:
            raise ValueError(f"unknown DiLOS flavor {flavor!r}")
        return DilosSystem(config, obs=obs)
    if kind.startswith("aifm"):
        transport = "rdma" if kind.endswith("rdma") else "tcp"
        return AifmRuntime(AifmConfig(local_heap_bytes=local_bytes,
                                      remote_mem_bytes=remote_bytes,
                                      transport=transport, **overrides),
                           obs=obs)
    raise ValueError(f"unknown system kind {kind!r}; pick from {SYSTEM_KINDS}")


@dataclass
class Measurement:
    """One cell of a paper table/figure."""

    system: str
    workload: str
    ratio: float
    value: float
    unit: str
    extra: Dict[str, Any] = field(default_factory=dict)

    def record_metrics(self, system) -> "Measurement":
        """Attach ``system``'s metrics snapshot under ``extra["metrics"]``.

        The snapshot is flattened so saved measurement JSON stays plain
        (canonical dotted keys plus legacy spellings). Returns ``self``
        so runners can ``return measurement.record_metrics(system)``.
        """
        snapshot = system.metrics()
        flat = (snapshot.as_flat_dict()
                if hasattr(snapshot, "as_flat_dict") else dict(snapshot))
        self.extra["metrics"] = flat
        return self


def sweep_ratios(
    workload_name: str,
    runner: Callable[[str, float], Measurement],
    systems: Iterable[str],
    ratios: Iterable[float] = PAPER_RATIOS,
) -> List[Measurement]:
    """Run ``runner(system_kind, ratio)`` over the full grid."""
    results: List[Measurement] = []
    for kind in systems:
        for ratio in ratios:
            measurement = runner(kind, ratio)
            measurement.system = kind
            measurement.workload = workload_name
            measurement.ratio = ratio
            results.append(measurement)
    return results


def pick(measurements: List[Measurement], system: str,
         ratio: Optional[float] = None) -> Measurement:
    """The unique measurement for (system, ratio); raises if absent."""
    hits = [m for m in measurements
            if m.system == system and (ratio is None or m.ratio == ratio)]
    if len(hits) != 1:
        raise LookupError(
            f"expected one measurement for {system}@{ratio}, found {len(hits)}")
    return hits[0]
