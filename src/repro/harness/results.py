"""Persisting experiment results.

Benchmarks and scripts can dump their :class:`Measurement` grids to JSON
(for archival / later plotting) or CSV (for spreadsheets); ``load_json``
round-trips exactly.
"""

from __future__ import annotations

import csv
import json
from typing import List

from repro.harness.experiment import Measurement

_FIELDS = ("system", "workload", "ratio", "value", "unit")


def save_json(measurements: List[Measurement], path) -> None:
    """Write measurements (with extras) as a JSON document."""
    rows = [{"system": m.system, "workload": m.workload, "ratio": m.ratio,
             "value": m.value, "unit": m.unit, "extra": m.extra}
            for m in measurements]
    with open(path, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")


def load_json(path) -> List[Measurement]:
    """Read measurements written by :func:`save_json`."""
    with open(path) as fh:
        rows = json.load(fh)
    return [Measurement(system=row["system"], workload=row["workload"],
                        ratio=row["ratio"], value=row["value"],
                        unit=row["unit"], extra=row.get("extra", {}))
            for row in rows]


def save_csv(measurements: List[Measurement], path) -> None:
    """Write measurements as CSV (core fields only, no extras)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for m in measurements:
            writer.writerow([m.system, m.workload, m.ratio, m.value, m.unit])


def load_csv(path) -> List[Measurement]:
    """Read measurements written by :func:`save_csv`."""
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        return [Measurement(system=row["system"], workload=row["workload"],
                            ratio=float(row["ratio"]),
                            value=float(row["value"]), unit=row["unit"])
                for row in reader]
