"""Paper-style ASCII tables for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.harness.experiment import Measurement


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned table with a title rule, like the paper's tables."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def ratio_table(title: str, measurements: List[Measurement],
                unit: Optional[str] = None) -> str:
    """Systems as rows, local-memory ratios as columns (the Figure 7-10
    presentation)."""
    systems: List[str] = []
    ratios: List[float] = []
    for m in measurements:
        if m.system not in systems:
            systems.append(m.system)
        if m.ratio not in ratios:
            ratios.append(m.ratio)
    ratios.sort()
    unit = unit or (measurements[0].unit if measurements else "")
    headers = ["system"] + [f"{r * 100:g}%" for r in ratios]
    rows = []
    for system in systems:
        row: List[Any] = [system]
        for ratio in ratios:
            cell = next((m.value for m in measurements
                         if m.system == system and m.ratio == ratio), None)
            row.append("-" if cell is None else cell)
        rows.append(row)
    return format_table(f"{title} ({unit})", headers, rows)
