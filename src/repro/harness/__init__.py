"""Experiment harness: system factories, sweeps, and paper-style tables."""

from repro.harness.experiment import (
    SYSTEM_KINDS,
    Measurement,
    local_bytes_for,
    make_system,
    sweep_ratios,
)
from repro.harness.report import format_table, ratio_table

__all__ = [
    "Measurement",
    "SYSTEM_KINDS",
    "format_table",
    "local_bytes_for",
    "make_system",
    "ratio_table",
    "sweep_ratios",
]
