"""Multi-tenant scenario presets for the tenancy scheduler.

Each preset enrolls a small fleet of tenant (system, workload) pairs into
a :class:`repro.sim.tenancy.ComputeCluster` sharing one clock and one
memory backend. Workload factories follow the tenancy convention: given
the booted system they return a generator, and every ``next()`` performs
one operation against far memory (populate a chunk, answer a GET, scan a
stripe), advancing the shared clock.

Everything here is deterministic: seeded RNGs, fixed sizes, insertion-
order scheduling — the same preset always reaches the same final merged
metrics digest.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.common.units import KIB, MIB, PAGE_SIZE
from repro.core.spec import BackendSpec, SystemSpec, make_backend
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory
from repro.sim.tenancy import ComputeCluster, WorkloadFactory

#: name -> (description, builder) for every preset scenario.
ScenarioBuilder = Callable[..., ComputeCluster]


# -- tenant workload factories ----------------------------------------------

def kmeans_tenant(n_points: int = 32768, dims: int = 4, iters: int = 2,
                  k: int = 4, seed: int = 11,
                  chunk_points: int = 512) -> WorkloadFactory:
    """A k-means style tenant: populate a far-memory point set, then run
    Lloyd iterations as chunked scans (one op per chunk)."""

    def factory(system) -> Iterator[str]:
        from repro.apps.views import PagedArray

        def gen() -> Iterator[str]:
            rng = np.random.default_rng(seed)
            points = PagedArray(system, n_points * dims, dtype=np.float64,
                                name="kmeans.points")
            centers = rng.standard_normal((k, dims))
            for start, stop in points.chunks(chunk_points * dims):
                points.store(start, rng.standard_normal(stop - start))
                yield "populate"
            for _ in range(iters):
                sums = np.zeros((k, dims))
                counts = np.zeros(k)
                for start, stop in points.chunks(chunk_points * dims):
                    chunk = points.load(start, stop).reshape(-1, dims)
                    dist2 = ((chunk[:, None, :] - centers[None, :, :]) ** 2
                             ).sum(axis=2)
                    assign = dist2.argmin(axis=1)
                    for centroid in range(k):
                        mask = assign == centroid
                        sums[centroid] += chunk[mask].sum(axis=0)
                        counts[centroid] += int(mask.sum())
                    yield "assign"
                nonzero = counts > 0
                centers[nonzero] = sums[nonzero] / counts[nonzero, None]
                yield "update"
        return gen()
    return factory


def redis_get_tenant(n_keys: int = 600, value_bytes: int = 768,
                     n_queries: int = 1200, seed: int = 21,
                     arena_bytes: int = 4 * MIB) -> WorkloadFactory:
    """A redis tenant: SET a keyspace through the mimalloc arena, then
    issue random verified GETs (one op per request)."""

    def factory(system) -> Iterator[str]:
        from repro.alloc.mimalloc import Mimalloc
        from repro.apps.redis.server import RedisServer

        def gen() -> Iterator[str]:
            server = RedisServer(system, Mimalloc(system, arena_bytes))
            rng = random.Random(seed)
            expected: Dict[bytes, bytes] = {}
            for i in range(n_keys):
                key = b"key:%d" % i
                value = bytes(rng.getrandbits(8) for _ in range(value_bytes))
                server.set(key, value)
                expected[key] = value[:8]
                yield "set"
            qrng = random.Random(seed + 1)
            for _ in range(n_queries):
                key = b"key:%d" % qrng.randrange(n_keys)
                value = server.get(key)
                if value is None or value[:8] != expected[key]:
                    raise AssertionError(
                        f"GET {key!r} returned corrupted value")
                yield "get"
        return gen()
    return factory


def seqread_tenant(nbytes: int = 4 * MIB, passes: int = 2,
                   chunk_bytes: int = 64 * KIB) -> WorkloadFactory:
    """A streaming tenant: fill a buffer, then re-read it sequentially
    (one op per chunk) — steady backend pressure for co-tenants."""

    def factory(system) -> Iterator[str]:
        from repro.apps.views import PagedBytes

        def gen() -> Iterator[str]:
            buf = PagedBytes(system, nbytes, name="seqread.buf")
            for start, stop in buf.chunks(chunk_bytes):
                pattern = bytes((start // chunk_bytes + j) & 0xFF
                                for j in range(min(64, stop - start)))
                buf.write(start, pattern)
                yield "fill"
            for _ in range(passes):
                for start, stop in buf.chunks(chunk_bytes):
                    buf.read(start, stop - start)
                    yield "scan"
        return gen()
    return factory


# -- preset scenarios --------------------------------------------------------

def _spec(kind: str, local_bytes: int) -> SystemSpec:
    return SystemSpec(kind=kind, local_mem_bytes=local_bytes)


def kmeans_redis(backend: BackendSpec = "sharded:2",
                 remote_mem_bytes: int = 64 * MIB,
                 quantum_us: float = 100.0,
                 kind: str = "dilos-readahead") -> ComputeCluster:
    """The paper-style pairing: an analytics scan and a latency-sensitive
    key-value server contending for one sharded pool. Local budgets sit
    well under both working sets, so each tenant faults and evicts into
    the shared backend while the other runs."""
    cluster = ComputeCluster(backend=backend,
                             remote_mem_bytes=remote_mem_bytes,
                             quantum_us=quantum_us)
    cluster.add_tenant("kmeans", _spec(kind, 256 * KIB), kmeans_tenant())
    cluster.add_tenant("redis", _spec(kind, 256 * KIB), redis_get_tenant())
    return cluster


def stream_duo(backend: BackendSpec = "replicated:2",
               remote_mem_bytes: int = 64 * MIB,
               quantum_us: float = 250.0,
               kind: str = "dilos-readahead") -> ComputeCluster:
    """Two identical streamers — the fairness smoke test: Jain's index
    should sit near 1.0."""
    cluster = ComputeCluster(backend=backend,
                             remote_mem_bytes=remote_mem_bytes,
                             quantum_us=quantum_us)
    cluster.add_tenant("stream_a", _spec(kind, 256 * KIB), seqread_tenant())
    cluster.add_tenant("stream_b", _spec(kind, 256 * KIB), seqread_tenant())
    return cluster


def mixed_trio(backend: BackendSpec = "sharded:2",
               remote_mem_bytes: int = 96 * MIB,
               quantum_us: float = 500.0,
               kind: str = "dilos-readahead") -> ComputeCluster:
    """Analytics + key-value + streaming, three kernels of the same kind
    on one pool — the full contention story."""
    cluster = ComputeCluster(backend=backend,
                             remote_mem_bytes=remote_mem_bytes,
                             quantum_us=quantum_us)
    cluster.add_tenant("kmeans", _spec(kind, 512 * KIB), kmeans_tenant())
    cluster.add_tenant("redis", _spec(kind, 512 * KIB), redis_get_tenant())
    cluster.add_tenant("stream", _spec(kind, 256 * KIB), seqread_tenant())
    return cluster


def repair_demo(backend: str = "replicated:2",
                kind: str = "dilos-readahead",
                region_bytes: int = 4 * MIB,
                local_bytes: int = 1 * MIB,
                repair: str = ("resilver_period=200,resilver_batch=32,"
                               "scrub_period=1000,scrub_batch=128"),
                max_advance_us: float = 2_000_000.0) -> Dict[str, Any]:
    """The end-to-end rejoin/repair story behind ``python -m repro repair``.

    One DiLOS computing node on a redundant cluster backend walks the
    full failure lifecycle on the simulated clock:

    1. write pattern A over the region and let the cleaner drain it;
    2. kill one member, overwrite with pattern B — every missed write
       is journaled as stale for the dead member;
    3. ``rejoin`` the member: it comes back *syncing* and the paced
       background resilver replays the journal on its own QP;
    4. corrupt one page at rest and let the periodic scrubber detect
       and repair the divergence;
    5. kill a *different* member and verify every byte of pattern B —
       the read that silently returned stale data before this subsystem
       existed.

    Returns a result dict (phase facts, canonical counters, metrics
    digest); raises ``AssertionError`` if any byte reads back wrong.
    """
    cluster = make_backend(backend, 2 * region_bytes)
    if isinstance(cluster, ReplicatedMemory):
        victim = cluster.mirrors[0]
        second = cluster.primary
        rot_member, rot_node = len(cluster.mirrors), cluster.mirrors[-1]
    elif isinstance(cluster, ParityStripedMemory):
        victim = cluster.data_nodes[0]
        second = cluster.data_nodes[1]
        rot_member, rot_node = cluster.k, cluster.parity_node
    else:
        raise ValueError(
            f"repair demo needs a redundant backend, not {backend!r}")

    spec = SystemSpec(kind=kind, local_mem_bytes=local_bytes,
                      remote_mem_bytes=region_bytes, backend=cluster,
                      repair=repair)
    system = spec.boot()
    clock = system.clock
    region = system.mmap(region_bytes, name="repair.ws")
    pages = region.size // PAGE_SIZE

    def fill(tag: int) -> None:
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([(i * 7 + tag) % 251]) * 48)

    def verify() -> None:
        for i in range(pages):
            got = system.memory.read(region.base + i * PAGE_SIZE, 48)
            want = bytes([(i * 7 + 1) % 251]) * 48
            assert got == want, \
                f"page {i} corrupted after rejoin: {got[:4]!r} != {want[:4]!r}"

    def advance_until(predicate, step_us: float = 1_000.0) -> float:
        start = clock.now
        while not predicate():
            if clock.now - start > max_advance_us:
                raise AssertionError("repair demo timed out waiting for "
                                     "the resilver/scrubber")
            clock.advance(step_us)
        return clock.now - start

    # 1. pattern A everywhere, cleaned to every member.
    fill(0)
    clock.advance(5_000)
    # 2. degraded writes: pattern B while the victim is down.
    victim.fail()
    fill(1)
    clock.advance(5_000)  # cleaner drains; missed writes hit the journal
    stale_after_degraded = cluster.stale_slots
    assert stale_after_degraded > 0, "no writes were journaled"
    # 3. rejoin: syncing until the paced resilver drains the journal.
    cluster.rejoin(victim)
    resilver_us = advance_until(lambda: not cluster.degraded)
    # 4. at-rest rot: flip one page on a non-authoritative member and let
    # the scrubber find it (it cycles the whole extent once per pass).
    rot_offset = 0
    rotted = bytes(b ^ 0xFF for b in rot_node.read_bytes(rot_offset, 64))
    rot_node.write_bytes(rot_offset, rotted)
    registry = cluster.registry
    scrub_us = advance_until(lambda: registry.value("scrub.repaired") > 0)
    assert cluster.journal.dirty_count(rot_member) == 0
    # 5. a *different* member dies; every byte must still be pattern B.
    second.fail()
    verify()
    snap = system.metrics()
    merged = cluster.metrics()
    interesting = {key: value for key, value in merged.counters.items()
                   if key.startswith(("cluster.", "repair.", "scrub."))}
    return {
        "backend": backend,
        "kind": kind,
        "pages": pages,
        "stale_after_degraded": stale_after_degraded,
        "resilver_us": resilver_us,
        "scrub_us": scrub_us,
        "verified_pages": pages,
        "counters": interesting,
        "digest": snap.digest(),
        "time_us": clock.now,
    }


# -- open-loop serving presets -----------------------------------------------
#
# Each preset enrolls service tenants (request handlers, not workload
# generators) and attaches a ServeSpec; ``cluster.serve()`` then plays
# the whole open-loop story: arrivals -> admission -> balancer -> SLO
# accounting. ``contrast`` is the ServeSpec override producing the naive
# run the preset argues against (no admission, load-blind routing).

def flash_crowd(backend: BackendSpec = "sharded:2",
                kind: str = "dilos-readahead") -> ComputeCluster:
    """Bursty overload (MMPP flash crowds at ~10x the fleet's capacity).

    With ``depth/64`` admission the queue — and therefore the p99 — stays
    bounded well inside the 1 ms SLO while shed requests count on
    ``serve.shed``; the naive no-admission contrast run lets the backlog
    grow for the whole burst and violates the SLO for most requests.
    """
    serve = ("bursty:rate=100k,burst_rate=3m,on=3ms,off=5ms,clients=1m,"
             "slo=1ms,requests=6000,seed=7,admission=depth/64")
    cluster = ComputeCluster(backend=backend, remote_mem_bytes=64 * MIB,
                             serve=serve)
    spec = _spec(kind, 256 * KIB)
    cluster.add_service("web1", spec, "redis", n_keys=400, value_bytes=4096)
    cluster.add_service("web2", spec, "redis", n_keys=400, value_bytes=4096)
    return cluster


def hot_key_skew(backend: BackendSpec = "sharded:2",
                 kind: str = "dilos-readahead") -> ComputeCluster:
    """Zipf-skewed keys under consistent-hash routing.

    Key affinity sends the whole hot head of the distribution to one
    tenant (watch ``tenant.kv1.served`` vs its peers and the p99); the
    ``least`` contrast run spreads load evenly at the cost of affinity.
    """
    serve = ("poisson:rate=600k,clients=1m,slo=1ms,requests=6000,seed=11,"
             "balance=hash")
    cluster = ComputeCluster(backend=backend, remote_mem_bytes=64 * MIB,
                             serve=serve)
    spec = _spec(kind, 256 * KIB)
    for name in ("kv1", "kv2", "kv3"):
        cluster.add_service(name, spec, "redis", n_keys=400,
                            value_bytes=4096, skew=1.2)
    return cluster


def slow_tenant_isolation(backend: BackendSpec = "sharded:2",
                          kind: str = "dilos-readahead") -> ComputeCluster:
    """Two fast replicas and one memory-starved laggard.

    Least-outstanding routing notices the laggard's growing queue and
    routes around it (it ends up serving a small residual share); the
    round-robin contrast run blindly gives it a third of the traffic and
    drags the whole fleet's p99 up by orders of magnitude.
    """
    serve = ("poisson:rate=900k,clients=1m,slo=1ms,requests=6000,seed=13,"
             "balance=least")
    cluster = ComputeCluster(backend=backend, remote_mem_bytes=64 * MIB,
                             serve=serve)
    fast = _spec(kind, 4 * MIB)
    laggard = _spec(kind, 128 * KIB)
    cluster.add_service("fast1", fast, "redis", n_keys=400, value_bytes=4096)
    cluster.add_service("fast2", fast, "redis", n_keys=400, value_bytes=4096)
    cluster.add_service("laggard", laggard, "redis", n_keys=400,
                        value_bytes=4096)
    return cluster


def llm_flash_crowd(backend: BackendSpec = "sharded:2",
                    kind: str = "dilos-readahead") -> ComputeCluster:
    """Bursty inference overload against two llm service tenants.

    Generation is orders of magnitude more expensive per request than a
    KV GET, so a flash crowd saturates the fleet almost immediately and
    the *time-to-first-token* tail (``serve.ttft_us``, queueing included)
    blows through the SLO without admission; the preset's token bucket
    sheds the burst overhang and keeps TTFT p99 bounded. The naive
    contrast run drops admission and lets the backlog compound.
    """
    serve = ("bursty:rate=4k,burst_rate=1m,on=3ms,off=5ms,clients=100k,"
             "slo=1ms,requests=1200,seed=23,admission=bucket/5k/16")
    cluster = ComputeCluster(backend=backend, remote_mem_bytes=64 * MIB,
                             serve=serve)
    spec = _spec(kind, 256 * KIB)
    cluster.add_service("gen1", spec, "llm", seed=47)
    cluster.add_service("gen2", spec, "llm", seed=47)
    return cluster


def kv_failover(backend: BackendSpec = "replicated:3",
                kind: str = "dilos-readahead",
                requests: int = 700,
                lease_us: float = 120.0,
                kill_at_us: float = 500.0,
                rejoin_at_us: float = 800.0):
    """The full chaos suite against the replicated KV service.

    Two KV tenants serve an open-loop Poisson stream over one redundant
    backend while the fault schedule runs: lossy replication wire
    (seeded drop + corrupt), the lease holder killed mid-run, then
    rejoined so the paced background resilver replays its journal under
    load. The lease gates requests while the holder's death is fresh
    (``kv.unavail_rejects``), failover elects a clean member once the
    lease lapses, and the end-of-run :meth:`verify` audit folds any lost
    update into the digest — the acceptance criterion is that
    ``kv.lost_updates`` reads 0 and the whole run (trace digest, final
    clock, merged metrics) is byte-identical across repeats.

    Returns ``(cluster, report)``.
    """
    serve = (f"poisson:rate=30k,clients=50k,slo=4ms,requests={requests},"
             "seed=37,balance=least")
    cluster = ComputeCluster(backend=backend, remote_mem_bytes=32 * MIB,
                             repair="resilver_period=100,resilver_batch=32",
                             serve=serve)
    spec = _spec(kind, 256 * KIB)
    for name in ("kv1", "kv2"):
        cluster.add_service(name, spec, "kv", n_keys=48, value_bytes=160,
                            skew=0.9, write_fraction=0.35, seed=41,
                            lease_us=lease_us,
                            net_faults="drop=0.002,corrupt=0.001,seed=97")
    victim = cluster.backend.member_nodes()[0]
    # Timers fire as the shared busy clock passes their deadlines while
    # handlers charge work, so the kill lands mid-write-burst and the
    # rejoin leaves the resilver running under serving load.
    cluster.clock.call_at(kill_at_us, victim.fail)
    cluster.clock.call_at(rejoin_at_us,
                          lambda: cluster.backend.rejoin(victim))
    report = cluster.serve()
    for tenant in cluster.tenants:
        service = tenant.extra.get("service")
        if service is not None and hasattr(service, "verify"):
            service.verify()
    return cluster, report


#: name -> (description, builder, naive-contrast overrides, contrast label)
SERVE_SCENARIOS: Dict[str, Tuple[str, ScenarioBuilder,
                                 Dict[str, Any], str]] = {
    "flash_crowd": (
        "bursty overload; depth admission holds the SLO, naive violates",
        flash_crowd, {"admission": "none"}, "no admission"),
    "llm_flash_crowd": (
        "inference burst; token bucket holds TTFT p99, naive violates",
        llm_flash_crowd, {"admission": "none"}, "no admission"),
    "hot_key_skew": (
        "zipf keys; consistent-hash affinity concentrates the hot head",
        hot_key_skew, {"balance": "least"}, "least-outstanding"),
    "slow_tenant_isolation": (
        "least-outstanding routes around a memory-starved laggard",
        slow_tenant_isolation, {"balance": "round_robin"}, "round-robin"),
}


def build_serve_scenario(name: str, backend: Optional[BackendSpec] = None,
                         kind: Optional[str] = None,
                         naive: bool = False) -> ComputeCluster:
    """Build a serving preset by name (fresh cluster, ready to serve).

    ``naive=True`` applies the preset's contrast overrides to the
    attached :class:`~repro.serve.ServeSpec` — the configuration the
    preset demonstrates against.
    """
    try:
        _, builder, contrast, _ = SERVE_SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown serve preset {name!r}; "
                         f"pick from {sorted(SERVE_SCENARIOS)}") from None
    kwargs: Dict[str, Any] = {}
    if backend is not None:
        kwargs["backend"] = backend
    if kind is not None:
        kwargs["kind"] = kind
    cluster = builder(**kwargs)
    if naive:
        cluster.serve_spec = cluster.serve_spec.with_overrides(**contrast)
    return cluster


SCENARIOS: Dict[str, Tuple[str, ScenarioBuilder]] = {
    "kmeans+redis": ("k-means scan + redis GETs on a shared pool",
                     kmeans_redis),
    "stream-duo": ("two identical streamers (fairness smoke)", stream_duo),
    "mixed-trio": ("k-means + redis + streamer on one pool", mixed_trio),
}

#: Backends ``repair_demo`` accepts (redundant ones only).
REPAIR_DEMO_BACKENDS = ("replicated:2", "replicated:3", "parity:2+1",
                        "parity:3+1")


def build_scenario(name: str, backend: Optional[BackendSpec] = None,
                   quantum_us: Optional[float] = None,
                   kind: Optional[str] = None) -> ComputeCluster:
    """Build a preset by name, optionally overriding the backend spec,
    scheduling quantum, or kernel kind."""
    try:
        _, builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"pick from {sorted(SCENARIOS)}") from None
    kwargs = {}
    if backend is not None:
        kwargs["backend"] = backend
    if quantum_us is not None:
        kwargs["quantum_us"] = quantum_us
    if kind is not None:
        kwargs["kind"] = kind
    return builder(**kwargs)


__all__ = [
    "REPAIR_DEMO_BACKENDS",
    "SCENARIOS",
    "SERVE_SCENARIOS",
    "build_scenario",
    "build_serve_scenario",
    "flash_crowd",
    "hot_key_skew",
    "kv_failover",
    "llm_flash_crowd",
    "repair_demo",
    "kmeans_redis",
    "kmeans_tenant",
    "mixed_trio",
    "redis_get_tenant",
    "seqread_tenant",
    "slow_tenant_isolation",
    "stream_duo",
]
