"""The compatibility layer: a model of DiLOS' custom ELF loader (§5).

DiLOS loads unmodified Linux binaries and patches their symbol tables so
``malloc``/``free`` resolve to the DDC allocator (``ddc_malloc`` uses
``mmap(MAP_DDC)`` memory underneath). Guides use the same loader to *hook*
application functions — wrap a symbol with an observer — which is how the
Redis prefetch guide learns the traversal position without any change to
the Redis source.

In the simulation an "application binary" is a symbol table mapping names
to callables; workloads that want binary compatibility call through
:class:`LoadedBinary` rather than holding direct references.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

Symbol = Callable[..., Any]


class LoadedBinary:
    """An application binary after loading: a patched symbol table."""

    def __init__(self, symbols: Dict[str, Symbol]) -> None:
        self._symbols = dict(symbols)

    def sym(self, name: str) -> Symbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        return self.sym(name)(*args, **kwargs)

    def defined(self, name: str) -> bool:
        return name in self._symbols

    def _rebind(self, name: str, target: Symbol) -> None:
        self._symbols[name] = target


class ElfLoader:
    """Loads binaries, patching allocation symbols to their DDC versions."""

    #: Symbols rewritten at load time to DDC equivalents.
    PATCHED = ("malloc", "free")

    def __init__(self, ddc_malloc: Symbol, ddc_free: Symbol) -> None:
        self._ddc_malloc = ddc_malloc
        self._ddc_free = ddc_free
        self.patched_symbols = 0

    def load(self, symbols: Dict[str, Symbol]) -> LoadedBinary:
        """Load a binary; its malloc/free now allocate disaggregated memory."""
        binary = LoadedBinary(symbols)
        if binary.defined("malloc"):
            binary._rebind("malloc", self._ddc_malloc)
            self.patched_symbols += 1
        if binary.defined("free"):
            binary._rebind("free", self._ddc_free)
            self.patched_symbols += 1
        return binary

    @staticmethod
    def hook(binary: LoadedBinary, name: str,
             wrapper: Callable[[Symbol], Symbol]) -> None:
        """Wrap symbol ``name``: ``wrapper(original)`` replaces it.

        This is the guide hooking interface of §5 — guides observe
        application calls (e.g. a list-traversal entry point) without the
        application being modified.
        """
        original = binary.sym(name)
        binary._rebind(name, wrapper(original))
