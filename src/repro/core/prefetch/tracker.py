"""The PTE hit tracker (§4.3).

DiLOS has no swap cache, so it cannot learn prefetch effectiveness from
minor-fault statistics the way Linux does. Instead, prefetched pages are
mapped immediately and this tracker later *scans their accessed bits*: a
prefetched PTE whose accessed bit is set was useful; one still clear past a
grace period was wasted. Scans happen inside fault windows, where the
handler is waiting on the wire anyway, so tracking adds no critical-path
latency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.common.clock import Clock
from repro.mem import pte as pte_mod
from repro.mem.page_table import PageTable
from repro.net.latency import LatencyModel
from repro.obs.tracer import NULL_TRACER


class PteHitTracker:
    """Scans accessed bits of recently prefetched PTEs."""

    #: A prefetched page unreferenced for this long counts as a miss.
    GRACE_US = 40.0

    def __init__(self, clock: Clock, page_table: PageTable,
                 model: LatencyModel, ema_alpha: float = 0.2,
                 tracer=NULL_TRACER) -> None:
        self._clock = clock
        self._pt = page_table
        self._model = model
        self._alpha = ema_alpha
        self._tracer = tracer
        self._pending: Deque[Tuple[int, float]] = deque()
        #: Optimistic prior so cold-start prefetching opens a full window.
        self._hit_ratio = 1.0
        self.hits = 0
        self.misses = 0
        self.scanned = 0

    def note_installed(self, vpn: int) -> None:
        """Record that a prefetched page was just mapped."""
        self._pending.append((vpn, self._clock.now))

    def hit_ratio(self) -> float:
        return self._hit_ratio

    def scan(self, budget: int = 64) -> None:
        """Classify up to ``budget`` matured entries; charges scan time."""
        matured = 0
        deadline = self._clock.now - self.GRACE_US
        while self._pending and matured < budget:
            vpn, installed_at = self._pending[0]
            entry = self._pt.get(vpn)
            hit = pte_mod.is_present(entry) and pte_mod.is_accessed(entry)
            if not hit and installed_at > deadline:
                break  # not yet matured; later entries are younger still
            self._pending.popleft()
            matured += 1
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            self._hit_ratio = (self._alpha * (1.0 if hit else 0.0)
                               + (1.0 - self._alpha) * self._hit_ratio)
        if matured:
            self.scanned += matured
            start = self._clock.now
            self._clock.advance(matured * self._model.dilos_hit_track_per_pte)
            if self._tracer.enabled:
                self._tracer.complete(
                    "prefetch.tracker_scan", "prefetch", start,
                    self._clock.now - start,
                    {"matured": matured, "hit_ratio": self._hit_ratio})
