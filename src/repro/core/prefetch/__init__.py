"""DiLOS page prefetchers (§4.3): readahead, Leap trend-based, hit tracker."""

from repro.core.prefetch.base import NoPrefetcher, Prefetcher, PrefetchOps
from repro.core.prefetch.readahead import ReadaheadPrefetcher
from repro.core.prefetch.tracker import PteHitTracker
from repro.core.prefetch.stride import StridePrefetcher
from repro.core.prefetch.trend import TrendPrefetcher


def make_prefetcher(name: str, window: int = 8, history: int = 32,
                    max_window: int = 8) -> Prefetcher:
    """Build a prefetcher by its §6 presentation name."""
    if name == "none":
        return NoPrefetcher()
    if name == "readahead":
        return ReadaheadPrefetcher(base_window=window)
    if name == "trend":
        return TrendPrefetcher(history=history, max_window=max_window)
    if name == "stride":
        return StridePrefetcher(max_window=max_window)
    raise ValueError(f"unknown prefetcher {name!r}")


__all__ = [
    "NoPrefetcher",
    "Prefetcher",
    "PrefetchOps",
    "PteHitTracker",
    "ReadaheadPrefetcher",
    "StridePrefetcher",
    "TrendPrefetcher",
    "make_prefetcher",
]
