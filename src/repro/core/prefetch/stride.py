"""A multi-stream stride prefetcher (extension beyond the paper's two).

Readahead assumes one forward stream; Leap's majority vote assumes one
dominant stride across *all* faults. Neither handles a workload that
interleaves several independent sequential streams — e.g. quicksort's
partition walking the array from both ends, or a merge reading two runs.
This prefetcher keeps a small table of streams (classic IP/stream stride
prefetching, as in hardware L2 prefetchers): each fault is matched to the
stream whose prediction it hits (confidence up) or whose last address is
nearest (stride retrained); confident streams prefetch along their own
stride. It plugs into the same :class:`PrefetchOps` interface, selected
with ``prefetcher="stride"``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.prefetch.base import Prefetcher, PrefetchOps


class _Stream:
    __slots__ = ("last_vpn", "stride", "confidence", "age")

    def __init__(self, vpn: int) -> None:
        self.last_vpn = vpn
        self.stride = 0
        self.confidence = 0
        self.age = 0


class StridePrefetcher(Prefetcher):
    """Per-stream stride detection over a small LRU stream table."""

    name = "stride"

    #: A fault within this many pages of a stream's last access retrains
    #: that stream instead of allocating a new one.
    MATCH_DISTANCE = 64
    #: Predictions needed before a stream may prefetch.
    MIN_CONFIDENCE = 2

    def __init__(self, max_streams: int = 8, max_window: int = 8) -> None:
        if max_streams < 1 or max_window < 1:
            raise ValueError("need at least one stream and a window")
        self.max_streams = max_streams
        self.max_window = max_window
        self._streams: List[_Stream] = []
        self.issued = 0

    def _find_stream(self, vpn: int) -> Optional[_Stream]:
        # Exact prediction hit first, then nearest within range.
        best = None
        best_distance = self.MATCH_DISTANCE + 1
        for stream in self._streams:
            if stream.stride and stream.last_vpn + stream.stride == vpn:
                return stream
            distance = abs(vpn - stream.last_vpn)
            if distance < best_distance:
                best = stream
                best_distance = distance
        return best if best_distance <= self.MATCH_DISTANCE else None

    def on_major_fault(self, vpn: int, ops: PrefetchOps) -> None:
        for stream in self._streams:
            stream.age += 1
        stream = self._find_stream(vpn)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                self._streams.remove(max(self._streams, key=lambda s: s.age))
            self._streams.append(_Stream(vpn))
            return
        stride = vpn - stream.last_vpn
        if stride == 0:
            return
        if stride == stream.stride:
            stream.confidence = min(stream.confidence + 1, 8)
        else:
            stream.stride = stride
            stream.confidence = 1
        stream.last_vpn = vpn
        stream.age = 0
        if stream.confidence < self.MIN_CONFIDENCE:
            return
        window = max(1, min(self.max_window,
                            int(round(self.max_window * ops.hit_ratio()))))
        for step in range(1, window):
            target = vpn + stream.stride * step
            if target >= 0 and ops.prefetch(target):
                self.issued += 1
