"""Linux-style readahead prefetcher.

Models the swap readahead DiLOS ships as one of its two general-purpose
prefetchers: on a major fault, fetch the next ``window`` pages. The window
scales with the measured hit ratio (the VMA-based readahead heuristic [28]),
between a floor of 2 and the configured cluster size (Linux's swap cluster
default is 8 = 2**page_cluster).
"""

from __future__ import annotations

from repro.core.prefetch.base import Prefetcher, PrefetchOps


class ReadaheadPrefetcher(Prefetcher):
    """Sequential next-N-pages prefetch with hit-ratio window scaling."""

    name = "readahead"

    def __init__(self, base_window: int = 8, min_window: int = 2) -> None:
        if base_window < 1:
            raise ValueError("window must be >= 1")
        self.base_window = base_window
        self.min_window = min(min_window, base_window)
        self.issued = 0

    def current_window(self, ops: PrefetchOps) -> int:
        scaled = int(round(self.base_window * ops.hit_ratio()))
        return max(self.min_window, min(self.base_window, scaled))

    def on_major_fault(self, vpn: int, ops: PrefetchOps) -> None:
        window = self.current_window(ops)
        for offset in range(1, window):
            if ops.prefetch(vpn + offset):
                self.issued += 1
