"""Prefetcher interface.

Prefetchers run *inside the fault window*: the handler issues its RDMA fetch
asynchronously and, while the 4 KiB page is on the wire (2-3 us), runs the
PTE hit tracker and the prefetcher. The kernel hands the prefetcher a
:class:`PrefetchOps` capability object instead of raw internals, so guides
and built-ins share the same surface.
"""

from __future__ import annotations

import abc
from typing import List, Protocol


class PrefetchOps(Protocol):
    """What a prefetcher may do, as granted by the kernel."""

    def prefetch(self, vpn: int) -> bool:
        """Issue an async fetch of ``vpn`` on the prefetch QP.

        Returns False if the page is not remote or no frame is available
        (prefetch never steals the fault path's reserve frames).
        """

    def hit_ratio(self) -> float:
        """Recent prefetch hit ratio from the PTE hit tracker (0..1)."""

    def recent_faults(self) -> List[int]:
        """Most recent major-fault VPNs, oldest first."""


class Prefetcher(abc.ABC):
    """Base class for page prefetch policies."""

    name = "abstract"

    @abc.abstractmethod
    def on_major_fault(self, vpn: int, ops: PrefetchOps) -> None:
        """Called once per major fault, inside the fetch window."""


class NoPrefetcher(Prefetcher):
    """The §6 ``no-prefetch`` configuration."""

    name = "none"

    def on_major_fault(self, vpn: int, ops: PrefetchOps) -> None:
        return None
