"""Leap's majority-trend prefetcher [49], as shipped in DiLOS.

Leap detects the dominant stride in the recent page-access history with a
Boyer-Moore majority vote over consecutive deltas. With a majority stride it
prefetches along that stride; without one (irregular access) it stays quiet,
which is why both general-purpose prefetchers gain nothing on Redis LRANGE
(§6.2) — pointer-chasing has no majority stride.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.prefetch.base import Prefetcher, PrefetchOps


def majority_delta(deltas) -> Optional[int]:
    """Boyer-Moore majority vote; returns the delta only if it truly holds
    a strict majority of the samples."""
    deltas = list(deltas)
    if not deltas:
        return None
    candidate, count = deltas[0], 0
    for delta in deltas:
        if count == 0:
            candidate = delta
        count += 1 if delta == candidate else -1
    if sum(1 for d in deltas if d == candidate) * 2 > len(deltas):
        return candidate
    return None


class TrendPrefetcher(Prefetcher):
    """Majority-stride detection with hit-ratio window scaling."""

    name = "trend"

    #: Need at least this many delta samples before trusting a trend.
    MIN_SAMPLES = 4

    def __init__(self, history: int = 32, max_window: int = 8,
                 min_window: int = 1) -> None:
        self.history = history
        self.max_window = max_window
        self.min_window = min_window
        self._faults: Deque[int] = deque(maxlen=history)
        self.issued = 0
        self.trend_hits = 0
        self.trend_misses = 0

    def detect(self) -> Optional[int]:
        """The current majority stride, if any."""
        if len(self._faults) < self.MIN_SAMPLES + 1:
            return None
        faults = list(self._faults)
        deltas = [b - a for a, b in zip(faults, faults[1:])]
        stride = majority_delta(deltas)
        if stride == 0:
            return None
        return stride

    def on_major_fault(self, vpn: int, ops: PrefetchOps) -> None:
        self._faults.append(vpn)
        stride = self.detect()
        if stride is None:
            self.trend_misses += 1
            return
        self.trend_hits += 1
        window = max(self.min_window,
                     min(self.max_window,
                         int(round(self.max_window * ops.hit_ratio()))))
        for step in range(1, window):
            target = vpn + stride * step
            if target >= 0 and ops.prefetch(target):
                self.issued += 1
