"""The declarative boot layer: one spec, one registry, every kernel.

Historically each entry point (``repro.harness.experiment.make_system``,
the CLI, ad-hoc scripts) privately rebuilt the same boot sequence with a
string-kind ``if/elif`` ladder, a fresh :class:`~repro.common.clock.Clock`
and a single :class:`~repro.mem.remote.MemoryNode`. That made the
multi-node backends in :mod:`repro.mem.cluster` unreachable from every
standard path, and meant no two computing nodes could share a timeline or
a memory pool. This module replaces those parallel ladders:

* :class:`SystemSpec` — a declarative description of one computing node:
  kernel kind, memory sizes, backend spec, observability, fault plan and
  config overrides. ``spec.boot()`` is the only boot path.
* the **kernel registry** — presentation keys (``"fastswap"``,
  ``"dilos-readahead"``, ``"aifm-rdma"``, ...) map to builder functions;
  :func:`register_kernel` adds new kernels without touching any caller.
* the **backend registry** — backend spec strings (``"node"``,
  ``"sharded:4"``, ``"replicated:3"``, ``"parity:4+1"``) map to factories
  over :mod:`repro.mem.cluster`; :func:`make_backend` also passes through
  ready backend objects so many specs can share one cluster.

``make_system`` in :mod:`repro.harness.experiment` is now a thin
compatibility shim over ``SystemSpec.boot()``; a single-node spec boots a
bit-identical system (the golden-master suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.common.clock import Clock
# The shared ``kind:key=value,...`` grammar every spec knob (backend=,
# serve=, repair=, net_faults=, topology=) parses with. It lives in
# repro.common so the knob modules below us in the import graph can use
# it too; this re-export is the public face for spec authors.
from repro.common.specparse import Cast, parse_kv_spec, split_kind
from repro.common.units import MIB, PAGE_SIZE, align_up
from repro.mem.cluster import (
    ParityStripedMemory,
    ReplicatedMemory,
    ShardedMemory,
)
from repro.mem.pool import PooledMemory
from repro.mem.remote import MemoryNode
from repro.mem.repair import RepairManager, RepairPolicy, coerce_repair_policy
from repro.net.faults import (
    FaultPlan,
    RetryPolicy,
    coerce_fault_plan,
    coerce_retry_policy,
)
from repro.net.topology import FabricPort, RackTopology
from repro.obs import Observability
from repro.obs.tracer import NULL_TRACER

#: A backend is anything with the :class:`~repro.mem.remote.MemoryNode`
#: data/slot surface: ``alloc_slot``/``free_slot``/``slot_offset`` and
#: ``read_bytes``/``write_bytes`` plus ``capacity``.
BackendLike = Any
#: What a spec's ``backend`` field accepts: a registry spec string, a
#: ready backend object (shared clusters), or ``None`` (same as "node").
BackendSpec = Union[str, BackendLike, None]

KernelBuilder = Callable[["SystemSpec", Optional[BackendLike]], Any]
BackendFactory = Callable[[str, int], BackendLike]

_KERNELS: Dict[str, KernelBuilder] = {}
_BACKENDS: Dict[str, BackendFactory] = {}


# -- the kernel registry -----------------------------------------------------

def register_kernel(kind: str) -> Callable[[KernelBuilder], KernelBuilder]:
    """Register a builder for presentation key ``kind`` (decorator).

    The builder receives the :class:`SystemSpec` and the already-built
    backend (``None`` means "build your default single node") and returns
    a booted system. Registering an existing key raises — replace a
    kernel by name only deliberately, via :func:`unregister_kernel`.
    """
    def deco(builder: KernelBuilder) -> KernelBuilder:
        if kind in _KERNELS:
            raise ValueError(f"kernel kind {kind!r} already registered")
        _KERNELS[kind] = builder
        return builder
    return deco


def unregister_kernel(kind: str) -> None:
    """Remove a registered kernel kind (tests/extensions only)."""
    _KERNELS.pop(kind, None)


def kernel_kinds() -> Tuple[str, ...]:
    """All registered presentation keys, in registration order."""
    return tuple(_KERNELS)


def kernel_builder(kind: str) -> KernelBuilder:
    """The registered builder for ``kind``; raises with the valid keys."""
    try:
        return _KERNELS[kind]
    except KeyError:
        raise ValueError(f"unknown system kind {kind!r}; "
                         f"pick from {kernel_kinds()}") from None


# -- the backend registry ----------------------------------------------------

def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Register a backend factory under spec prefix ``name`` (decorator).

    The factory receives the argument text after the colon (``""`` when
    absent) and the total remote capacity in bytes.
    """
    def deco(factory: BackendFactory) -> BackendFactory:
        if name in _BACKENDS:
            raise ValueError(f"backend kind {name!r} already registered")
        _BACKENDS[name] = factory
        return factory
    return deco


def backend_kinds() -> Tuple[str, ...]:
    """All registered backend spec prefixes, in registration order."""
    return tuple(_BACKENDS)


#: Spec templates for help text: every registered kind with its argument.
BACKEND_SPEC_EXAMPLES = ("node", "sharded:4", "replicated:3", "parity:4+1",
                         "pool:4/locality")


def _node_capacity(total_bytes: int, nodes: int) -> int:
    """Equal per-node capacity covering ``total_bytes`` (page-rounded)."""
    return align_up(max(1, -(-total_bytes // nodes)), PAGE_SIZE)


def _parse_count(arg: str, kind: str, minimum: int) -> int:
    try:
        count = int(arg)
    except ValueError:
        raise ValueError(
            f"backend spec {kind!r} needs an integer node count, "
            f"got {arg!r}") from None
    if count < minimum:
        raise ValueError(f"backend {kind!r} needs at least {minimum} nodes")
    return count


@register_backend("node")
def _make_single_node(arg: str, remote_bytes: int) -> MemoryNode:
    if arg:
        raise ValueError("backend 'node' takes no argument")
    return MemoryNode(align_up(remote_bytes, PAGE_SIZE))


@register_backend("sharded")
def _make_sharded(arg: str, remote_bytes: int) -> ShardedMemory:
    count = _parse_count(arg or "2", "sharded:N", 2)
    capacity = _node_capacity(remote_bytes, count)
    return ShardedMemory([MemoryNode(capacity, name=f"shard{i}")
                          for i in range(count)])


@register_backend("replicated")
def _make_replicated(arg: str, remote_bytes: int) -> ReplicatedMemory:
    count = _parse_count(arg or "2", "replicated:N", 2)
    capacity = align_up(remote_bytes, PAGE_SIZE)
    return ReplicatedMemory([MemoryNode(capacity, name=f"replica{i}")
                             for i in range(count)])


@register_backend("parity")
def _make_parity(arg: str, remote_bytes: int) -> ParityStripedMemory:
    data_txt, plus, parity_txt = (arg or "2+1").partition("+")
    k = _parse_count(data_txt, "parity:K+1", 2)
    if plus and parity_txt != "1":
        raise ValueError("parity backend supports exactly one parity node "
                         "(spec 'parity:K+1')")
    capacity = _node_capacity(remote_bytes, k)
    nodes = [MemoryNode(capacity, name=f"data{i}") for i in range(k)]
    nodes.append(MemoryNode(capacity, name="parity"))
    return ParityStripedMemory(nodes)


@register_backend("pool")
def _make_pool(arg: str, remote_bytes: int) -> PooledMemory:
    count_txt, _, policy = (arg or "2").partition("/")
    count = _parse_count(count_txt, "pool:N[/policy]", 1)
    capacity = _node_capacity(remote_bytes, count)
    return PooledMemory([MemoryNode(capacity, name=f"pool{i}")
                         for i in range(count)],
                        policy=policy or "load")


def make_backend(spec: BackendSpec, remote_bytes: int) -> BackendLike:
    """Build (or pass through) the memory backend for a spec.

    ``None`` is treated as ``"node"``. A non-string object is assumed to
    be a ready backend (a shared cluster) and is returned as-is after a
    duck-type check of the data-path surface.
    """
    if spec is None:
        spec = "node"
    if not isinstance(spec, str):
        for method in ("alloc_slot", "slot_offset", "read_bytes",
                       "write_bytes"):
            if not callable(getattr(spec, method, None)):
                raise TypeError(
                    f"backend object {spec!r} lacks required method "
                    f"{method!r}")
        return spec
    if remote_bytes <= 0:
        raise ValueError("remote capacity must be positive")
    kind, arg = split_kind(spec, default="node")
    factory = _BACKENDS.get(kind)
    if factory is None:
        raise ValueError(f"unknown backend kind {spec!r}; "
                         f"pick from {BACKEND_SPEC_EXAMPLES}")
    return factory(arg, remote_bytes)


def backend_label(spec: BackendSpec) -> str:
    """A short presentation label for a backend spec or object."""
    if spec is None:
        return "node"
    if isinstance(spec, str):
        return spec
    return type(spec).__name__


# -- the topology registry ---------------------------------------------------

#: What a spec's ``topology`` field accepts: a registry spec string, a
#: ready :class:`~repro.net.topology.RackTopology` (shared fabrics), a
#: pre-bound :class:`~repro.net.topology.FabricPort` (the rack
#: scheduler's per-tenant view), or ``None`` (the flat model).
TopologySpec = Union[str, RackTopology, FabricPort, None]
TopologyFactory = Callable[[str], Optional[RackTopology]]

_TOPOLOGIES: Dict[str, TopologyFactory] = {}


def register_topology(
        name: str) -> Callable[[TopologyFactory], TopologyFactory]:
    """Register a topology factory under spec prefix ``name`` (decorator).

    The factory receives the argument text after the colon (``""`` when
    absent) and returns a topology object — or ``None`` for the flat
    (uncontended, fixed-latency) model.
    """
    def deco(factory: TopologyFactory) -> TopologyFactory:
        if name in _TOPOLOGIES:
            raise ValueError(f"topology kind {name!r} already registered")
        _TOPOLOGIES[name] = factory
        return factory
    return deco


def topology_kinds() -> Tuple[str, ...]:
    """All registered topology spec prefixes, in registration order."""
    return tuple(_TOPOLOGIES)


#: Spec templates for help text, mirroring ``BACKEND_SPEC_EXAMPLES``.
TOPOLOGY_SPEC_EXAMPLES = ("flat", "rack:compute=4,mem=2,link=100,oversub=4")


@register_topology("flat")
def _make_flat(arg: str) -> None:
    if arg:
        raise ValueError("topology 'flat' takes no argument")
    return None


@register_topology("rack")
def _make_rack(arg: str) -> RackTopology:
    return RackTopology.from_spec(f"rack:{arg}")


def make_topology(spec: TopologySpec):
    """Build (or pass through) the fabric topology for a spec.

    ``None``/``"flat"``/``""`` mean the flat model (no fabric, the
    historical timing path — golden digests pin it). A ready
    :class:`RackTopology` or :class:`FabricPort` passes through so many
    specs can share one contended fabric.
    """
    if spec is None:
        return None
    if isinstance(spec, (RackTopology, FabricPort)):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot build a topology from {spec!r}")
    kind, arg = split_kind(spec, default="flat")
    factory = _TOPOLOGIES.get(kind)
    if factory is None:
        raise ValueError(f"unknown topology kind {spec!r}; "
                         f"pick from {TOPOLOGY_SPEC_EXAMPLES}")
    return factory(arg)


def topology_label(spec: TopologySpec) -> str:
    """A short presentation label for a topology spec or object."""
    if spec is None:
        return "flat"
    if isinstance(spec, str):
        return spec or "flat"
    if isinstance(spec, FabricPort):
        return spec.topology.spec()
    return spec.spec()


# -- the spec ----------------------------------------------------------------

@dataclass
class SystemSpec:
    """A declarative description of one computing node.

    ``boot()`` resolves the kernel kind through the registry, builds the
    memory backend (or reuses a shared one), and returns the booted
    system — the one boot path behind ``make_system``, the CLI, sweeps
    and the tenancy scheduler.
    """

    #: Presentation key from the kernel registry (``kernel_kinds()``).
    kind: str = "dilos-readahead"
    #: Local DRAM for the paging subsystem (AIFM: the local heap budget).
    local_mem_bytes: int = 64 * MIB
    #: Total remote capacity; cluster backends split/replicate it.
    remote_mem_bytes: int = 512 * MIB
    #: Backend spec string, ready backend object, or ``None`` ("node").
    backend: BackendSpec = "node"
    #: Observability bundle; ``None`` = fresh registry, tracing off.
    obs: Optional[Observability] = None
    #: Shared timeline; ``None`` = the system boots its own clock.
    clock: Optional[Clock] = None
    #: Network fault injection (plan or spec string, parsed here once).
    net_faults: Optional[FaultPlan] = None
    #: Retry policy for the reliable transport.
    net_retry: Optional[RetryPolicy] = None
    #: Online repair policy (resilver/scrub pacing) for cluster
    #: backends: a :class:`~repro.mem.repair.RepairPolicy`, a spec
    #: string (``"resilver_period=200,scrub_period=5000"``), or ``None``
    #: (no manager; ``rejoin`` falls back to the synchronous resilver).
    repair: Optional[RepairPolicy] = None
    #: Open-loop serving configuration for this node when it is enrolled
    #: as a service tenant: a :class:`~repro.serve.spec.ServeSpec`, a
    #: spec string (``"poisson:rate=5k,clients=1m,slo=2ms"``), or
    #: ``None``. Typed ``Any`` to keep :mod:`repro.serve` out of the
    #: boot layer's import graph (it is coerced lazily below).
    serve: Optional[Any] = None
    #: Fabric topology this node's QPs are charged against: a registry
    #: spec string (``"rack:compute=4,mem=2,oversub=4"``), a shared
    #: :class:`~repro.net.topology.RackTopology`, a pre-bound
    #: :class:`~repro.net.topology.FabricPort`, or ``None``/``"flat"``
    #: (the historical uncontended model — golden digests pin it).
    topology: TopologySpec = None
    #: Extra keyword arguments for the kernel's config dataclass.
    overrides: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.net_faults = coerce_fault_plan(self.net_faults)
        self.net_retry = coerce_retry_policy(self.net_retry)
        self.repair = coerce_repair_policy(self.repair)
        self.topology = make_topology(self.topology)
        # The port this boot charges verbs through; a bare topology is
        # bound (compute 0, backend-provided resolver) in ``boot()``.
        self._fabric_port: Optional[FabricPort] = (
            self.topology if isinstance(self.topology, FabricPort) else None)
        if self.serve is not None:
            # Deferred import: repro.serve imports the apps layer, which
            # boots through this module — a top-level import would cycle.
            from repro.serve.spec import coerce_serve_spec
            self.serve = coerce_serve_spec(self.serve)

    # -- derived views -------------------------------------------------------

    def config_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the kernel's config dataclass: the
        overrides, with the spec's fault plan/retry policy filled in
        unless explicitly overridden."""
        kwargs = dict(self.overrides)
        kwargs.setdefault("net_faults", self.net_faults)
        kwargs.setdefault("net_retry", self.net_retry)
        if self._fabric_port is not None:
            kwargs.setdefault("fabric", self._fabric_port)
        return kwargs

    def with_shared(self, clock: Clock, backend: BackendLike) -> "SystemSpec":
        """A copy of this spec bound to a shared clock and backend (the
        tenancy scheduler's view of a tenant)."""
        return replace(self, clock=clock, backend=backend)

    def boot(self):
        """Boot the described system.

        Returns a :class:`~repro.core.api.BaseSystem` for the paging
        kernels or an :class:`~repro.baselines.aifm.AifmRuntime` for the
        AIFM variants. A ``backend`` of ``"node"`` (the default) keeps
        the historical single-node boot path byte-for-byte: the kernel
        constructor builds its own :class:`~repro.mem.remote.MemoryNode`.
        """
        builder = kernel_builder(self.kind)
        backend: Optional[BackendLike]
        if self.backend is None or self.backend == "node":
            backend = None  # kernels build their default single node
        else:
            backend = make_backend(self.backend, self.remote_mem_bytes)
        if isinstance(self.topology, RackTopology) and \
                self._fabric_port is None:
            # A bare topology (not a pre-bound port): this node is
            # compute 0, routed by the backend's offset->node map when
            # it has one (PooledMemory), else everything goes home.
            resolver = getattr(backend, "node_of", None)
            self._fabric_port = self.topology.port(0, resolver=resolver)
        system = builder(self, backend)
        if self.repair is not None:
            if backend is None or \
                    not callable(getattr(backend, "attach_repair", None)):
                raise ValueError(
                    "repair= needs a cluster backend (replicated/parity/"
                    f"sharded), not {backend_label(self.backend)!r}")
            if getattr(backend, "repair", None) is None:
                # Shared backends keep the manager of the first tenant
                # that booted with a repair policy.
                tracer = self.obs.tracer if self.obs is not None \
                    else getattr(system, "tracer", NULL_TRACER)
                RepairManager(backend, system.clock, policy=self.repair,
                              tracer=tracer)
        return system


# -- the built-in kernels ----------------------------------------------------

#: DiLOS presentation flavors: key suffix -> prefetcher policy.
DILOS_FLAVORS = ("none", "readahead", "trend", "stride")


@register_kernel("fastswap")
def _boot_fastswap(spec: SystemSpec, backend: Optional[BackendLike]):
    from repro.baselines.fastswap import FastswapConfig, FastswapSystem

    config = FastswapConfig(local_mem_bytes=spec.local_mem_bytes,
                            remote_mem_bytes=spec.remote_mem_bytes,
                            **spec.config_kwargs())
    return FastswapSystem(config, memory_backend=backend, obs=spec.obs,
                          clock=spec.clock)


def _boot_dilos(spec: SystemSpec, backend: Optional[BackendLike]):
    from repro.core.config import DilosConfig
    from repro.core.dilos import DilosSystem

    flavor = spec.kind.split("-", 1)[1] if "-" in spec.kind else "readahead"
    config = DilosConfig(local_mem_bytes=spec.local_mem_bytes,
                         remote_mem_bytes=spec.remote_mem_bytes,
                         **spec.config_kwargs())
    if flavor == "tcp":
        config.prefetcher = "readahead"
        config.tcp_emulation = True
    else:
        config.prefetcher = flavor
    return DilosSystem(config, memory_backend=backend, obs=spec.obs,
                       clock=spec.clock)


def _boot_aifm(spec: SystemSpec, backend: Optional[BackendLike]):
    from repro.baselines.aifm import AifmConfig, AifmRuntime

    transport = "rdma" if spec.kind.endswith("rdma") else "tcp"
    config = AifmConfig(local_heap_bytes=spec.local_mem_bytes,
                        remote_mem_bytes=spec.remote_mem_bytes,
                        transport=transport, **spec.config_kwargs())
    return AifmRuntime(config, obs=spec.obs, memory_backend=backend,
                       clock=spec.clock)


# Registration order defines the presentation order of SYSTEM_KINDS
# (matching the paper's figure legends, as before the registry existed).
for _flavor in DILOS_FLAVORS:
    register_kernel(f"dilos-{_flavor}")(_boot_dilos)
register_kernel("dilos-tcp")(_boot_dilos)
register_kernel("aifm")(_boot_aifm)
register_kernel("aifm-rdma")(_boot_aifm)


__all__: List[str] = [
    "BACKEND_SPEC_EXAMPLES",
    "BackendLike",
    "BackendSpec",
    "Cast",
    "DILOS_FLAVORS",
    "SystemSpec",
    "TOPOLOGY_SPEC_EXAMPLES",
    "TopologySpec",
    "backend_kinds",
    "backend_label",
    "kernel_builder",
    "kernel_kinds",
    "make_backend",
    "make_topology",
    "parse_kv_spec",
    "register_backend",
    "register_kernel",
    "register_topology",
    "split_kind",
    "topology_kinds",
    "topology_label",
    "unregister_kernel",
]
