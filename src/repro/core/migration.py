"""Stop-and-copy migration of a computing node's memory image (§5.2).

The published DiLOS cannot live-migrate because queue pairs and registered
buffers live inside the RNIC. The paper points at MigrOS-style protocol
changes as the way out; here we implement the memory-image half of the
story, which is what the paging subsystem owns:

* :func:`checkpoint` quiesces the node (waits out in-flight fetches) and
  captures every materialized page — resident frames, remote pages, and
  guided-paging (ACTION) pages reconstructed through their vectors — plus
  the region table. Capture is charged as downtime proportional to the
  bytes moved.
* :func:`restore` boots a fresh node (possibly with a different local
  cache size or a different memory backend), re-creates the regions at
  identical virtual addresses, and lands every page *remote-first*: the
  restored node starts with a cold local cache and demand-pages its
  working set back in, exactly like a post-migration warmup.

Application-level state (allocator free lists, the Redis index) lives in
the application and travels with it; this module owns what the kernel
owns — the address space and the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.core.config import DilosConfig
from repro.core.dilos import DilosSystem
from repro.mem import pte as pte_mod

Tag = pte_mod.Tag


@dataclass
class MachineImage:
    """A quiesced snapshot of one computing node's disaggregated memory."""

    #: (size, ddc, name) per region, in original mmap order — replaying
    #: the same sequence reproduces identical base addresses.
    regions: List[Tuple[int, bool, str]]
    #: vpn -> page contents for every materialized page.
    pages: Dict[int, bytes]
    #: Simulated time at capture.
    captured_at_us: float
    #: Stop-and-copy downtime charged on the source (microseconds).
    downtime_us: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def image_bytes(self) -> int:
        return sum(len(content) for content in self.pages.values())


def _quiesce(system: DilosSystem) -> None:
    """Wait out every in-flight fetch so no PTE stays FETCHING."""
    kernel = system.kernel
    pending = list(kernel._fetch_ready.values())
    if pending:
        system.clock.advance_to(max(pending))


def _capture_page(system: DilosSystem, vpn: int, entry: int) -> Optional[bytes]:
    """Materialize one page's bytes regardless of where it lives."""
    tag = pte_mod.classify(entry)
    if tag is Tag.INVALID:
        return None
    if tag is Tag.LOCAL:
        return bytes(system.frames.data(pte_mod.frame_of(entry)))
    if tag is Tag.REMOTE:
        offset = system.addr_space.remote_offset_for(vpn)
        return system.node.read_bytes(offset, PAGE_SIZE)
    if tag is Tag.ACTION:
        # Rebuild from the guided-paging vector: live ranges from the
        # memory node, zeros elsewhere (dead chunks carry no data).
        offset = system.addr_space.remote_offset_for(vpn)
        page = bytearray(PAGE_SIZE)
        for start, length in system.kernel.page_manager.action_vector(vpn):
            page[start:start + length] = system.node.read_bytes(
                offset + start, length)
        return bytes(page)
    raise AssertionError(f"unquiesced page {vpn:#x} with tag {tag}")


def checkpoint(system: DilosSystem) -> MachineImage:
    """Capture a stopped copy of ``system``'s disaggregated memory."""
    _quiesce(system)
    regions = [(r.size, r.ddc, r.name) for r in system.addr_space.regions()]
    pages: Dict[int, bytes] = {}
    for region in system.addr_space.regions():
        first = region.base >> PAGE_SHIFT
        last = (region.end - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            content = _capture_page(system, vpn, system.addr_space.page_table.get(vpn))
            if content is not None:
                pages[vpn] = content
    # Downtime: the stopped node streams its image at fabric bandwidth.
    model = system.model
    nbytes = sum(len(p) for p in pages.values())
    downtime = (model.rdma_read_base
                + nbytes * model.rdma_per_byte
                + len(pages) * model.rdma_post_overhead)
    system.clock.advance(downtime)
    system.kernel.counters.add("checkpoints")
    return MachineImage(regions=regions, pages=pages,
                        captured_at_us=system.clock.now,
                        downtime_us=downtime,
                        metadata={"source": system.name})


def restore(image: MachineImage, config: Optional[DilosConfig] = None,
            memory_backend=None) -> DilosSystem:
    """Boot a new node from ``image``; pages arrive remote-first (cold)."""
    system = DilosSystem(config, memory_backend=memory_backend)
    space = system.addr_space
    for size, ddc, name in image.regions:
        space.mmap(size, ddc=ddc, name=name)
    mapped = {vpn
              for region in space.regions()
              for vpn in range((region.base >> PAGE_SHIFT),
                               ((region.end - 1) >> PAGE_SHIFT) + 1)}
    for vpn, content in image.pages.items():
        if vpn not in mapped:
            raise ValueError(
                f"image page {vpn:#x} falls outside the replayed regions")
        remote_pfn = space.remote_pfn_for(vpn)
        system.node.write_bytes(system.node.slot_offset(remote_pfn), content)
        space.page_table.set(vpn, pte_mod.make_remote(remote_pfn))
    system.kernel.counters.add("restored_pages", len(image.pages))
    return system
