"""DiLOS — the paper's contribution: kernel, page manager, prefetch, guides."""

from repro.core.api import BaseSystem
from repro.core.comm import CommModule
from repro.core.config import DilosConfig
from repro.core.dilos import DilosKernel, DilosSystem
from repro.core.guides import (
    AllocatorGuide,
    GuideContext,
    PrefetchGuide,
    coalesce_ranges,
)
from repro.core.libos import LibOS
from repro.core.loader import ElfLoader, LoadedBinary
from repro.core.page_manager import PageManager

# The boot layer imports the baseline packages, which import repro.core.*
# submodules directly — so it must come after everything above.
from repro.core.spec import (  # noqa: E402
    SystemSpec,
    backend_kinds,
    backend_label,
    kernel_kinds,
    make_backend,
    make_topology,
    register_backend,
    register_kernel,
    register_topology,
    topology_kinds,
    topology_label,
)

__all__ = [
    "AllocatorGuide",
    "BaseSystem",
    "CommModule",
    "DilosConfig",
    "DilosKernel",
    "DilosSystem",
    "ElfLoader",
    "GuideContext",
    "LibOS",
    "LoadedBinary",
    "PageManager",
    "PrefetchGuide",
    "SystemSpec",
    "backend_kinds",
    "backend_label",
    "coalesce_ranges",
    "kernel_kinds",
    "make_backend",
    "make_topology",
    "register_backend",
    "register_kernel",
    "register_topology",
    "topology_kinds",
    "topology_label",
]
