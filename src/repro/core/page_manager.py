"""DiLOS' page manager (§4.4): allocator, cleaner, reclaimer.

The design goal is that the fault path *never* pays for reclamation (the
29% Fastswap spends in Figure 1). The manager keeps a reserve of free
frames between two watermarks; a background thread (modeled as a periodic
clock timer running on a spare core, so it charges no application CPU)
rotates a clock hand over the LRU list:

* accessed pages get their accessed bit cleared (second chance);
* dirty pages are *cleaned* — written back asynchronously on the manager's
  own QP, optionally as a scatter-gather vector of live ranges when an
  allocator guide is installed (guided paging);
* clean, cold pages are evicted: PTE flips to REMOTE (or ACTION carrying
  the live-range vector) and the frame returns to the free list.

Invariant: a present PTE with a clear dirty bit implies the remote copy is
current (zero-filled pages are therefore born dirty). Eviction only ever
takes clean pages, so it never loses data.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock
from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SIZE
from repro.core.comm import CommModule
from repro.core.config import DilosConfig
from repro.core.guides import AllocatorGuide, coalesce_ranges
from repro.mem import pte as pte_mod
from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.mem.page_table import PageTable
from repro.mem.remote import NodeFailedError
from repro.mem.tlb import Tlb
from repro.obs import LegacyCounters, Observability

Range = Tuple[int, int]

#: Cap on scatter-gather vector length (§6.3: longer vectors slow sharply).
MAX_SG_SEGMENTS = 3


class PageManager:
    """Free-list allocator with watermark-driven background reclamation."""

    def __init__(
        self,
        clock: Clock,
        config: DilosConfig,
        page_table: PageTable,
        frames: FramePool,
        addr_space: AddressSpace,
        tlb: Tlb,
        comm: CommModule,
        obs: Observability,
    ) -> None:
        self._clock = clock
        self._config = config
        self._model = config.latency
        self._pt = page_table
        self._frames = frames
        self._as = addr_space
        self._tlb = tlb
        self._comm = comm
        self._registry = obs.registry
        self._tracer = obs.tracer
        self.counters = LegacyCounters(self._registry)
        total = frames.total_frames
        # Watermarks scale with the pool but never reserve more than a
        # quarter of it — a tiny cache must still mostly hold pages.
        self.low_watermark = max(4, int(total * config.low_watermark_frac))
        self.high_watermark = min(
            max(self.low_watermark + 4, int(total * config.high_watermark_frac),
                min(40, total // 8)),
            max(self.low_watermark + 4, total // 4))
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._allocator_guide: Optional[AllocatorGuide] = None
        #: vpn -> live-range vector recorded at the page's last cleaning;
        #: None means the full page was written back.
        self._clean_vectors: Dict[int, Optional[List[Range]]] = {}
        self._timer_armed = False
        #: Pure-rotation ticks elided by :meth:`_tick`; replayed exactly
        #: (as one cyclic shift) before the next real LRU access.
        self._deferred_ticks = 0
        #: Page-table unmap epoch as of the last moment the LRU provably
        #: held no stale (unmapped) entries.
        self._unmaps_seen = page_table.unmap_epoch

    # -- configuration -------------------------------------------------------

    def set_allocator_guide(self, guide: Optional[AllocatorGuide]) -> None:
        self._allocator_guide = guide

    def start(self) -> None:
        """Arm the background thread's periodic wakeup."""
        if not self._timer_armed and not self._config.direct_reclaim_only:
            self._timer_armed = True
            self._clock.call_after(self._config.cleaner_period_us, self._tick)

    # -- allocation -----------------------------------------------------------

    def alloc_frame_for_fault(self) -> Tuple[int, float]:
        """A frame for the fault path; returns ``(frame, inline_reclaim_us)``.

        ``inline_reclaim_us`` is nonzero only when eager background
        reclamation fell behind (or the ``direct_reclaim_only`` ablation is
        on) and the handler had to reclaim synchronously — the cost DiLOS'
        design exists to avoid.
        """
        inline_us = 0.0
        if self._config.direct_reclaim_only:
            if self._frames.free_frames <= self.low_watermark:
                inline_us += self._direct_reclaim(
                    self.high_watermark - self._frames.free_frames)
        elif self._frames.free_frames == 0:
            inline_us += self._direct_reclaim(self.low_watermark)
        if self._frames.free_frames == 0:
            raise OutOfMemoryError("no reclaimable local pages")
        return self._frames.alloc(), inline_us

    def alloc_frame_for_prefetch(self) -> Optional[int]:
        """A frame for prefetch; never dips into the fault-path reserve."""
        if self._frames.free_frames <= self.low_watermark:
            self._registry.add("prefetch.skipped_no_frames")
            return None
        return self._frames.alloc()

    def insert(self, vpn: int) -> None:
        """Register a newly mapped page with the LRU clock."""
        if self._deferred_ticks:
            self._replay_rotation()
        self._lru[vpn] = None
        self._lru.move_to_end(vpn)

    def drop(self, vpn: int) -> None:
        """Forget a page (munmap/free); caller handles PTE and frame."""
        if self._deferred_ticks:
            self._replay_rotation()
        self._lru.pop(vpn, None)
        self._clean_vectors.pop(vpn, None)
        # The unmap that motivated this drop (if any) left no stale LRU
        # entry — the line above removed it. Every kernel unmap path pairs
        # its PTE clear with a drop()/evict, so the LRU is stale-free again.
        self._unmaps_seen = self._pt.unmap_epoch

    @property
    def resident_pages(self) -> int:
        return len(self._lru)

    # -- guided paging accessors ------------------------------------------------

    def action_vector(self, vpn: int) -> List[Range]:
        """The live-range vector recorded for an ACTION-evicted page."""
        vector = self._clean_vectors.get(vpn)
        if vector is None:
            raise ValueError(f"page {vpn:#x} has no recorded action vector")
        return vector

    # -- background thread -------------------------------------------------------

    def _tick(self) -> None:
        pt = self._pt
        if (not pt.dirty_vpns and pt.unmap_epoch == self._unmaps_seen
                and self._frames.free_frames >= self.high_watermark):
            # Provably a no-op pass: no PTE anywhere is dirty (nothing to
            # clean), no unmap since the LRU was last stale-free (nothing
            # to drop), and the free list sits at the high watermark (no
            # reclaim deficit). Such a pass reduces to a cyclic shift of
            # the LRU by the scan budget — defer it and replay the
            # accumulated shift lazily before the next real LRU access.
            self._deferred_ticks += 1
        else:
            if self._deferred_ticks:
                self._replay_rotation()
            self.cleaner_pass(self._config.clean_batch)
            deficit = self.high_watermark - self._frames.free_frames
            if deficit > 0:
                self.reclaimer_pass(min(deficit, self._config.reclaim_batch))
        self._clock.call_after(self._config.cleaner_period_us, self._tick)

    def _replay_rotation(self) -> None:
        """Apply the deferred pure-rotation ticks as one cyclic shift.

        Exact replay: between deferral and replay no operation observed or
        mutated the LRU (every mutator replays first), so ``t`` deferred
        passes of budget ``b`` equal one left-rotation by ``(min(b, n) *
        t) % n`` — each pass pops the front ``min(b, n)`` entries and
        re-appends them in order, with no PTE reads or side effects
        because nothing was dirty, stale, or reclaimable.
        """
        ticks, self._deferred_ticks = self._deferred_ticks, 0
        lru = self._lru
        n = len(lru)
        if not ticks or n == 0:
            return
        self._shift((min(self._config.clean_batch, n) * ticks) % n)

    def _shift(self, shift: int) -> None:
        """Rotate the LRU left by ``shift`` entries in O(min(s, n-s))."""
        lru = self._lru
        n = len(lru)
        if shift == 0:
            return
        if shift <= n - shift:
            pop = lru.popitem
            for _ in range(shift):
                vpn, _ = pop(last=False)
                lru[vpn] = None
        else:
            # Rotating left by shift == rotating right by n - shift: move
            # the tail block to the front, last entry first.
            move = lru.move_to_end
            for vpn in list(islice(reversed(lru), n - shift)):
                move(vpn, last=False)

    def cleaner_pass(self, budget: int) -> int:
        """Write back up to ``budget`` dirty pages; returns pages cleaned."""
        if self._deferred_ticks:
            self._replay_rotation()
        pt = self._pt
        lru = self._lru
        n = len(lru)
        if pt.unmap_epoch == self._unmaps_seen and n:
            # No stale LRU entries, so the pass visits exactly the first
            # min(budget, n) entries: each is rotated to the back and, if
            # dirty, cleaned (second_chance=False never touches accessed
            # bits). The dirty-set membership test replaces a PTE read —
            # no side effects either way — and the per-entry interleaving
            # of rotation and cleaning is preserved exactly, so any timer
            # fired by a clean's inline post overhead observes the same
            # LRU state as under the generic rotation below.
            if not pt.dirty_vpns:
                self._shift(min(budget, n) % n)
                return 0
            window = list(islice(lru, min(budget, n)))
            start = self._clock.now
            cleaned = 0
            dirty = pt.dirty_vpns
            move = lru.move_to_end
            for vpn in window:
                move(vpn)
                if vpn in dirty:
                    self._clean(vpn, self._pt.get(vpn))
                    cleaned += 1
            if cleaned and self._tracer.enabled:
                self._tracer.complete("reclaim.cleaner_pass", "reclaim",
                                      start, self._clock.now - start,
                                      {"cleaned": cleaned})
            return cleaned
        start = self._clock.now
        cleaned = 0
        for vpn in self._rotate(budget, second_chance=False):
            entry = self._pt.get(vpn)
            if pte_mod.is_dirty(entry):
                self._clean(vpn, entry)
                cleaned += 1
        if cleaned and self._tracer.enabled:
            self._tracer.complete("reclaim.cleaner_pass", "reclaim", start,
                                  self._clock.now - start,
                                  {"cleaned": cleaned})
        return cleaned

    def reclaimer_pass(self, target: int) -> int:
        """Evict up to ``target`` cold clean pages; returns pages evicted."""
        if self._deferred_ticks:
            self._replay_rotation()
        start = self._clock.now
        evicted = 0
        # Each rotation examines at most the whole LRU once.
        for vpn in self._rotate(len(self._lru), second_chance=True):
            if evicted >= target:
                break
            entry = self._pt.get(vpn)
            if pte_mod.is_dirty(entry):
                self._clean(vpn, entry)
                entry = self._pt.get(vpn)
                if pte_mod.is_dirty(entry):
                    continue  # write-back failed (node down); not evictable
            self._evict(vpn, entry)
            evicted += 1
        if evicted and self._tracer.enabled:
            self._tracer.complete("reclaim.reclaimer_pass", "reclaim", start,
                                  self._clock.now - start,
                                  {"evicted": evicted})
        return evicted

    def _rotate(self, budget: int, second_chance: bool):
        """Advance the clock hand; yields candidate VPNs.

        Pages whose accessed bit is set get the bit cleared and go to the
        back of the list instead of being yielded (when ``second_chance``).
        Stale entries (already unmapped) are dropped silently.
        """
        for _ in range(min(budget, len(self._lru))):
            if not self._lru:
                return
            vpn, _ = self._lru.popitem(last=False)
            entry = self._pt.get(vpn)
            if not pte_mod.is_present(entry):
                self._clean_vectors.pop(vpn, None)
                continue
            if second_chance and pte_mod.is_accessed(entry):
                self._pt.set(vpn, pte_mod.clear_accessed(entry))
                self._tlb.invalidate(vpn)
                self._lru[vpn] = None
                continue
            self._lru[vpn] = None  # keep position until caller evicts
            self._lru.move_to_end(vpn)
            yield vpn

    # -- clean & evict ----------------------------------------------------------

    def _clean(self, vpn: int, entry: int) -> None:
        """Write a dirty page's (live) bytes back to the memory node."""
        frame = pte_mod.frame_of(entry)
        data = self._frames.data(frame)
        remote_off = self._as.remote_offset_for(vpn)
        qp = self._comm.qp("manager")
        vector: Optional[List[Range]] = None
        if self._config.guided_paging and self._allocator_guide is not None:
            ranges = self._allocator_guide.live_ranges(vpn)
            if ranges is not None:
                vector = coalesce_ranges(ranges, MAX_SG_SEGMENTS, PAGE_SIZE)
        try:
            if vector is None:
                qp.post_write(remote_off, bytes(data))
                self._registry.add("reclaim.cleaned_full_pages")
            elif vector:
                qp.post_write_sg(
                    [(remote_off + off, bytes(data[off:off + length]))
                     for off, length in vector])
                self._registry.add("reclaim.cleaned_guided_pages")
            else:
                # No live bytes at all: nothing to write.
                self._registry.add("reclaim.cleaned_empty_pages")
        except NodeFailedError:
            # Leave the page dirty; the cleaner retries next pass (and an
            # unprotected backend keeps the data safe locally meanwhile).
            self._registry.add("net.writeback_node_failures")
            return
        self._clean_vectors[vpn] = vector
        self._pt.set(vpn, pte_mod.clear_dirty(entry))
        self._tlb.invalidate(vpn)
        self._registry.add("reclaim.pages_cleaned")

    def _evict(self, vpn: int, entry: int) -> None:
        """Unmap a clean page and free its frame."""
        assert not pte_mod.is_dirty(entry), "evicting a dirty page"
        frame = pte_mod.frame_of(entry)
        vector = self._refresh_vector(vpn)
        if self._config.guided_paging and vector is not None:
            self._clean_vectors[vpn] = vector
            self._pt.set(vpn, pte_mod.make_action(vpn))
        else:
            self._pt.set(vpn, pte_mod.make_remote(self._as.remote_pfn_for(vpn)))
        self._tlb.invalidate(vpn)
        self._frames.free(frame)
        self._lru.pop(vpn, None)
        # This unmap left no stale LRU entry (popped just above).
        self._unmaps_seen = self._pt.unmap_epoch
        self._registry.add("reclaim.pages_evicted")

    def _refresh_vector(self, vpn: int) -> Optional[List[Range]]:
        """Re-ask the guide for live ranges at eviction time (§4.4).

        Frees (e.g. Redis DEL) clear allocator bitmaps without dirtying the
        page, so the live set can shrink after the last cleaning; the
        shrunken set is always covered by what the last write-back put on
        the memory node (any *new* allocation is written by the
        application, which dirties the page and forces a re-clean before
        the next eviction). Returns None when guided paging is off, the
        guide does not manage this page, or the full page must transfer.
        """
        if not self._config.guided_paging or self._allocator_guide is None:
            return None
        ranges = self._allocator_guide.live_ranges(vpn)
        if ranges is None:
            # Not an allocator page: guided only if the last clean recorded
            # a vector (it never does for foreign pages).
            return self._clean_vectors.get(vpn)
        return coalesce_ranges(ranges, MAX_SG_SEGMENTS, PAGE_SIZE)

    def _direct_reclaim(self, want: int) -> float:
        """Inline reclamation on the fault path; returns CPU time charged."""
        if self._deferred_ticks:
            self._replay_rotation()
        start = self._clock.now
        start_free = self._frames.free_frames
        cleaned_inline = 0
        scanned = 0
        for vpn in self._rotate(len(self._lru), second_chance=False):
            scanned += 1
            if self._frames.free_frames - start_free >= want:
                break
            entry = self._pt.get(vpn)
            if pte_mod.is_dirty(entry):
                self._clean(vpn, entry)
                cleaned_inline += 1
                entry = self._pt.get(vpn)
                if pte_mod.is_dirty(entry):
                    continue  # write-back failed (node down); not evictable
            self._evict(vpn, entry)
        reclaimed = self._frames.free_frames - start_free
        self._registry.add("reclaim.direct")
        self._registry.add("reclaim.direct_reclaimed_pages", reclaimed)
        # The write-back wire time of inline cleans is not hidden: Fastswap
        # style direct reclaim pays it on the critical path.
        cost = (scanned * self._model.fastswap_reclaim_per_page
                + cleaned_inline * self._model.rdma_write_latency(PAGE_SIZE))
        self._clock.advance(cost)
        if self._tracer.enabled:
            self._tracer.complete("reclaim.direct", "reclaim", start,
                                  self._clock.now - start,
                                  {"reclaimed": reclaimed,
                                   "scanned": scanned})
        return cost
