"""The system facade applications program against.

The paper's compatibility claim is that applications keep using POSIX-ish
memory APIs (``malloc``/``free``/loads/stores) and the kernel underneath is
interchangeable. :class:`BaseSystem` is that contract: DiLOS and Fastswap
both implement it, and every workload in :mod:`repro.apps` runs unmodified
on either — only AIFM (by design) needs ported workloads.
"""

from __future__ import annotations

import abc

from repro.common.clock import Clock
from repro.common.units import PAGE_SIZE
from repro.mem.addrspace import AddressSpace, Region
from repro.mem.frames import FramePool
from repro.mem.remote import MemoryNode
from repro.mem.vm import VirtualMemory
from repro.net.latency import LatencyModel
from repro.obs import MetricsSnapshot, Observability


class BaseSystem(abc.ABC):
    """A booted computing node attached to a memory node."""

    clock: Clock
    model: LatencyModel
    node: MemoryNode
    addr_space: AddressSpace
    frames: FramePool
    vm: VirtualMemory
    #: Registry + tracer bundle; inject via the constructor's ``obs=``.
    obs: Observability

    # -- memory mapping ----------------------------------------------------

    def mmap(self, size: int, ddc: bool = True, name: str = "anon",
             writable: bool = True) -> Region:
        """Map ``size`` bytes; ``ddc=True`` pages migrate to the memory
        node; ``writable=False`` write-protects the mapping."""
        return self.addr_space.mmap(size, ddc=ddc, name=name,
                                    writable=writable)

    @abc.abstractmethod
    def munmap(self, region: Region) -> None:
        """Tear down a region: frames, PTEs and remote backing."""

    # -- memory access -------------------------------------------------------

    @property
    def memory(self) -> VirtualMemory:
        return self.vm

    # -- CPU time --------------------------------------------------------------

    def cpu(self, microseconds: float) -> None:
        """Charge application compute time."""
        self.clock.advance(microseconds)

    def cpu_cycles(self, cycles: float) -> None:
        """Charge application compute time in CPU cycles."""
        self.clock.advance(self.model.cycles(cycles))

    @property
    def sync_overhead_us(self) -> float:
        """Cost of one contended synchronization op on this kernel's
        primitives (OSv's are less mature than Linux's, §6.2)."""
        return self.model.sync_overhead_linux

    # -- introspection ------------------------------------------------------------

    @property
    def local_capacity_pages(self) -> int:
        return self.frames.total_frames

    @abc.abstractmethod
    def metrics(self) -> MetricsSnapshot:
        """A typed snapshot of every instrument the harness reports on.

        The snapshot is built from the system's
        :class:`~repro.obs.MetricsRegistry` under canonical dotted names
        (``fault.major``, ``net.bytes_read``, ...). It also implements
        the mapping protocol over ``as_flat_dict()``, so historical
        ``metrics()["major_faults"]`` subscripting keeps working.
        """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Presentation name, e.g. ``DiLOS with readahead``."""


def page_count(nbytes: int) -> int:
    """Pages needed to hold ``nbytes``."""
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
