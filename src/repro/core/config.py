"""Configuration for the DiLOS computing node."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.units import MIB
from repro.net.faults import (
    FaultPlan,
    RetryPolicy,
    coerce_fault_plan,
    coerce_retry_policy,
)
from repro.net.latency import LatencyModel


@dataclass
class DilosConfig:
    """Knobs for one DiLOS instance.

    The ablation flags (``swap_cache_mode``, ``shared_single_qp``,
    ``direct_reclaim_only``) re-introduce the general-purpose-kernel designs
    the paper argues against, so their cost can be measured directly.
    """

    #: Local DRAM available to the paging subsystem (the "local cache").
    local_mem_bytes: int = 64 * MIB
    #: Remote memory-node capacity.
    remote_mem_bytes: int = 512 * MIB
    #: ``none`` / ``readahead`` / ``trend`` (§6 names) or ``stride``
    #: (this repo's multi-stream extension).
    prefetcher: str = "readahead"
    #: Linux swap readahead cluster (2**3 pages, the kernel default).
    readahead_window: int = 8
    #: Leap trend detector: history length and max prefetch window.
    trend_history: int = 32
    trend_max_window: int = 8
    #: Free-list watermarks as fractions of total frames. The reclaimer
    #: eagerly keeps ``high`` free; the fault path dips toward ``low``.
    low_watermark_frac: float = 0.02
    high_watermark_frac: float = 0.08
    #: Background page-manager wakeup period (microseconds) and batch sizes.
    cleaner_period_us: float = 5.0
    clean_batch: int = 128
    reclaim_batch: int = 128
    #: Emulate AIFM's TCP transport: +14,000 cycles per completion (§6.2).
    tcp_emulation: bool = False
    #: Enable §4.4 guided paging (requires an allocator guide).
    guided_paging: bool = False
    #: Ablation: funnel every module through one shared QP (HoL blocking).
    shared_single_qp: bool = False
    #: Ablation: route prefetched pages through a swap-cache indirection
    #: (minor fault to map) instead of the unified page table.
    swap_cache_mode: bool = False
    #: Ablation: reclaim inline on the fault path instead of eagerly in the
    #: background (the Fastswap-style design DiLOS removes).
    direct_reclaim_only: bool = False
    #: Number of simulated cores (per-core QPs in the comm module).
    cores: int = 1
    #: Network fault injection: ``None`` (perfect wire), a
    #: :class:`repro.net.FaultPlan`, or a spec string such as
    #: ``"drop=0.01,corrupt=0.005,seed=7"`` (parsed once at config
    #: construction). When set, all remote IO is routed through the
    #: reliable transport (timeout/retry/failover).
    net_faults: Optional[FaultPlan] = None
    #: Retry policy for the reliable transport (``None`` = defaults);
    #: a :class:`repro.net.RetryPolicy`. Only used when ``net_faults``
    #: is set.
    net_retry: Optional[RetryPolicy] = None
    #: Rack-fabric attachment: a :class:`repro.net.topology.FabricPort`
    #: binding this node to a shared :class:`~repro.net.topology
    #: .RackTopology`, or ``None`` (the flat private-wire model —
    #: bit-identical to the historical timing path). Set via
    #: ``SystemSpec(topology=...)``.
    fabric: Optional[Any] = None
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        self.net_faults = coerce_fault_plan(self.net_faults)
        self.net_retry = coerce_retry_policy(self.net_retry)

    def validate(self) -> None:
        if self.local_mem_bytes <= 0 or self.remote_mem_bytes <= 0:
            raise ValueError("memory sizes must be positive")
        if self.prefetcher not in ("none", "readahead", "trend", "stride"):
            raise ValueError(f"unknown prefetcher {self.prefetcher!r}")
        if not 0.0 < self.low_watermark_frac < self.high_watermark_frac < 0.5:
            raise ValueError("watermarks must satisfy 0 < low < high < 0.5")
        if self.cores < 1:
            raise ValueError("need at least one core")
