"""App-aware guides (§4.3, §4.4).

A *guide* is a pluggable module, shipped alongside an application binary,
that refines DiLOS' default paging behaviour without modifying the
application itself:

* :class:`PrefetchGuide` — drives app-aware prefetching. On a fault it gets
  a :class:`GuideContext` through which it can issue *subpage* fetches on
  the dedicated guide QP (arriving well before the 4 KiB page, since a
  ~64 B read is ~0.6 us cheaper and rides its own queue) and chase pointers:
  the Figure 5 linked-list pattern and the Figure 11 Redis quicklist guide.

* :class:`AllocatorGuide` — drives §4.4 guided paging. It reports the live
  byte ranges within a page (from the user-level allocator's per-page
  bitmaps); the cleaner writes back only those ranges with a scatter-gather
  verb, the reclaimer records the vector in an ACTION PTE, and the fault
  handler later fetches only the vector.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Tuple

Range = Tuple[int, int]  # (offset within page, length)


class PrefetchGuide(abc.ABC):
    """App-aware prefetch policy, invoked before the default prefetcher."""

    @abc.abstractmethod
    def on_fault(self, ctx: "GuideContext", va: int) -> bool:
        """Handle a major fault at ``va``.

        Return True to claim the fault (the default prefetcher is skipped),
        False to fall through to the general-purpose prefetcher.
        """


class AllocatorGuide(abc.ABC):
    """Reports live object ranges for guided paging."""

    @abc.abstractmethod
    def live_ranges(self, vpn: int) -> Optional[List[Range]]:
        """Live byte ranges of page ``vpn``, or None to page the full 4 KiB.

        An empty list means the page holds no live data at all (it can be
        dropped without any write-back and refetched as zeros).
        """


class GuideContext:
    """Capabilities the kernel grants a prefetch guide during one fault.

    Built by the DiLOS kernel; guides never touch kernel internals.
    """

    def __init__(self, kernel, core: int = 0) -> None:
        self._kernel = kernel
        self._core = core

    @property
    def clock(self):
        return self._kernel.clock

    def prefetch_page(self, va: int) -> bool:
        """Async full-page prefetch of the page containing ``va``."""
        return self._kernel.prefetch_vpn(va >> 12)

    def fetch_subpage(self, va: int, size: int,
                      callback: Callable[[bytes], None]) -> bool:
        """Fetch ``size`` bytes at ``va`` on the guide QP.

        ``callback(data)`` runs when the subpage arrives — typically ahead
        of any in-flight 4 KiB fetch of the same page. If the page is
        already local the callback runs immediately with the local bytes.
        Returns False when the bytes are unreachable (e.g. never evicted
        and not local — nothing to chase).
        """
        return self._kernel.guide_subpage_fetch(va, size, callback, self._core)

    def peek_local(self, va: int, size: int) -> Optional[bytes]:
        """Read bytes if (and only if) the page is resident; no fault."""
        return self._kernel.peek_local(va, size)


def coalesce_ranges(ranges: List[Range], max_segments: int,
                    page_size: int = 4096) -> List[Range]:
    """Merge live ranges into at most ``max_segments`` covering segments.

    §6.3: vectorized RDMA slows sharply past three segments, so the guide
    caps vectors at three by merging the ranges separated by the smallest
    gaps — the merged segments *cover* every live byte (plus the swallowed
    gaps), trading a little bandwidth for short vectors.
    """
    if max_segments < 1:
        raise ValueError("max_segments must be >= 1")
    if not ranges:
        return []
    ordered = sorted(ranges)
    merged: List[List[int]] = []
    for start, length in ordered:
        if length <= 0:
            raise ValueError(f"non-positive range length {length}")
        if start < 0 or start + length > page_size:
            raise ValueError(f"range ({start}, {length}) outside page")
        if merged and start <= merged[-1][0] + merged[-1][1]:
            end = max(merged[-1][0] + merged[-1][1], start + length)
            merged[-1][1] = end - merged[-1][0]
        else:
            merged.append([start, length])
    while len(merged) > max_segments:
        # Merge the adjacent pair with the smallest gap between them.
        best = min(range(len(merged) - 1),
                   key=lambda i: merged[i + 1][0] - (merged[i][0] + merged[i][1]))
        end = merged[best + 1][0] + merged[best + 1][1]
        merged[best][1] = end - merged[best][0]
        del merged[best + 1]
    return [(start, length) for start, length in merged]
