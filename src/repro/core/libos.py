"""The assembled LibOS: kernel + allocator + loader, §5's compat layer.

:class:`LibOS` is what "booting DiLOS with an application" means in the
paper: a single address space containing the paging kernel, the user-level
allocator, and the ELF loader that patches ``malloc``/``free`` to the DDC
versions. Applications (or their modeled binaries) get the paper's API
surface:

* ``ddc_malloc`` / ``ddc_free`` — disaggregated allocations (internally
  ``mmap(MAP_DDC)``-backed through the bitmap-tracking allocator);
* ``load`` — bring up an unmodified binary with its allocation symbols
  rebound;
* ``enable_guided_paging`` / ``attach_prefetch_guide`` — plug in §4.3/4.4
  guides without touching the application.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.common.units import MIB
from repro.alloc.mimalloc import Mimalloc, MimallocGuide
from repro.core.config import DilosConfig
from repro.core.dilos import DilosSystem
from repro.core.guides import PrefetchGuide
from repro.core.loader import ElfLoader, LoadedBinary


class LibOS:
    """One application's private DiLOS instance."""

    def __init__(self, config: Optional[DilosConfig] = None,
                 arena_bytes: Optional[int] = None,
                 memory_backend=None) -> None:
        self.system = DilosSystem(config, memory_backend=memory_backend)
        if arena_bytes is None:
            arena_bytes = max(64 * MIB,
                              self.system.config.remote_mem_bytes // 2)
        self.allocator = Mimalloc(self.system, arena_bytes,
                                  name="ddc-heap")
        self.loader = ElfLoader(ddc_malloc=self.ddc_malloc,
                                ddc_free=self.ddc_free)

    # -- the compatibility layer's memory API (§5) --------------------------

    def ddc_malloc(self, size: int) -> int:
        """Allocate ``size`` bytes of disaggregated memory."""
        return self.allocator.malloc(size)

    def ddc_free(self, va: int) -> None:
        """Release a ``ddc_malloc`` allocation."""
        self.allocator.free(va)

    @property
    def memory(self):
        return self.system.memory

    @property
    def clock(self):
        return self.system.clock

    # -- loading unmodified binaries -------------------------------------------

    def load(self, symbols: Dict[str, Callable[..., Any]]) -> LoadedBinary:
        """Load a binary; ``malloc``/``free`` now resolve to DDC versions."""
        return self.loader.load(symbols)

    def hook(self, binary: LoadedBinary, name: str, wrapper) -> None:
        """Guide hooking interface — observe an application symbol."""
        ElfLoader.hook(binary, name, wrapper)

    # -- guides ----------------------------------------------------------------------

    def enable_guided_paging(self) -> None:
        """Turn on §4.4 guided paging backed by the allocator's bitmaps."""
        self.system.config.guided_paging = True
        self.system.kernel.register_allocator_guide(
            MimallocGuide(self.allocator))

    def attach_prefetch_guide(self, guide: PrefetchGuide) -> None:
        """Install an app-aware prefetcher (§4.3)."""
        self.system.kernel.register_prefetch_guide(guide)

    # -- introspection ------------------------------------------------------------------

    def metrics(self):
        """The system's :class:`~repro.obs.MetricsSnapshot` with heap and
        loader figures added to its ``extra`` bag."""
        metrics = self.system.metrics()
        metrics["heap_live_allocations"] = self.allocator.live_allocations
        metrics["heap_allocated_bytes"] = self.allocator.allocated_bytes
        metrics["patched_symbols"] = self.loader.patched_symbols
        return metrics
