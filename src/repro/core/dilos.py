"""The DiLOS kernel: unified-page-table paging for memory disaggregation.

§4.2's fault handler in full:

* the handler consults exactly one structure — the unified page table —
  before issuing an asynchronous one-sided READ;
* a REMOTE PTE flips to FETCHING so concurrent faulters wait instead of
  duplicating the fetch;
* the PTE hit tracker and the prefetcher run *inside* the 2-3 us window
  while the 4 KiB page is on the wire, so they add no critical-path time;
* fetched and prefetched pages are mapped immediately (no swap cache), so
  the only "minor faults" left are genuine waits on in-flight pages;
* reclamation is the page manager's background job; the handler only pops
  a frame off a free list.

ACTION PTEs carry the §4.4 guided-paging vector: pages evicted by the
scatter-gather path are refetched as exactly their live ranges.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import InvalidAddressError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.core.api import BaseSystem
from repro.core.comm import CommModule
from repro.core.config import DilosConfig
from repro.core.guides import AllocatorGuide, GuideContext, PrefetchGuide
from repro.core.page_manager import PageManager
from repro.core.prefetch import PteHitTracker, make_prefetcher
from repro.mem import pte as pte_mod
from repro.mem.addrspace import AddressSpace, Region
from repro.mem.frames import FramePool
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.mem.vm import VirtualMemory
from repro.net.qp import Completion
from repro.obs import (
    DILOS_ALIASES,
    LegacyCounters,
    MetricsSnapshot,
    Observability,
)

Tag = pte_mod.Tag


class _PrefetchOps:
    """The capability surface handed to prefetch policies."""

    def __init__(self, kernel: "DilosKernel") -> None:
        self._kernel = kernel

    def prefetch(self, vpn: int) -> bool:
        return self._kernel.prefetch_vpn(vpn)

    def hit_ratio(self) -> float:
        return self._kernel.hit_tracker.hit_ratio()

    def recent_faults(self) -> List[int]:
        return list(self._kernel.recent_faults)


class DilosKernel:
    """Page-fault handling, prefetch, and guided paging for one node."""

    def __init__(
        self,
        clock: Clock,
        config: DilosConfig,
        addr_space: AddressSpace,
        frames: FramePool,
        vm: VirtualMemory,
        node: MemoryNode,
        obs: Optional[Observability] = None,
    ) -> None:
        config.validate()
        self.clock = clock
        self.config = config
        self.model = config.latency
        self._as = addr_space
        self._pt = addr_space.page_table
        self._frames = frames
        self._vm = vm
        self._node = node
        self.obs = obs or Observability.default()
        self.registry = self.obs.registry
        self.tracer = self.obs.tracer
        self.registry.register_aliases(DILOS_ALIASES)
        #: Legacy flat-name view over the registry (``counters.get("major_faults")``).
        self.counters = LegacyCounters(self.registry)
        # Pre-register the headline counters so metrics() always carries
        # them (at zero), matching the historical flat dict's key set.
        for key in ("fault.major", "fault.minor", "fault.first_touch",
                    "prefetch.issued", "reclaim.direct",
                    "reclaim.pages_evicted", "reclaim.pages_cleaned"):
            self.registry.counter(key)
        self.breakdown = self.registry.breakdown("fault.breakdown")
        self.minor_wait = self.registry.histogram("fault.minor_wait_us")
        self.comm = CommModule(
            clock, self.model, node, cores=config.cores,
            shared_single_qp=config.shared_single_qp,
            extra_completion_delay=(self.model.tcp_extra
                                    if config.tcp_emulation else 0.0),
            tracer=self.tracer,
            fault_plan=config.net_faults,
            retry=config.net_retry,
            registry=self.registry,
            fabric=config.fabric,
        )
        self.page_manager = PageManager(
            clock, config, self._pt, frames, addr_space, vm.tlb,
            self.comm, self.obs)
        self.prefetcher = make_prefetcher(
            config.prefetcher, window=config.readahead_window,
            history=config.trend_history, max_window=config.trend_max_window)
        self.hit_tracker = PteHitTracker(clock, self._pt, self.model,
                                         tracer=self.tracer)
        self.recent_faults: deque = deque(maxlen=64)
        self._ops = _PrefetchOps(self)
        self._prefetch_guide: Optional[PrefetchGuide] = None
        self._guide_ctx = GuideContext(self)
        #: fetch token -> completion time, for FETCHING-PTE waiters.
        self._fetch_ready: Dict[int, float] = {}
        self._next_token = 1
        #: Ablation state: prefetched frames parked behind an indirection.
        self._swap_cache: Dict[int, int] = {}
        vm.attach_kernel(self.handle_fault)
        self.page_manager.start()

    # -- guide registration --------------------------------------------------

    def register_prefetch_guide(self, guide: Optional[PrefetchGuide]) -> None:
        """Install an app-aware prefetcher (a third-party binary in the
        paper's deployment model; see §4.1)."""
        self._prefetch_guide = guide

    def register_allocator_guide(self, guide: Optional[AllocatorGuide]) -> None:
        """Install the allocator guide used by §4.4 guided paging."""
        self.page_manager.set_allocator_guide(guide)

    # -- the page fault handler (§4.2) ------------------------------------------

    def handle_fault(self, va: int, is_write: bool) -> None:
        clock = self.clock
        model = self.model
        tracer = self.tracer
        vpn = va >> PAGE_SHIFT
        fault_start = clock.now
        # Two charges, not one merged sum: float addition is not
        # associative, and the golden-master suite pins the clock to the
        # exact accumulation order of the original per-component charges.
        clock.advance(model.fault_entry)
        clock.advance(model.dilos_pte_check)
        entry = self._pt.get(vpn)
        tag = pte_mod.classify(entry)

        if tag is Tag.LOCAL:
            # A prefetch install landed between the access and the handler
            # reading the PTE: the page is already here, no IO needed —
            # DiLOS' analogue of a minor fault.
            self.registry.add("fault.minor")
            self.registry.add("fault.resolved_during_exception")
            if tracer.enabled:
                tracer.instant("fault.minor", "fault", clock.now,
                               {"vpn": vpn, "kind": "resolved"})
            return

        if tag is Tag.FETCHING:
            self._wait_for_fetch(entry, vpn)
            return

        if tag is Tag.INVALID:
            self._first_touch(vpn, va)
            return

        # REMOTE or ACTION: a major fault.
        if tag is Tag.REMOTE and self._swap_cache:
            frame = self._swap_cache.pop(vpn, None)
            if frame is not None:
                # Ablation path: the page already arrived but sits behind
                # the swap-cache indirection; pay a minor fault to map it.
                clock.advance(model.fastswap_minor_fault)
                self._map(vpn, frame, dirty=False)
                self.registry.add("fault.minor")
                if tracer.enabled:
                    tracer.instant("fault.minor", "fault", clock.now,
                                   {"vpn": vpn, "kind": "swap_cache"})
                return
        self._major_fault(vpn, va, entry, tag, fault_start)

    def _wait_for_fetch(self, entry: int, vpn: int) -> None:
        """Spin until a concurrent fetch of this page completes."""
        token = pte_mod.payload(entry)
        self.registry.add("fault.minor")
        start = self.clock.now
        self.clock.advance(self.model.dilos_wait_fetch)
        ready = self._fetch_ready.get(token)
        if ready is not None:
            waited = max(0.0, ready - self.clock.now)
            self.minor_wait.record(waited)
            self.clock.advance_to(ready)
        # else: installed during our own advance; retry will hit LOCAL
        if self.tracer.enabled:
            self.tracer.complete("fault.minor_wait", "fault", start,
                                 self.clock.now - start, {"vpn": vpn})

    def _first_touch(self, vpn: int, va: int) -> None:
        """Zero-fill a never-materialized page of a mapped region."""
        region = self._as.region_for(va)  # raises InvalidAddressError
        frame, inline_us = self.page_manager.alloc_frame_for_fault()
        self.clock.advance(self.model.dilos_page_alloc + self.model.dilos_map)
        # Born dirty: the remote copy does not exist yet, and the eviction
        # invariant is "clean implies remote copy current".
        self._pt.set(vpn, pte_mod.make_local(frame, dirty=True,
                                             writable=region.writable))
        if region.ddc:
            self.page_manager.insert(vpn)
        self.registry.add("fault.first_touch")
        if inline_us:
            self.registry.add("fault.first_touch_inline_reclaims")
        if self.tracer.enabled:
            self.tracer.instant("fault.first_touch", "fault", self.clock.now,
                                {"vpn": vpn})

    def _major_fault(self, vpn: int, va: int, entry: int, tag: Tag,
                     fault_start: float) -> None:
        clock = self.clock
        model = self.model
        self.registry.add("fault.major")
        self.recent_faults.append(vpn)
        components = {
            "exception": model.fault_entry,
            "software": model.dilos_software,
        }

        frame, inline_us = self.page_manager.alloc_frame_for_fault()
        clock.advance(model.dilos_page_alloc)
        components["reclaim"] = inline_us

        token = self._issue_fetch(vpn, frame, entry, tag, module="fault")
        issue_time = clock.now
        ready = self._fetch_ready.get(token)

        if ready is None:
            # Empty guided-paging vector: the page had no live bytes and is
            # rebuilt as zeros with no wire traffic at all.
            components["fetch"] = 0.0
        else:
            # The fetch window: run the guide or the default prefetcher and
            # the hit tracker while the 4 KiB page is on the wire.
            handled = False
            if self._prefetch_guide is not None:
                handled = self._prefetch_guide.on_fault(self._guide_ctx, va)
                if handled:
                    self.registry.add("guide.handled_faults")
            if not handled:
                self.hit_tracker.scan()
                self.prefetcher.on_major_fault(vpn, self._ops)
            ready = self._fetch_ready.get(token, ready)
            clock.advance_to(ready)
            components["fetch"] = clock.now - issue_time
            if self._pt.get(vpn) == pte_mod.make_fetching(token):
                # The install never fired: the memory node died with the
                # READ in flight (its completion was marked failed). Roll
                # back so the fault can be retried or surfaced cleanly.
                self._pt.set(vpn, entry)
                self._frames.free(frame)
                self._fetch_ready.pop(token, None)
                self.registry.add("net.fetch_node_failures")
                raise NodeFailedError(
                    f"fetch of vpn {vpn} lost: memory node failed in flight")

        clock.advance(model.dilos_map)
        self.breakdown.record_fault(components)
        if self.tracer.enabled:
            self.tracer.complete("fault.major", "fault", fault_start,
                                 clock.now - fault_start,
                                 {"vpn": vpn, "components": dict(components)})

    # -- fetch machinery ---------------------------------------------------------

    def _issue_fetch(self, vpn: int, frame: int, entry: int, tag: Tag,
                     module: str) -> int:
        """Flip the PTE to FETCHING and post the READ; returns the token."""
        token = self._next_token
        self._next_token += 1
        self._pt.set(vpn, pte_mod.make_fetching(token))
        remote_off = self._as.remote_offset_for(vpn)
        into_cache = module == "prefetch" and self.config.swap_cache_mode

        try:
            return self._post_fetch(vpn, frame, entry, tag, token,
                                    remote_off, module, into_cache)
        except NodeFailedError:
            # The memory node died mid-fetch: roll the PTE back and free
            # the frame so the fault can be retried (or surfaced) cleanly.
            self._pt.set(vpn, entry)
            self._frames.free(frame)
            self._fetch_ready.pop(token, None)
            self.registry.add("net.fetch_node_failures")
            raise

    def _post_fetch(self, vpn: int, frame: int, entry: int, tag: Tag,
                    token: int, remote_off: int, module: str,
                    into_cache: bool) -> int:
        if tag is Tag.ACTION:
            vector = self.page_manager.action_vector(vpn)
            self.registry.add("guide.action_fetches")
            if not vector:
                self._install(vpn, frame, token, None, into_cache)
                return token
            segments = [(remote_off + off, length) for off, length in vector]
            completion = self.comm.qp(module).post_read_sg(
                segments,
                on_complete=lambda c, v=vector: self._install_sg(
                    vpn, frame, token, v, c, into_cache))
        else:
            completion = self.comm.qp(module).post_read(
                remote_off, PAGE_SIZE,
                on_complete=lambda c: self._install(
                    vpn, frame, token, c.data, into_cache))
        self._fetch_ready[token] = completion.time
        return token

    def _install_sg(self, vpn: int, frame: int, token: int,
                    vector: List, completion: Completion,
                    into_cache: bool) -> None:
        """Scatter a guided fetch's segments into a zeroed frame."""
        data = self._frames.data(frame)
        cursor = 0
        payload = completion.data
        for off, length in vector:
            data[off:off + length] = payload[cursor:cursor + length]
            cursor += length
        self._install(vpn, frame, token, None, into_cache)

    def _install(self, vpn: int, frame: int, token: int,
                 data: Optional[bytes], into_cache: bool) -> None:
        """Map a fetched page (or park it in the ablation swap cache)."""
        expected = pte_mod.make_fetching(token)
        if self._pt.get(vpn) != expected:
            # The mapping vanished mid-flight (munmap); drop the page.
            self._frames.free(frame)
            self._fetch_ready.pop(token, None)
            self.registry.add("net.fetches_dropped")
            return
        if data is not None:
            self._frames.data(frame)[:] = data
        self._fetch_ready.pop(token, None)
        if into_cache:
            self._pt.set(vpn, pte_mod.make_remote(self._as.remote_pfn_for(vpn)))
            self._swap_cache[vpn] = frame
            self.registry.add("swapcache.installs")
            return
        self._map(vpn, frame, dirty=False)

    def _map(self, vpn: int, frame: int, dirty: bool) -> None:
        region = self._as.region_for(vpn << PAGE_SHIFT)
        self._pt.set(vpn, pte_mod.make_local(frame, dirty=dirty,
                                             writable=region.writable))
        self.page_manager.insert(vpn)

    # -- prefetch (§4.3) -----------------------------------------------------------

    def prefetch_vpn(self, vpn: int) -> bool:
        """Async prefetch of ``vpn`` on the prefetch QP; False if skipped."""
        entry = self._pt.get(vpn)
        tag = pte_mod.classify(entry)
        if tag not in (Tag.REMOTE, Tag.ACTION):
            return False
        frame = self.page_manager.alloc_frame_for_prefetch()
        if frame is None:
            return False
        try:
            token = self._issue_fetch(vpn, frame, entry, tag,
                                      module="prefetch")
        except NodeFailedError:
            # A dead node must not take down speculative work.
            return False
        self.registry.add("prefetch.issued")
        if self.tracer.enabled:
            self.tracer.instant("prefetch.issue", "prefetch", self.clock.now,
                                {"vpn": vpn})
        ready = self._fetch_ready.get(token)
        if ready is not None:
            self.clock.call_at(ready, lambda: self.hit_tracker.note_installed(vpn))
        return True

    # -- guide support (§4.3/§4.4) ----------------------------------------------------

    def guide_subpage_fetch(self, va: int, size: int,
                            callback: Callable[[bytes], None],
                            core: int = 0) -> bool:
        """Fetch ``size`` bytes at ``va`` on the guide QP (subpaging)."""
        if size <= 0:
            raise ValueError("subpage size must be positive")
        first_vpn = va >> PAGE_SHIFT
        entry = self._pt.get(first_vpn)
        tag = pte_mod.classify(entry)
        if tag is Tag.LOCAL:
            data = self.peek_local(va, size)
            if data is not None:
                callback(data)
                return True
            return False
        if tag is Tag.INVALID:
            return False
        # Build per-page segments (remote slots are not VA-contiguous).
        segments = []
        cursor = va
        remaining = size
        while remaining > 0:
            vpn = cursor >> PAGE_SHIFT
            if not self._as.has_remote_backing(vpn):
                return False
            offset = cursor & (PAGE_SIZE - 1)
            length = min(PAGE_SIZE - offset, remaining)
            segments.append((self._as.remote_offset_for(vpn) + offset, length))
            cursor += length
            remaining -= length
        qp = self.comm.qp("guide", core)
        if len(segments) == 1:
            qp.post_read(segments[0][0], segments[0][1],
                         on_complete=lambda c: callback(c.data))
        else:
            qp.post_read_sg(segments, on_complete=lambda c: callback(c.data))
        self.registry.add("guide.subpage_fetches")
        return True

    def peek_local(self, va: int, size: int) -> Optional[bytes]:
        """Read resident bytes without faulting; None if any page is out."""
        parts = []
        cursor = va
        remaining = size
        while remaining > 0:
            vpn = cursor >> PAGE_SHIFT
            entry = self._pt.get(vpn)
            if not pte_mod.is_present(entry):
                return None
            offset = cursor & (PAGE_SIZE - 1)
            length = min(PAGE_SIZE - offset, remaining)
            frame = pte_mod.frame_of(entry)
            parts.append(bytes(self._frames.data(frame)[offset:offset + length]))
            cursor += length
            remaining -= length
        return b"".join(parts)

    # -- madvise (§5 compatibility layer) -----------------------------------------

    def madvise_willneed(self, va: int, size: int) -> int:
        """MADV_WILLNEED: prefetch the range's remote pages; returns the
        number of prefetches issued (capped by the frame reserve)."""
        if size <= 0:
            raise ValueError("madvise range must be positive")
        issued = 0
        first = va >> PAGE_SHIFT
        last = (va + size - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            if self.prefetch_vpn(vpn):
                issued += 1
        self.registry.add("madvise.willneed_pages", issued)
        return issued

    def madvise_dontneed(self, va: int, size: int) -> int:
        """MADV_DONTNEED: discard the range's pages — frames are freed
        without write-back and the contents revert to zero on next touch
        (Linux semantics for anonymous memory). Returns pages dropped."""
        if size <= 0:
            raise ValueError("madvise range must be positive")
        dropped = 0
        first = va >> PAGE_SHIFT
        last = (va + size - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            entry = self._pt.get(vpn)
            tag = pte_mod.classify(entry)
            if tag is Tag.FETCHING:
                # Let the in-flight fetch land, then discard.
                ready = self._fetch_ready.get(pte_mod.payload(entry))
                if ready is not None:
                    self.clock.advance_to(ready)
                entry = self._pt.get(vpn)
                tag = pte_mod.classify(entry)
            if tag is Tag.LOCAL:
                self._frames.free(pte_mod.frame_of(entry))
            elif tag is Tag.INVALID:
                continue
            self._pt.set(vpn, 0)
            self._vm.tlb.invalidate(vpn)
            self.page_manager.drop(vpn)
            self._as.release_remote(vpn)
            dropped += 1
        self.registry.add("madvise.dontneed_pages", dropped)
        return dropped

    # -- teardown -----------------------------------------------------------------

    def release_region(self, region: Region) -> None:
        """Free every page of a region (munmap)."""
        first = region.base >> PAGE_SHIFT
        last = (region.end - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            entry = self._pt.get(vpn)
            tag = pte_mod.classify(entry)
            if tag is Tag.LOCAL:
                self._frames.free(pte_mod.frame_of(entry))
            elif tag is Tag.FETCHING:
                # The in-flight install will see a cleared PTE and drop it.
                pass
            cached = self._swap_cache.pop(vpn, None)
            if cached is not None:
                self._frames.free(cached)
            self._pt.set(vpn, 0)
            self._vm.tlb.invalidate(vpn)
            self.page_manager.drop(vpn)
            self._as.release_remote(vpn)


class DilosSystem(BaseSystem):
    """A booted DiLOS computing node attached to a fresh memory node."""

    def __init__(self, config: Optional[DilosConfig] = None,
                 memory_backend=None,
                 obs: Optional[Observability] = None,
                 clock: Optional[Clock] = None) -> None:
        """Boot a node; ``memory_backend`` overrides the default single
        memory node (e.g. a sharded/replicated cluster from
        :mod:`repro.mem.cluster`); ``clock`` injects a shared timeline
        so independently booted systems can be co-scheduled; ``obs``
        injects a shared registry or an enabled tracer
        (``Observability.tracing()``)."""
        self.config = config or DilosConfig()
        self.config.validate()
        self.clock = clock or Clock()
        self.model = self.config.latency
        self.node = memory_backend or MemoryNode(self.config.remote_mem_bytes)
        self.frames = FramePool(self.config.local_mem_bytes // PAGE_SIZE)
        self.addr_space = AddressSpace(self.node)
        self.vm = VirtualMemory(self.clock, self.addr_space.page_table,
                                self.frames, self.model.cpu_copy_per_byte)
        self.obs = obs or Observability.default()
        self.kernel = DilosKernel(self.clock, self.config, self.addr_space,
                                  self.frames, self.vm, self.node,
                                  obs=self.obs)
        registry = self.obs.registry
        registry.gauge("net.bytes_read",
                       lambda: self.kernel.comm.stats.bytes_read)
        registry.gauge("net.bytes_written",
                       lambda: self.kernel.comm.stats.bytes_written)
        registry.gauge("tlb.hits", lambda: self.vm.tlb.hits)
        registry.gauge("tlb.misses", lambda: self.vm.tlb.misses)
        registry.gauge("prefetch.hit_ratio",
                       lambda: self.kernel.hit_tracker.hit_ratio())
        registry.gauge("reclaim.resident_pages",
                       lambda: self.kernel.page_manager.resident_pages)

    @property
    def name(self) -> str:
        if self.config.tcp_emulation:
            return "DiLOS-TCP"
        return f"DiLOS with {self.config.prefetcher}-prefetch"

    @property
    def sync_overhead_us(self) -> float:
        return self.model.sync_overhead_osv

    def munmap(self, region: Region) -> None:
        self.kernel.release_region(region)
        self.addr_space.munmap(region)

    def metrics(self) -> MetricsSnapshot:
        return self.obs.registry.snapshot(self.name, self.clock.now)
