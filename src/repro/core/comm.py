"""DiLOS' communication module (§4.5).

Requests from different paging modules must not block each other: the fault
handler's fetch must never sit behind a prefetcher's batch or the cleaner's
write-back (head-of-line blocking). The module therefore assigns one QP per
(module, core) pair — a shared-nothing layout in which any module on any
core has lock-free, blocking-free access to its own queue.

The ``shared_single_qp`` ablation collapses everything onto one QP to
measure exactly the blocking the design avoids.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.clock import Clock
from repro.net.faults import FaultPlan, RetryPolicy
from repro.net.latency import LatencyModel
from repro.net.qp import NetStats, QueuePair
from repro.net.reliable import ReliableQP
from repro.obs.tracer import NULL_TRACER

#: The paging modules that own queues (plus one per app-aware guide).
MODULES = ("fault", "prefetch", "manager", "guide")


class CommModule:
    """Owns all queue pairs of one computing node."""

    def __init__(
        self,
        clock: Clock,
        model: LatencyModel,
        remote,
        cores: int = 1,
        shared_single_qp: bool = False,
        extra_completion_delay: float = 0.0,
        tracer=NULL_TRACER,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        registry=None,
        fabric=None,
    ) -> None:
        self._clock = clock
        self._model = model
        self._remote = remote
        self._cores = cores
        self._shared = shared_single_qp
        self._extra_delay = extra_completion_delay
        self.tracer = tracer
        self.stats = NetStats()
        #: When set, every module queue is a ReliableQP (primary + one
        #: sibling for failover) riding this fault plan.
        self.fault_plan = FaultPlan.coerce(fault_plan)
        self._retry = RetryPolicy.coerce(retry) if (
            retry is not None or self.fault_plan is not None) else None
        self._registry = registry
        #: Optional :class:`~repro.net.topology.FabricPort`: every QP of
        #: this node then pays rack-link contention per verb. ``None``
        #: keeps the flat (private-wire) model bit-for-bit.
        self._fabric = fabric
        self._qps: Dict[Tuple[str, int], object] = {}

    def _make_raw(self, name: str) -> QueuePair:
        return QueuePair(
            name=name,
            clock=self._clock,
            model=self._model,
            remote=self._remote,
            stats=self.stats,
            extra_completion_delay=self._extra_delay,
            tracer=self.tracer,
            fabric=self._fabric,
        )

    def qp(self, module: str, core: int = 0):
        """The queue pair for ``module`` on ``core``.

        With no fault plan this is a raw :class:`QueuePair` (the perfect
        wire of the original model, byte-for-byte unchanged). With a
        plan, it is a :class:`ReliableQP` over a primary and one sibling
        QP so the transport has somewhere to fail over to.
        """
        if module not in MODULES:
            raise ValueError(f"unknown paging module {module!r}")
        if not 0 <= core < self._cores:
            raise ValueError(f"core {core} out of range")
        key = ("shared", 0) if self._shared else (module, core)
        qp = self._qps.get(key)
        if qp is None:
            name = f"{key[0]}@core{key[1]}"
            if self.fault_plan is None:
                qp = self._make_raw(name)
            else:
                qp = ReliableQP(
                    name=name,
                    clock=self._clock,
                    model=self._model,
                    remote=self._remote,
                    qps=[self._make_raw(name),
                         self._make_raw(f"{name}.alt")],
                    plan=self.fault_plan,
                    policy=self._retry,
                    registry=self._registry,
                    tracer=self.tracer,
                )
            self._qps[key] = qp
        return qp

    @property
    def queue_count(self) -> int:
        return len(self._qps)
