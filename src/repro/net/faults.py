"""Network fault injection: deterministic verb-level fault plans.

DiLOS §5.1 defers multi-node fault tolerance to future work, and the
fabric model in :mod:`repro.net.qp` is a perfect wire: every posted verb
completes, on time, with the bytes it carried. Real interconnects under
production traffic are not — RoCE fabrics drop and reorder under PFC
storms, optics flap, and bit errors slip past link-level CRC often enough
that end-to-end checks matter at scale. A :class:`FaultPlan` makes those
behaviors first-class in the simulation so recovery paths can be built
and measured instead of assumed.

A plan is consulted once per transmission attempt by the reliable
transport (:class:`repro.net.reliable.ReliableQP`) and returns at most
one :class:`Fault`:

* ``drop``  — the request (or its response) is lost; the sender only
  learns via its completion timeout;
* ``corrupt`` — the payload is damaged on the wire; the end-to-end
  checksum catches it at completion time;
* ``delay`` — the completion is late by ``extra_us`` (congestion, PFC
  pause); late beyond the timeout it is treated as lost;
* ``stall`` — the targeted QP is unresponsive for a window (e.g. a QP
  in RTS->SQD limbo); every verb in the window times out;
* ``flap`` — the whole link is down for a window; ditto.

Every decision is drawn from one seeded ``repro.common.rng`` stream in
verb-issue order, so a seeded workload under a seeded plan is bit-for-bit
reproducible. ``script=[...]`` replaces the random stream entirely with
an explicit per-attempt schedule, which the deterministic timing tests
use to assert exact retry timestamps.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.rng import make_rng
from repro.common.specparse import parse_kv_spec
from repro.mem.remote import NodeFailedError


def _parse_flap(value: str) -> Tuple[float, float]:
    """``"PERIOD:DOWN"`` (µs) -> ``(flap_period_us, flap_down_us)``."""
    period, _, down = value.partition(":")
    return float(period), float(down) if down else 0.0


class TransportError(NodeFailedError):
    """The reliable transport exhausted its retry budget on one verb.

    Subclasses :class:`~repro.mem.remote.NodeFailedError` so every
    existing degraded-mode path (fetch rollback, cleaner retry-next-pass,
    prefetch drop) handles a persistent network outage exactly like a
    dead memory node.
    """


def checksum(payload: bytes) -> int:
    """The end-to-end wire checksum (CRC-32) guarding every payload."""
    return zlib.crc32(payload) & 0xFFFFFFFF


class Fault:
    """One injected fault on one transmission attempt."""

    __slots__ = ("kind", "extra_us")

    def __init__(self, kind: str, extra_us: float = 0.0) -> None:
        if kind not in ("drop", "corrupt", "delay", "stall", "flap"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.kind = kind
        #: Added completion delay for ``delay`` faults.
        self.extra_us = extra_us

    def __repr__(self) -> str:
        if self.kind == "delay":
            return f"Fault(delay, +{self.extra_us:.1f}us)"
        return f"Fault({self.kind})"


#: Script entries: ``None`` (clean attempt), a fault kind string, a
#: ``("delay", extra_us)`` pair, or a ready-made :class:`Fault`.
ScriptEntry = Union[None, str, Tuple[str, float], Fault]


class FaultPlan:
    """A deterministic schedule of verb-level network faults.

    Probabilistic faults (``drop``/``corrupt``/``delay``) are drawn from
    the seeded rng per attempt; window faults (``flap``/``stall``) are
    pure functions of simulated time and hit every attempt whose post
    falls inside a window. ``max_consecutive`` caps how many *random*
    faults may hit consecutive attempts of a single verb, which lets
    property tests guarantee completion without shrinking probabilities
    to homeopathy; window faults are real outages and are never capped.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        delay_us: float = 40.0,
        flap_period_us: float = 0.0,
        flap_down_us: float = 0.0,
        max_consecutive: Optional[int] = None,
        script: Optional[Sequence[ScriptEntry]] = None,
    ) -> None:
        for name, p in (("drop", drop), ("corrupt", corrupt),
                        ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} outside [0, 1]")
        if drop + corrupt + delay > 1.0:
            raise ValueError("fault probabilities sum past 1.0")
        if delay_us < 0.0:
            raise ValueError("delay_us must be non-negative")
        if flap_period_us > 0.0 and not 0.0 <= flap_down_us < flap_period_us:
            raise ValueError("need 0 <= flap_down_us < flap_period_us")
        if max_consecutive is not None and max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        self.seed = seed
        self.drop = drop
        self.corrupt = corrupt
        self.delay = delay
        self.delay_us = delay_us
        self.flap_period_us = flap_period_us
        self.flap_down_us = flap_down_us
        self.max_consecutive = max_consecutive
        self._rng = make_rng(seed)
        self._script: Optional[List[ScriptEntry]] = (
            list(script) if script is not None else None)
        #: Extra one-shot link-down windows, ``(start_us, end_us)``.
        self._flap_windows: List[Tuple[float, float]] = []
        #: Per-QP stall windows, ``name -> [(start_us, end_us)]``.
        self._stalls: Dict[str, List[Tuple[float, float]]] = {}
        #: Injection census, ``kind -> count`` (introspection/tests).
        self.injected: Dict[str, int] = {}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """Normalize a config knob: ``None``, a plan, or a spec string."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_spec(value)
        raise TypeError(f"cannot build a FaultPlan from {value!r}")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``--net-faults`` spec: comma-separated ``key=value``.

        Keys: ``drop``, ``corrupt``, ``delay`` (probabilities),
        ``delay_us``, ``seed``, ``max_consecutive``, and
        ``flap=PERIOD:DOWN`` (microseconds). Example::

            drop=0.01,corrupt=0.005,delay=0.02,delay_us=30,seed=7,flap=2000:100
        """
        casts = {
            "drop": float, "corrupt": float, "delay": float,
            "delay_us": float, "seed": int, "max_consecutive": int,
            "flap": _parse_flap,
        }
        kwargs: Dict[str, object] = {}
        for key, value in parse_kv_spec(spec, casts,
                                        what="--net-faults").items():
            if key == "flap":
                kwargs["flap_period_us"], kwargs["flap_down_us"] = value
            else:
                kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def spec(self) -> str:
        """The round-trippable spec string for this plan's scalar knobs."""
        parts = [f"seed={self.seed}"]
        for key in ("drop", "corrupt", "delay"):
            value = getattr(self, key)
            if value:
                parts.append(f"{key}={value:g}")
        if self.delay:
            parts.append(f"delay_us={self.delay_us:g}")
        if self.flap_period_us:
            parts.append(f"flap={self.flap_period_us:g}:{self.flap_down_us:g}")
        if self.max_consecutive is not None:
            parts.append(f"max_consecutive={self.max_consecutive}")
        return ",".join(parts)

    # -- window scheduling ---------------------------------------------------

    def flap(self, start_us: float, duration_us: float) -> None:
        """Schedule a one-shot link-down window ``[start, start + dur)``."""
        if duration_us <= 0.0:
            raise ValueError("flap duration must be positive")
        self._flap_windows.append((start_us, start_us + duration_us))

    def stall(self, qp_name: str, start_us: float,
              duration_us: float) -> None:
        """Stall one QP (by name) for ``[start, start + dur)``."""
        if duration_us <= 0.0:
            raise ValueError("stall duration must be positive")
        self._stalls.setdefault(qp_name, []).append(
            (start_us, start_us + duration_us))

    def link_down(self, t: float) -> bool:
        """Is the link flapped at simulated time ``t``?"""
        if self.flap_period_us > 0.0 and self.flap_down_us > 0.0:
            if (t % self.flap_period_us) < self.flap_down_us:
                return True
        return any(start <= t < end for start, end in self._flap_windows)

    def stalled(self, qp_name: str, t: float) -> bool:
        """Is QP ``qp_name`` inside one of its stall windows at ``t``?"""
        return any(start <= t < end
                   for start, end in self._stalls.get(qp_name, ()))

    # -- the per-attempt decision --------------------------------------------

    def draw(self, qp_name: str, op: str, size: int, t: float,
             attempt: int) -> Optional[Fault]:
        """The fault (if any) hitting one transmission attempt.

        ``attempt`` is 0 for the first transmission of a verb and counts
        up across its retries; window faults always apply, random faults
        stop once ``attempt`` reaches ``max_consecutive``.
        """
        if self._script is not None:
            return self._next_scripted()
        if self.stalled(qp_name, t):
            return self._note(Fault("stall"))
        if self.link_down(t):
            return self._note(Fault("flap"))
        if (self.max_consecutive is not None
                and attempt >= self.max_consecutive):
            return None
        roll = self._rng.random()
        if roll < self.drop:
            return self._note(Fault("drop"))
        if roll < self.drop + self.corrupt:
            return self._note(Fault("corrupt"))
        if roll < self.drop + self.corrupt + self.delay:
            extra = self._rng.uniform(0.5, 1.5) * self.delay_us
            return self._note(Fault("delay", extra_us=extra))
        return None

    def _next_scripted(self) -> Optional[Fault]:
        if not self._script:
            return None
        entry = self._script.pop(0)
        if entry is None:
            return None
        if isinstance(entry, Fault):
            return self._note(entry)
        if isinstance(entry, str):
            return self._note(Fault(entry))
        kind, extra = entry
        return self._note(Fault(kind, extra_us=extra))

    def _note(self, fault: Fault) -> Fault:
        self.injected[fault.kind] = self.injected.get(fault.kind, 0) + 1
        return fault

    # -- payload corruption ----------------------------------------------------

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Damage one byte of ``payload`` (deterministically, via the
        plan rng). Empty payloads come back unchanged — the caller must
        treat a corrupt fault on an empty payload as a drop."""
        if not payload:
            return payload
        index = self._rng.randrange(len(payload))
        damaged = bytearray(payload)
        damaged[index] ^= 0xFF
        return bytes(damaged)


def coerce_fault_plan(
        value: Union[None, str, "FaultPlan"]) -> Optional["FaultPlan"]:
    """Normalize a ``net_faults`` config knob to a typed plan, once.

    The one shared parser for every kernel config: ``None`` stays ``None``
    (perfect wire), a ready :class:`FaultPlan` passes through, and a spec
    string such as ``"drop=0.01,corrupt=0.005,seed=7"`` is parsed by
    :meth:`FaultPlan.from_spec`. Config ``__post_init__`` hooks call this
    so a plan is parsed exactly once, at config construction, and the
    ``net_faults`` field carries a real ``Optional[FaultPlan]`` type
    everywhere downstream.
    """
    return FaultPlan.coerce(value)


def coerce_retry_policy(
        value: Union[None, "RetryPolicy"]) -> Optional["RetryPolicy"]:
    """Normalize a ``net_retry`` config knob: ``None`` (use the transport
    defaults when a plan is active) or a ready :class:`RetryPolicy`."""
    if value is None or isinstance(value, RetryPolicy):
        return value
    raise TypeError(f"cannot build a RetryPolicy from {value!r}")


class RetryPolicy:
    """Timeout, capped-exponential-backoff, and failover parameters.

    Retry ``k`` (1-based) is posted ``min(backoff_us * 2**(k-1),
    backoff_cap_us)`` after the failure of attempt ``k-1`` is detected
    — a lost attempt at its issue-time + ``timeout_us``, a corrupt one
    at its completion (checksum NAK). After ``failover_after``
    consecutive failures on one QP the transport switches to the next
    sibling QP. ``max_attempts`` total transmissions, then
    :class:`TransportError`.
    """

    __slots__ = ("timeout_us", "backoff_us", "backoff_cap_us",
                 "max_attempts", "failover_after")

    def __init__(self, timeout_us: float = 50.0, backoff_us: float = 10.0,
                 backoff_cap_us: float = 200.0, max_attempts: int = 8,
                 failover_after: int = 3) -> None:
        if timeout_us <= 0.0 or backoff_us < 0.0 or backoff_cap_us < 0.0:
            raise ValueError("timeouts and backoffs must be positive")
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if failover_after < 1:
            raise ValueError("failover_after must be >= 1")
        self.timeout_us = timeout_us
        self.backoff_us = backoff_us
        self.backoff_cap_us = backoff_cap_us
        self.max_attempts = max_attempts
        self.failover_after = failover_after

    def backoff(self, retry_index: int) -> float:
        """Backoff before 1-based retry ``retry_index`` (capped)."""
        if retry_index < 1:
            raise ValueError("retries are 1-based")
        return min(self.backoff_us * (2.0 ** (retry_index - 1)),
                   self.backoff_cap_us)

    @classmethod
    def coerce(cls, value) -> "RetryPolicy":
        """Normalize a config knob: ``None`` (defaults) or a policy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(f"cannot build a RetryPolicy from {value!r}")

    def __repr__(self) -> str:
        return (f"RetryPolicy(timeout={self.timeout_us}us, "
                f"backoff={self.backoff_us}us cap {self.backoff_cap_us}us, "
                f"max_attempts={self.max_attempts}, "
                f"failover_after={self.failover_after})")
