"""Rack topology: per-link bandwidth/queueing and ToR oversubscription.

The flat model charges every QP verb a fixed base latency plus per-byte
wire time on a private, uncontended link — fine for one compute node and
one memory node, wrong for a rack. Here the fabric is explicit:

* ``C`` compute nodes and ``M`` pooled memory nodes hang off one ToR.
* Compute node ``c`` has a **direct** (intra-chassis / CXL-style) link
  to its *home* memory node ``c % M`` that bypasses the ToR entirely.
* Every other compute↔memory pair crosses three links: the compute
  node's uplink, the ToR **trunk**, and the memory node's downlink.
  The trunk's capacity is the aggregate edge capacity divided by the
  oversubscription factor — at ``oversub=4`` the switch can sink only a
  quarter of what the edges can offer, the classic rack bottleneck.

Each :class:`Link` is a deterministic FIFO bandwidth server (the same
``busy_until`` serialization the QP wire model uses): a transfer waits
for the link to drain, then occupies it for ``size / bandwidth``. A
:class:`FabricPort` binds one compute node to the topology; QPs with a
port attached add the port's contention delay to every verb —
**queueing included** — so tail latency under an oversubscribed ToR is
an emergent property of which memory node the allocator picked, not a
constant. With no port attached (the default, ``topology="flat"``)
nothing in the timing path changes; the golden-master digests pin that.

Spec grammar (shared with ``backend=``/``serve=``/``repair=``, see
:mod:`repro.common.specparse`)::

    "rack:compute=4,mem=4,link=100,oversub=4"

``link`` is the edge-link bandwidth in Gbit/s; ``oversub`` >= 1 divides
the trunk. Link counters surface as canonical ``topo.*`` metrics
(per-link bytes, queueing delay, busy time, plus aggregates).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.common.specparse import parse_kv_spec, split_kind
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot

#: Maps a remote-backend byte offset to the memory-node index holding
#: it (``PooledMemory.node_of``). ``None`` routes everything home.
OffsetResolver = Callable[[int], int]

#: Bytes per microsecond per Gbit/s (1 Gbit/s = 125 bytes/µs).
_BYTES_PER_US_PER_GBPS = 125.0


class Link:
    """One duplex fabric link: a deterministic FIFO bandwidth server.

    A transfer arriving at ``t`` waits ``max(0, busy_until - t)`` for
    earlier transfers to drain, then holds the link for
    ``size * per_byte_us``. Totals (bytes, queueing, busy time) feed the
    ``topo.*`` gauges.
    """

    __slots__ = ("name", "gbps", "per_byte_us", "busy_until", "bytes",
                 "queue_us", "busy_us", "transfers")

    def __init__(self, name: str, gbps: float) -> None:
        if gbps <= 0:
            raise ValueError(f"link {name!r} bandwidth must be positive")
        self.name = name
        self.gbps = gbps
        self.per_byte_us = 1.0 / (_BYTES_PER_US_PER_GBPS * gbps)
        self.busy_until = 0.0
        self.bytes = 0
        self.queue_us = 0.0
        self.busy_us = 0.0
        self.transfers = 0

    def transmit(self, t: float, size: int) -> float:
        """Push ``size`` bytes through at time ``t``; returns the delay
        (queueing + serialization) this link contributed."""
        wait = self.busy_until - t
        if wait < 0.0:
            wait = 0.0
        serialize = size * self.per_byte_us
        self.busy_until = t + wait + serialize
        self.bytes += size
        self.queue_us += wait
        self.busy_us += serialize
        self.transfers += 1
        return wait + serialize

    def utilization(self, now_us: float) -> float:
        """Fraction of ``[0, now]`` this link spent serializing bytes."""
        return self.busy_us / now_us if now_us > 0 else 0.0

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.gbps:g}Gbps)"


class RackTopology:
    """C compute + M pooled memory nodes on one oversubscribed ToR."""

    def __init__(self, compute: int = 2, mem: int = 2,
                 link_gbps: float = 100.0, oversub: float = 1.0) -> None:
        if compute < 1 or mem < 1:
            raise ValueError("need at least one compute and one memory node")
        if oversub < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        self.compute = compute
        self.mem = mem
        self.link_gbps = link_gbps
        self.oversub = oversub
        #: Aggregate edge capacity the trunk would need to be
        #: non-blocking, divided by the oversubscription factor.
        self.trunk_gbps = link_gbps * max(compute, mem) / oversub
        self.uplinks: List[Link] = [Link(f"c{c}_up", link_gbps)
                                    for c in range(compute)]
        self.downlinks: List[Link] = [Link(f"m{m}_down", link_gbps)
                                      for m in range(mem)]
        self.trunk = Link("trunk", self.trunk_gbps)
        #: Direct chassis link from each compute node to its home
        #: memory node — traffic here never touches the ToR.
        self.direct: List[Link] = [Link(f"c{c}m{c % mem}", link_gbps)
                                   for c in range(compute)]
        self.registry = MetricsRegistry()
        for link in self.links():
            self.registry.gauge(f"topo.{link.name}.bytes",
                                lambda l=link: float(l.bytes))
            self.registry.gauge(f"topo.{link.name}.queue_us",
                                lambda l=link: l.queue_us)
            self.registry.gauge(f"topo.{link.name}.busy_us",
                                lambda l=link: l.busy_us)
        self.registry.gauge("topo.bytes",
                            lambda: float(sum(l.bytes for l in self.links())))
        self.registry.gauge("topo.queue_us",
                            lambda: sum(l.queue_us for l in self.links()))
        self.registry.gauge("topo.trunk_queue_us",
                            lambda: self.trunk.queue_us)
        self.registry.gauge("topo.trunk_crossings",
                            lambda: float(self.trunk.transfers))

    # -- structure -----------------------------------------------------------

    def home(self, compute_id: int) -> int:
        """The memory node compute node ``compute_id`` is chassis-wired
        to (its zero-ToR-hop placement target)."""
        return compute_id % self.mem

    def links(self) -> List[Link]:
        """Every link, in a stable order (metric registration order)."""
        return self.uplinks + self.downlinks + [self.trunk] + self.direct

    def path(self, compute_id: int, mem_id: int) -> Sequence[Link]:
        """The links a transfer between ``compute_id`` and ``mem_id``
        crosses, in traversal order."""
        if not 0 <= compute_id < self.compute:
            raise ValueError(f"no compute node {compute_id}")
        if not 0 <= mem_id < self.mem:
            raise ValueError(f"no memory node {mem_id}")
        if mem_id == self.home(compute_id):
            return (self.direct[compute_id],)
        return (self.uplinks[compute_id], self.trunk,
                self.downlinks[mem_id])

    # -- charging ------------------------------------------------------------

    def transmit(self, compute_id: int, mem_id: int, t: float,
                 size: int) -> float:
        """Charge one transfer along the path; returns the total fabric
        delay (per-link queueing + serialization, store-and-forward)."""
        delay = 0.0
        for link in self.path(compute_id, mem_id):
            delay += link.transmit(t + delay, size)
        return delay

    def port(self, compute_id: int,
             resolver: Optional[OffsetResolver] = None) -> "FabricPort":
        """A :class:`FabricPort` binding ``compute_id`` to this fabric."""
        return FabricPort(self, compute_id, resolver=resolver)

    # -- observability -------------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """This fabric's own ``topo.*`` snapshot."""
        return self.registry.snapshot(system=type(self).__name__)

    def link_report(self, now_us: float) -> Dict[str, Dict[str, float]]:
        """Per-link ``{bytes, queue_us, util}`` table for reports."""
        return {
            link.name: {
                "bytes": float(link.bytes),
                "queue_us": link.queue_us,
                "util": link.utilization(now_us),
            }
            for link in self.links()
        }

    def spec(self) -> str:
        """The round-trippable spec string for this topology."""
        return (f"rack:compute={self.compute},mem={self.mem},"
                f"link={self.link_gbps:g},oversub={self.oversub:g}")

    @classmethod
    def from_spec(cls, spec: str) -> "RackTopology":
        """Parse ``"rack:compute=4,mem=4,link=100,oversub=4"`` (the
        ``rack:`` prefix is optional when called directly)."""
        kind, args = split_kind(spec, default="rack")
        if kind != "rack":
            raise ValueError(f"unknown topology kind {kind!r}; "
                             "this parser handles 'rack'")
        casts = {"compute": int, "mem": int, "link": float,
                 "oversub": float}
        parsed = parse_kv_spec(args, casts, what="topology spec")
        return cls(compute=parsed.get("compute", 2),
                   mem=parsed.get("mem", 2),
                   link_gbps=parsed.get("link", 100.0),
                   oversub=parsed.get("oversub", 1.0))

    def __repr__(self) -> str:
        return (f"RackTopology(compute={self.compute}, mem={self.mem}, "
                f"link={self.link_gbps:g}Gbps, oversub={self.oversub:g})")


class FabricPort:
    """One compute node's attachment point to a :class:`RackTopology`.

    QPs holding a port charge every verb the fabric delay of the links
    between this compute node and the memory node owning the verb's
    target offset (``resolver``, typically ``PooledMemory.node_of``).
    Verbs without a resolvable offset (reliable-transport retries on
    backends without routing) are charged against the home link — the
    cheapest path, so the flat-model calibration is never *inflated* by
    guessing.
    """

    __slots__ = ("topology", "compute_id", "resolver")

    def __init__(self, topology: RackTopology, compute_id: int,
                 resolver: Optional[OffsetResolver] = None) -> None:
        if not 0 <= compute_id < topology.compute:
            raise ValueError(f"no compute node {compute_id}")
        self.topology = topology
        self.compute_id = compute_id
        self.resolver = resolver

    def charge(self, offset: Optional[int], size: int, t: float) -> float:
        """Fabric delay for ``size`` bytes toward ``offset`` at ``t``."""
        if offset is not None and self.resolver is not None:
            mem_id = self.resolver(offset)
        else:
            mem_id = self.topology.home(self.compute_id)
        return self.topology.transmit(self.compute_id, mem_id, t, size)

    def __repr__(self) -> str:
        return f"FabricPort(c{self.compute_id} on {self.topology!r})"


def coerce_topology(value) -> Optional[RackTopology]:
    """``None``/``"flat"`` -> ``None``; spec string/ready topology ->
    :class:`RackTopology` (the ``topology=`` coercion convention)."""
    if value is None or isinstance(value, RackTopology):
        return value
    if isinstance(value, FabricPort):
        return value.topology
    if isinstance(value, str):
        if value in ("", "flat"):
            return None
        return RackTopology.from_spec(value)
    raise TypeError(f"cannot build a topology from {value!r}")


__all__ = [
    "FabricPort",
    "Link",
    "OffsetResolver",
    "RackTopology",
    "coerce_topology",
]
