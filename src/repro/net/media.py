"""Backing-media latency profiles (§5.1: paging-based disaggregation vs
disk-based swapping).

DiLOS' design shortens the *software* path between exception and IO, so
its benefit depends on how large that software path is relative to the
device: dominant over RDMA far memory (~2 us per page), still visible on
modern NVMe (~10-20 us), and irrelevant once a device takes milliseconds.
These profiles swap only the wire/device constants of the latency model;
every kernel-software cost stays identical, so sweeping them isolates the
paper's claim that "DiLOS' design would be valid for NVMe drives."
"""

from __future__ import annotations

from dataclasses import replace

from repro.net.latency import LatencyModel


def rdma_100g() -> LatencyModel:
    """The paper's testbed: one-sided RDMA over 100 GbE (Figure 2)."""
    return LatencyModel()


def nvme_flash() -> LatencyModel:
    """A modern NVMe flash drive as swap backend (~10 us, ~3 GB/s)."""
    return replace(LatencyModel(),
                   rdma_read_base=10.0,
                   rdma_write_base=9.0,
                   rdma_per_byte=3.3e-4)


def sata_ssd() -> LatencyModel:
    """SATA-era flash (~70 us access, ~0.5 GB/s)."""
    return replace(LatencyModel(),
                   rdma_read_base=70.0,
                   rdma_write_base=60.0,
                   rdma_per_byte=2.0e-3)


def hdd() -> LatencyModel:
    """Spinning disk (~4 ms seek+rotate, ~150 MB/s)."""
    return replace(LatencyModel(),
                   rdma_read_base=4000.0,
                   rdma_write_base=4000.0,
                   rdma_per_byte=6.6e-3)


MEDIA_PROFILES = {
    "rdma-100g": rdma_100g,
    "nvme-flash": nvme_flash,
    "sata-ssd": sata_ssd,
    "hdd": hdd,
}
