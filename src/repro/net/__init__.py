"""Network substrate: the RDMA fabric model, fault injection, and the
reliable transport layered on top of it."""

from repro.net.faults import (
    Fault,
    FaultPlan,
    RetryPolicy,
    TransportError,
    checksum,
    coerce_fault_plan,
    coerce_retry_policy,
)
from repro.net.latency import DEFAULT_LATENCY, LatencyModel, cycles_to_us, CPU_GHZ
from repro.net.qp import Completion, NetStats, QueuePair
from repro.net.reliable import RELIABILITY_METRICS, ReliableQP
from repro.net.topology import (
    FabricPort,
    Link,
    RackTopology,
    coerce_topology,
)

__all__ = [
    "CPU_GHZ",
    "Completion",
    "DEFAULT_LATENCY",
    "FabricPort",
    "Fault",
    "FaultPlan",
    "LatencyModel",
    "Link",
    "NetStats",
    "QueuePair",
    "RELIABILITY_METRICS",
    "RackTopology",
    "ReliableQP",
    "RetryPolicy",
    "TransportError",
    "checksum",
    "coerce_fault_plan",
    "coerce_retry_policy",
    "coerce_topology",
    "cycles_to_us",
]
