"""Network substrate: the RDMA fabric model and its latency calibration."""

from repro.net.latency import DEFAULT_LATENCY, LatencyModel, cycles_to_us, CPU_GHZ
from repro.net.qp import Completion, NetStats, QueuePair

__all__ = [
    "CPU_GHZ",
    "Completion",
    "DEFAULT_LATENCY",
    "LatencyModel",
    "NetStats",
    "QueuePair",
    "cycles_to_us",
]
