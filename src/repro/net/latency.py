"""Latency model for the simulated machine.

Every constant is calibrated to a number the paper reports, so a reader can
trace each default back to a figure:

* Figure 2 gives one-sided RDMA latency vs object size: ~1.5 us for a 128 B
  read, and a 4 KiB page adds only ~0.6 us on top of that. That yields the
  ``rdma_*_base`` + ``rdma_per_byte`` affine model (0.6 us / 4096 B = 1.46e-4
  us per byte, an effective ~6.8 GB/s per queue pair, below the 100 GbE line
  rate because it includes PCIe/DMA overheads exactly as the measurement
  does).

* Figure 1 gives Fastswap's fault-handler breakdown: hardware exception +
  OS exception entry = 0.57 us; the 4 KiB fetch is the largest component
  (~46%); direct reclamation averages ~29%; the remainder is swap-subsystem
  software (swap cache allocation/insertion, page allocation, rmap).

* Figure 6 shows DiLOS cutting the software portion to a single page-table
  check plus mapping, with page allocation nearly free (a free-list pop) and
  no reclaim on the critical path (49% total reduction).

* Section 6.2 calibrates AIFM's TCP transport as 14,000 cycles slower than
  RDMA per 4 KiB transfer (6.09 us at the testbed's 2.3 GHz), and AIFM's
  remoteable-pointer dereference adds a presence check of a few cycles.

All times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Testbed CPU frequency (Intel Xeon E5-2670 v3), used to convert cycle
#: counts from the paper into microseconds.
CPU_GHZ = 2.3


def cycles_to_us(cycles: float) -> float:
    """Convert a cycle count on the 2.3 GHz testbed CPU to microseconds."""
    return cycles / (CPU_GHZ * 1000.0)


@dataclass
class LatencyModel:
    """Calibrated cost constants shared by every simulated component."""

    # --- RDMA wire model (Figure 2) ------------------------------------
    #: Fixed one-way cost of a one-sided READ (issue + NIC + fabric).
    rdma_read_base: float = 1.35
    #: Fixed cost of a one-sided WRITE (slightly cheaper: no response data).
    rdma_write_base: float = 1.15
    #: Per-byte wire/DMA cost; 4096 B adds ~0.6 us as in Figure 2.
    rdma_per_byte: float = 1.46e-4
    #: Extra cost per additional scatter-gather segment.
    rdma_sg_segment: float = 0.12
    #: Penalty per segment beyond three; Section 6.3 observes vectorized
    #: RDMA slows significantly past vectors of length three.
    rdma_sg_overlong_penalty: float = 0.80
    #: NIC doorbell / WQE posting overhead charged to the issuing CPU.
    rdma_post_overhead: float = 0.05

    # --- TCP emulation (AIFM comparison, Section 6.2 footnote 2) -------
    #: Extra delay per transfer when using the TCP transport instead of
    #: RDMA: 14,000 cycles at 2.3 GHz.
    tcp_extra: float = cycles_to_us(14_000)

    # --- Page fault hardware costs (Figure 1) ---------------------------
    #: Hardware exception delivery (microcode, IDT vectoring).
    hw_exception: float = 0.30
    #: OS exception entry/exit trampoline up to the handler proper.
    os_fault_entry: float = 0.27

    # --- DiLOS software costs (Figure 6, Section 4.2) -------------------
    #: Unified-page-table check: the *single* data structure consulted
    #: before issuing the RDMA request.
    dilos_pte_check: float = 0.08
    #: Popping a free frame from the page manager's free list.
    dilos_page_alloc: float = 0.05
    #: Installing the fetched page into the page table (+ TLB shootdown).
    dilos_map: float = 0.15
    #: Cost of waiting out a FETCHING PTE set by another core/prefetch
    #: (spin setup; the wait itself is until the fetch completes).
    dilos_wait_fetch: float = 0.05
    #: PTE hit tracker: scanning accessed bits of one prefetched PTE.
    dilos_hit_track_per_pte: float = 0.004

    # --- Fastswap / Linux swap-subsystem software costs (Figure 1) ------
    #: Swap-entry decode + swap cache radix-tree lookup.
    fastswap_swap_lookup: float = 0.35
    #: Allocating a swap-cache page + inserting into the radix tree
    #: (+ memcg charge, workingset accounting).
    fastswap_swapcache_insert: float = 0.60
    #: Buddy/per-cpu page allocation.
    fastswap_page_alloc: float = 0.50
    #: rmap + page-table mapping + TLB maintenance.
    fastswap_map: float = 0.40
    #: Servicing a minor fault from the swap cache: radix lookup, page-lock
    #: handshake with the in-flight readahead IO, rmap/map, LRU activation,
    #: memcg accounting. Individually cheaper than a major fault but, per
    #: §3.2, the dominant aggregate cost (87.5% of all faults).
    fastswap_minor_fault: float = 2.40
    #: Direct-reclaim CPU work per page scanned/evicted inline.
    fastswap_reclaim_per_page: float = 0.60
    #: Fraction of reclaim work Fastswap's dedicated kernel thread manages
    #: to offload away from the fault path ("not all reclamation work is
    #: offloaded to the thread", Section 3.1).
    fastswap_reclaim_offload_fraction: float = 0.75

    # --- AIFM runtime costs (Sections 2, 6.2) ---------------------------
    #: Remoteable-pointer presence check per dereference (a few cycles of
    #: tag test + branch; calibrated so AIFM lands 50-83% behind the paging
    #: systems at 100% local memory, Figure 8).
    aifm_deref_check: float = cycles_to_us(4)
    #: Software path to fetch one remote object (user-level, no kernel
    #: crossing; cheaper than any fault path).
    aifm_object_fetch_sw: float = 0.30
    #: Object evacuation bookkeeping per object (background).
    aifm_evacuate_per_object: float = 0.20

    # --- Generic CPU ----------------------------------------------------
    #: Cost of one "simple operation" used by workloads to charge compute
    #: time (one cycle at 2.3 GHz).
    cpu_cycle: float = cycles_to_us(1)
    #: CPU time per byte actually copied between the application and a
    #: local frame (~10 GB/s effective memcpy including cache effects).
    cpu_copy_per_byte: float = 1.0e-4

    # --- OS character ---------------------------------------------------
    #: Per-synchronization-op overhead; OSv's primitives are less mature
    #: than Linux's (Section 6.2, GAPBS discussion). Keyed by kernel.
    sync_overhead_linux: float = cycles_to_us(60)
    sync_overhead_osv: float = cycles_to_us(220)

    # Precomputed sums ---------------------------------------------------

    def __post_init__(self) -> None:
        # Derived sums read on every simulated page fault. Precomputing
        # them here keeps the fault handlers to a single clock charge.
        # ``dataclasses.replace`` re-runs ``__post_init__``, so perturbed
        # models (repro.net.media and experiment sweeps) stay consistent.
        #: Hardware exception delivery + OS entry, charged on every fault.
        self.fault_entry = self.hw_exception + self.os_fault_entry
        #: DiLOS software component of a major fault (Figure 6 breakdown).
        self.dilos_software = (
            self.dilos_pte_check + self.dilos_map + self.dilos_page_alloc)
        #: Fastswap major-fault software cost before the RDMA issue.
        self.fastswap_major_prepare = (
            self.fastswap_swapcache_insert + self.fastswap_page_alloc)
        #: Fastswap software component of a major fault (Figure 1 breakdown).
        self.fastswap_software = (
            self.fastswap_swap_lookup + self.fastswap_swapcache_insert
            + self.fastswap_page_alloc + self.fastswap_map)

    # Derived helpers ----------------------------------------------------

    def rdma_read_latency(self, size: int) -> float:
        """End-to-end latency of a one-sided READ of ``size`` bytes."""
        return self.rdma_read_base + size * self.rdma_per_byte

    def rdma_write_latency(self, size: int) -> float:
        """End-to-end latency of a one-sided WRITE of ``size`` bytes."""
        return self.rdma_write_base + size * self.rdma_per_byte

    def sg_overhead(self, segments: int) -> float:
        """Extra latency of a scatter-gather list with ``segments`` entries."""
        if segments <= 1:
            return 0.0
        extra = (segments - 1) * self.rdma_sg_segment
        if segments > 3:
            extra += (segments - 3) * self.rdma_sg_overlong_penalty
        return extra

    def cycles(self, n: float) -> float:
        """Microseconds consumed by ``n`` CPU cycles."""
        return n * self.cpu_cycle

    @staticmethod
    def link_per_byte_us(gbps: float) -> float:
        """Serialization cost (µs/byte) of one rack link at ``gbps``.

        The link-aware charging path: with a
        :class:`~repro.net.topology.FabricPort` attached, a verb pays
        this per byte *per link crossed* (plus queueing behind earlier
        transfers) on top of the NIC wire model above — the flat model
        remains the calibrated direct-attached baseline.
        """
        if gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        return 1.0 / (125.0 * gbps)


#: Shared default model; experiments that want to perturb a constant build
#: their own instance instead of mutating this one.
DEFAULT_LATENCY = LatencyModel()
