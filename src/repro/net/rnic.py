"""The memory node's RNIC: registration, protection keys, multi-tenancy.

§5's driver design in model form. DiLOS bypasses its hypervisor on the
data path, so isolation between LibOSes sharing an RNIC rests entirely on
RDMA's *protection key* mechanism: every registered memory region carries
an rkey, and the RNIC services a one-sided operation only when the caller
presents the right key. The control path (registering regions, populating
the NIC's mapping table) goes through virtio and is slow — but runs once
per connection at initialization, so its cost is irrelevant (§5).

:class:`Rnic` wraps one :class:`~repro.mem.remote.MemoryNode` and carves
it into registered :class:`RemoteRegion` s. A ``RemoteRegion`` implements
the same backend interface as a raw node (``alloc_slot`` / ``slot_offset``
/ ``read_bytes`` / ``write_bytes``), so a computing node boots against its
region exactly as it would against a whole node — and cannot reach beyond
it. ``Rnic.one_sided_read``/``write`` model the wire protocol itself,
where a malicious guest could present an arbitrary (offset, rkey) pair:
the RNIC rejects mismatches with :class:`~repro.common.errors.
ProtectionError`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import OutOfMemoryError, ProtectionError
from repro.common.units import PAGE_SHIFT, align_up

#: Control-path cost of registering a region: virtio round trips, VM
#: exits, NIC mapping-table population (microseconds). Paid once at boot.
REGISTER_CONTROL_US = 120.0

_rkey_counter = itertools.count(0x1000)


class RemoteRegion:
    """A registered, rkey-protected slice of a memory node."""

    def __init__(self, rnic: "Rnic", base: int, size: int, rkey: int,
                 name: str) -> None:
        self._rnic = rnic
        self.base = base
        self.size = size
        self.rkey = rkey
        self.name = name
        total_slots = size >> PAGE_SHIFT
        self.total_slots = total_slots
        self._free_slots: List[int] = list(range(total_slots - 1, -1, -1))

    # -- backend interface (what a computing node kernels against) --------

    @property
    def capacity(self) -> int:
        return self.size

    @property
    def free_slots(self) -> int:
        return len(self._free_slots)

    def alloc_slot(self) -> int:
        if not self._free_slots:
            raise OutOfMemoryError(f"region {self.name} exhausted")
        return self._free_slots.pop()

    def free_slot(self, slot: int) -> None:
        if not 0 <= slot < self.total_slots:
            raise ValueError(f"slot {slot} outside region {self.name}")
        self._free_slots.append(slot)

    def slot_offset(self, slot: int) -> int:
        return slot << PAGE_SHIFT

    def read_bytes(self, offset: int, size: int) -> bytes:
        return self._rnic.one_sided_read(self.base + offset, size, self.rkey)

    def write_bytes(self, offset: int, data: bytes) -> None:
        self._rnic.one_sided_write(self.base + offset, data, self.rkey)


class Rnic:
    """One RNIC fronting one memory node, shared by many computing nodes."""

    def __init__(self, node, clock: Optional[Clock] = None) -> None:
        self._node = node
        self._clock = clock
        self._regions: Dict[int, RemoteRegion] = {}
        self._bump = 0
        self.registrations = 0
        self.protection_faults = 0

    # -- control path (slow, once per connection; §5) -----------------------

    def register_region(self, size: int, name: str = "mr") -> RemoteRegion:
        """Register ``size`` bytes; returns the region handle (with rkey)."""
        size = align_up(size)
        if self._bump + size > self._node.capacity:
            raise OutOfMemoryError("memory node capacity exhausted")
        rkey = next(_rkey_counter)
        region = RemoteRegion(self, self._bump, size, rkey, name)
        self._regions[rkey] = region
        self._bump += size
        self.registrations += 1
        if self._clock is not None:
            # virtio control path: VM exits + host driver + NIC table.
            self._clock.advance(REGISTER_CONTROL_US)
        return region

    def deregister_region(self, region: RemoteRegion) -> None:
        """Invalidate a region's rkey (its space is not reclaimed — real
        MR deregistration does not compact the PD either)."""
        self._regions.pop(region.rkey, None)

    # -- data path (what the RNIC checks on every wire op) --------------------

    def _check(self, offset: int, size: int, rkey: int) -> None:
        region = self._regions.get(rkey)
        if region is None:
            self.protection_faults += 1
            raise ProtectionError(f"unknown rkey {rkey:#x}")
        if not (region.base <= offset
                and offset + size <= region.base + region.size):
            self.protection_faults += 1
            raise ProtectionError(
                f"access [{offset:#x}, {offset + size:#x}) outside region "
                f"{region.name} (rkey {rkey:#x})")

    def one_sided_read(self, offset: int, size: int, rkey: int) -> bytes:
        self._check(offset, size, rkey)
        return self._node.read_bytes(offset, size)

    def one_sided_write(self, offset: int, data: bytes, rkey: int) -> None:
        self._check(offset, len(data), rkey)
        self._node.write_bytes(offset, data)
