"""RDMA queue pairs with explicit wire occupancy.

A :class:`QueuePair` serializes its own operations (in-order delivery per QP,
as in RoCE): a small urgent request posted behind a large transfer waits for
the large transfer's wire time. This makes head-of-line blocking — the
problem DiLOS' shared-nothing communication module exists to avoid (§4.5) —
a *real, measurable* effect in the model rather than an assumed constant.

Timing of an operation of ``size`` bytes posted at time ``t``::

    issue  = t + post_overhead          (CPU: doorbell + WQE)
    start  = max(issue, wire_free)      (per-QP serialization point)
    wire   = start + size * per_byte + sg_overhead
    done   = wire + base_latency        (fabric propagation + remote NIC)

so a lone 4 KiB READ costs ``base + 4096 * per_byte`` (Figure 2), while a
pipelined stream of them is spaced ``4096 * per_byte`` apart (wire-limited).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.clock import Clock
from repro.mem.remote import NodeFailedError
from repro.net.latency import LatencyModel
from repro.obs.tracer import NULL_TRACER


class NetStats:
    """Wire-byte accounting shared by all queue pairs of one fabric.

    ``timeline`` keeps ``(time, bytes, direction)`` events so experiments can
    plot bandwidth over time (Figure 12).
    """

    __slots__ = ("bytes_read", "bytes_written", "ops_read", "ops_write",
                 "timeline")

    def __init__(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.ops_read = 0
        self.ops_write = 0
        self.timeline: List[Tuple[float, int, str]] = []

    def record(self, now: float, size: int, direction: str) -> None:
        if direction == "read":
            self.bytes_read += size
            self.ops_read += 1
        elif direction == "write":
            self.bytes_written += size
            self.ops_write += 1
        else:
            raise ValueError(f"unknown direction {direction!r}")
        self.timeline.append((now, size, direction))

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def bandwidth_series(self, bin_us: float, start: float = 0.0,
                         stop: float = None):
        """Bin the timeline into ``(bin_start_us, bytes)`` pairs.

        This is how Figure 12's bandwidth-over-time plot is produced from
        the raw wire events. Empty bins are included so the series is
        uniform.
        """
        if bin_us <= 0:
            raise ValueError("bin width must be positive")
        if not self.timeline:
            return []
        if stop is None:
            stop = max(t for t, _size, _dir in self.timeline)
        nbins = int((stop - start) // bin_us) + 1
        bins = [0] * nbins
        for when, size, _direction in self.timeline:
            if start <= when <= stop:
                bins[int((when - start) // bin_us)] += size
        return [(start + i * bin_us, total) for i, total in enumerate(bins)]


class Completion:
    """Handle for an in-flight one-sided operation."""

    __slots__ = ("time", "op", "size", "data", "cancelled", "failed",
                 "retries")

    def __init__(self, time: float, op: str, size: int, data: Optional[bytes]) -> None:
        self.time = time
        self.op = op
        self.size = size
        #: READ payload (snapshotted when the remote NIC services the op).
        self.data = data
        #: Set by the issuer to drop a stale callback (e.g. a prefetch whose
        #: target page got unmapped before arrival).
        self.cancelled = False
        #: Set when the remote node died with this op in flight: the
        #: response is lost, ``wait`` raises, callbacks never fire.
        self.failed = False
        #: Transmission attempts beyond the first (reliable transport).
        self.retries = 0

    def done(self, now: float) -> bool:
        return now >= self.time


class QueuePair:
    """One RDMA QP: in-order, reliable, one-sided READ/WRITE/SG verbs.

    ``remote`` is any object with ``read_bytes(offset, size) -> bytes`` and
    ``write_bytes(offset, data)`` — in practice the memory node's registered
    region.
    """

    __slots__ = ("name", "_clock", "_model", "_remote", "_stats", "tracer",
                 "extra_completion_delay", "_wire_free", "posted",
                 "_inflight", "_listening", "_per_byte", "_read_base",
                 "_write_base", "_post_overhead", "_fabric")

    def __init__(
        self,
        name: str,
        clock: Clock,
        model: LatencyModel,
        remote,
        stats: NetStats,
        extra_completion_delay: float = 0.0,
        tracer=NULL_TRACER,
        fabric=None,
    ) -> None:
        self.name = name
        self._clock = clock
        self._model = model
        self._remote = remote
        self._stats = stats
        #: Trace sink for wire events (``net.read``/``net.write`` spans).
        self.tracer = tracer
        #: Additional delay applied to every completion; used for the
        #: DiLOS-TCP / AIFM-TCP emulation (+14,000 cycles, §6.2).
        self.extra_completion_delay = extra_completion_delay
        #: Optional :class:`~repro.net.topology.FabricPort`: when set,
        #: every verb additionally pays the contention delay of the rack
        #: links between this QP's compute node and the memory node that
        #: owns the target offset. ``None`` (the default) is the flat
        #: topology — the timing path is untouched, bit for bit.
        self._fabric = fabric
        self._wire_free = 0.0
        self.posted = 0
        # Model constants prebound once: every verb reads them, and the
        # model is immutable for the lifetime of the QP.
        self._per_byte = model.rdma_per_byte
        self._read_base = model.rdma_read_base
        self._write_base = model.rdma_write_base
        self._post_overhead = model.rdma_post_overhead
        # In-flight tracking so a mid-flight node crash is *observed* by
        # the issuer (a timeout/error), never silently absorbed. Only the
        # plain single-node remote announces failures; redundant cluster
        # backends mask member deaths themselves.
        self._inflight: List[Completion] = []
        subscribe = getattr(remote, "add_failure_listener", None)
        self._listening = subscribe is not None
        if self._listening:
            subscribe(self._on_remote_failure)

    # -- internal ---------------------------------------------------------

    def _schedule(self, wire_time: float, base: float,
                  at: Optional[float] = None,
                  offset: Optional[int] = None, size: int = 0) -> float:
        """Charge the wire for one transfer and return the completion time.

        With ``at=None`` the post happens *now*: the CPU is advanced past
        the doorbell/WQE overhead. A future ``at`` (reliable-transport
        retries, scheduled ahead on the simulated clock) charges the same
        posting overhead into the timeline without moving the clock.

        With a fabric port attached, the transfer additionally crosses
        the rack links toward the memory node owning ``offset``
        (queueing + store-and-forward serialization); the delay extends
        this QP's wire occupancy — in-order delivery per QP, so a verb
        stuck behind a congested trunk blocks its successors exactly
        like a large transfer does.
        """
        if at is None:
            self._clock.advance(self._post_overhead)
            at = self._clock.now
        else:
            at += self._post_overhead
        start = max(at, self._wire_free)
        wire_done = start + wire_time
        if self._fabric is not None:
            wire_done += self._fabric.charge(offset, size, start)
        self._wire_free = wire_done
        self.posted += 1
        return wire_done + base + self.extra_completion_delay

    def _register(self, completion: Completion,
                  on_complete: Optional[Callable[[Completion], None]]) -> None:
        self._track(completion)
        if on_complete is None:
            return

        def fire() -> None:
            if not completion.cancelled and not completion.failed:
                on_complete(completion)

        self._clock.call_at(completion.time, fire)

    def _track(self, completion: Completion) -> None:
        if not self._listening:
            return
        now = self._clock.now
        self._inflight = [c for c in self._inflight if c.time > now]
        self._inflight.append(completion)

    def _on_remote_failure(self) -> None:
        """The remote node died: every response still on the wire is lost."""
        now = self._clock.now
        for completion in self._inflight:
            if completion.time > now:
                completion.failed = True
        self._inflight = []

    # -- raw wire charging (reliable-transport support) ---------------------

    def charge_attempt(self, size: int, direction: str,
                       at: Optional[float] = None,
                       segments: int = 1,
                       offset: Optional[int] = None) -> float:
        """Charge wire occupancy + byte accounting for one transmission
        attempt without touching the remote store; returns the completion
        time. :class:`~repro.net.reliable.ReliableQP` uses this for every
        attempt (it owns the data path itself so that attempts the fault
        plan kills on the wire have no remote side effects). ``offset``
        routes the attempt across the rack fabric when a port is
        attached."""
        if direction not in ("read", "write"):
            raise ValueError(f"unknown direction {direction!r}")
        wire = size * self._per_byte
        if segments > 1:
            wire += self._model.sg_overhead(segments)
        base = (self._read_base if direction == "read"
                else self._write_base)
        when = self._schedule(wire, base, at=at, offset=offset, size=size)
        self._stats.record(when, size, direction)
        if self.tracer.enabled:
            post = at if at is not None else self._clock.now
            self.tracer.complete(f"net.{direction}", "net", post,
                                 when - post,
                                 {"qp": self.name, "bytes": size})
        return when

    # -- verbs --------------------------------------------------------------

    def post_read(
        self,
        remote_offset: int,
        size: int,
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """One-sided READ of ``size`` bytes at ``remote_offset``."""
        data = self._remote.read_bytes(remote_offset, size)
        when = self._schedule(size * self._per_byte, self._read_base,
                              offset=remote_offset, size=size)
        self._stats.record(when, size, "read")
        if self.tracer.enabled:
            self.tracer.complete("net.read", "net", self._clock.now,
                                 when - self._clock.now,
                                 {"qp": self.name, "bytes": size})
        completion = Completion(when, "read", size, data)
        self._register(completion, on_complete)
        return completion

    def post_write(
        self,
        remote_offset: int,
        data: bytes,
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """One-sided WRITE of ``data`` to ``remote_offset``."""
        self._remote.write_bytes(remote_offset, data)
        when = self._schedule(len(data) * self._per_byte,
                              self._write_base,
                              offset=remote_offset, size=len(data))
        self._stats.record(when, len(data), "write")
        if self.tracer.enabled:
            self.tracer.complete("net.write", "net", self._clock.now,
                                 when - self._clock.now,
                                 {"qp": self.name, "bytes": len(data)})
        completion = Completion(when, "write", len(data), None)
        self._register(completion, on_complete)
        return completion

    def post_read_sg(
        self,
        segments: Sequence[Tuple[int, int]],
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Scatter-gather READ: ``segments`` is ``[(remote_offset, size)]``.

        Returns a completion whose ``data`` is the segments' payloads
        concatenated in order. §6.3 observed vectors longer than three slow
        down sharply; the latency model charges that penalty.
        """
        if not segments:
            raise ValueError("empty scatter-gather list")
        payload = b"".join(
            self._remote.read_bytes(off, size) for off, size in segments)
        total = len(payload)
        wire = total * self._per_byte + self._model.sg_overhead(len(segments))
        # SG lists are built per batch against one backend; the fabric
        # routes the whole vector by its first segment's home node.
        when = self._schedule(wire, self._read_base,
                              offset=segments[0][0], size=total)
        self._stats.record(when, total, "read")
        if self.tracer.enabled:
            self.tracer.complete("net.read", "net", self._clock.now,
                                 when - self._clock.now,
                                 {"qp": self.name, "bytes": total,
                                  "segments": len(segments)})
        completion = Completion(when, "read", total, payload)
        self._register(completion, on_complete)
        return completion

    def post_write_sg(
        self,
        segments: Sequence[Tuple[int, bytes]],
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Scatter-gather WRITE: ``segments`` is ``[(remote_offset, data)]``."""
        if not segments:
            raise ValueError("empty scatter-gather list")
        total = 0
        for off, data in segments:
            self._remote.write_bytes(off, data)
            total += len(data)
        wire = total * self._per_byte + self._model.sg_overhead(len(segments))
        when = self._schedule(wire, self._write_base,
                              offset=segments[0][0], size=total)
        self._stats.record(when, total, "write")
        if self.tracer.enabled:
            self.tracer.complete("net.write", "net", self._clock.now,
                                 when - self._clock.now,
                                 {"qp": self.name, "bytes": total,
                                  "segments": len(segments)})
        completion = Completion(when, "write", total, None)
        self._register(completion, on_complete)
        return completion

    # -- waiting ------------------------------------------------------------

    def wait(self, completion: Completion) -> Completion:
        """Block (advance simulated time) until ``completion`` arrives.

        Raises :class:`~repro.mem.remote.NodeFailedError` when the remote
        node died while the operation was on the wire: the verb was
        issued against a live node but its response never arrived.
        """
        self._clock.advance_to(completion.time)
        if completion.failed:
            raise NodeFailedError(
                f"{self.name}: remote node failed with {completion.op} "
                "in flight")
        return completion
