"""The reliable transport: timeout, retry, backoff, failover over lossy QPs.

:class:`ReliableQP` mirrors the :class:`~repro.net.qp.QueuePair` verb
surface (``post_read`` / ``post_write`` / ``post_read_sg`` /
``post_write_sg`` / ``wait``) so every kernel routes remote IO through it
unchanged, but survives the wire of :class:`~repro.net.faults.FaultPlan`:

* every payload carries an end-to-end CRC-32; a corrupt arrival is
  NAK'd at completion time;
* every attempt is guarded by a completion timeout on the *simulated*
  clock; drops, QP stalls, link flaps, and dead nodes all surface as a
  timeout at ``issue + timeout_us``;
* failed attempts are retried with capped exponential backoff
  (:class:`~repro.net.faults.RetryPolicy`), each retransmission paying
  full wire occupancy on the QP — benchmarks see the real cost of a
  lossy fabric, not an idealised one;
* ``failover_after`` consecutive failures on one QP move the verb (and
  all subsequent traffic) to a sibling QP, the standard RDMA recovery
  from a QP wedged in an error state.

A verb that exhausts ``max_attempts`` raises
:class:`~repro.net.faults.TransportError` (a
:class:`~repro.mem.remote.NodeFailedError`), so kernels' degraded-mode
paths treat a persistent outage exactly like a dead memory node.

The transport owns the data path: remote bytes move only on the attempt
the fault plan lets through, so a dropped or corrupted WRITE leaves the
memory node untouched until its retransmission lands. Canonical metrics
(``net.ops``, ``net.retry``, ``net.timeout``, ``net.corrupt_detected``,
``net.failover``, ``net.giveup``) land in the injected registry.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.clock import Clock
from repro.mem.remote import NodeFailedError
from repro.net.faults import (
    FaultPlan,
    RetryPolicy,
    TransportError,
    checksum,
)
from repro.net.latency import LatencyModel
from repro.net.qp import Completion, QueuePair
from repro.obs.tracer import NULL_TRACER

#: Canonical reliability metrics, pre-registered (at zero) on attach.
RELIABILITY_METRICS = (
    "net.ops",
    "net.retry",
    "net.timeout",
    "net.corrupt_detected",
    "net.failover",
    "net.giveup",
)


class ReliableQP:
    """Retry/timeout/backoff/failover wrapper over sibling queue pairs.

    ``qps`` is an ordered list of underlying :class:`QueuePair` siblings
    sharing one clock, latency model, remote, and byte accounting; the
    first is the primary. All verb timing — including every
    retransmission and backoff gap — is charged to the simulated clock
    through the completion time the caller waits on.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        model: LatencyModel,
        remote,
        qps: Sequence[QueuePair],
        plan: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        registry=None,
        tracer=NULL_TRACER,
    ) -> None:
        if not qps:
            raise ValueError("need at least one underlying queue pair")
        self.name = name
        self._clock = clock
        self._model = model
        self._remote = remote
        self._qps: List[QueuePair] = list(qps)
        self._active = 0
        self._plan = plan
        self._policy = RetryPolicy.coerce(policy)
        self._registry = registry
        self.tracer = tracer
        #: Total verbs issued through this transport.
        self.ops = 0
        if registry is not None:
            for key in RELIABILITY_METRICS:
                registry.counter(key)
        self._inflight: List[Completion] = []
        subscribe = getattr(remote, "add_failure_listener", None)
        self._listening = subscribe is not None
        if self._listening:
            subscribe(self._on_remote_failure)

    # -- introspection -------------------------------------------------------

    @property
    def active_qp(self) -> QueuePair:
        """The sibling currently carrying traffic (failover is sticky)."""
        return self._qps[self._active]

    @property
    def posted(self) -> int:
        """Transmission attempts across all siblings (retries included)."""
        return sum(qp.posted for qp in self._qps)

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    # -- plumbing ------------------------------------------------------------

    def _add(self, metric: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.add(metric, amount)

    def _on_remote_failure(self) -> None:
        now = self._clock.now
        for completion in self._inflight:
            if completion.time > now:
                completion.failed = True
        self._inflight = []

    def _finish(self, completion: Completion,
                on_complete: Optional[Callable[[Completion], None]]) -> None:
        if self._listening:
            now = self._clock.now
            self._inflight = [c for c in self._inflight if c.time > now]
            self._inflight.append(completion)
        if on_complete is None:
            return

        def fire() -> None:
            if not completion.cancelled and not completion.failed:
                on_complete(completion)

        self._clock.call_at(completion.time, fire)

    # -- the retry state machine ---------------------------------------------

    def _transact(
        self,
        direction: str,
        size: int,
        segments: int,
        reader: Optional[Callable[[], bytes]],
        writer: Optional[Callable[[], None]],
        wire_payload: Optional[bytes],
        on_complete: Optional[Callable[[Completion], None]],
        offset: Optional[int] = None,
    ) -> Completion:
        policy = self._policy
        plan = self._plan
        post_overhead = self._model.rdma_post_overhead
        self.ops += 1
        self._add("net.ops")
        span_start = self._clock.now
        at: Optional[float] = None  # None => post now; else scheduled retry
        consecutive = 0
        detect = span_start
        for attempt in range(policy.max_attempts):
            qp = self._qps[self._active]
            when = qp.charge_attempt(size, direction, at=at,
                                     segments=segments, offset=offset)
            post_time = self._clock.now if at is None else at + post_overhead

            failure: Optional[str] = None
            done = when
            payload: Optional[bytes] = None
            fault = (plan.draw(qp.name, direction, size, post_time, attempt)
                     if plan is not None else None)
            try:
                if fault is None:
                    if writer is not None:
                        writer()
                    if reader is not None:
                        payload = reader()
                elif fault.kind == "corrupt":
                    # End-to-end integrity: damage the wire image of the
                    # true payload; the receiver's CRC rejects it at
                    # completion time (a NAK, not a timeout).
                    true = (reader() if reader is not None
                            else (wire_payload or b""))
                    wire = plan.corrupt_payload(true)
                    if true and checksum(wire) != checksum(true):
                        failure, detect = "corrupt", when
                    else:
                        # Nothing to damage: the request itself is lost.
                        failure, detect = "timeout", post_time + policy.timeout_us
                elif fault.kind == "delay":
                    done = when + fault.extra_us
                    if done - post_time > policy.timeout_us:
                        # Arrived after the issuer gave up: discarded.
                        failure = "timeout"
                        detect = post_time + policy.timeout_us
                    else:
                        if writer is not None:
                            writer()
                        if reader is not None:
                            payload = reader()
                else:  # drop / stall / flap: no response, ever.
                    failure, detect = "timeout", post_time + policy.timeout_us
            except NodeFailedError:
                # The node is down at issue time: the verb can only time
                # out. (A redundant backend absorbs member deaths before
                # they surface here.)
                failure, detect = "timeout", post_time + policy.timeout_us

            if failure is None:
                completion = Completion(done, direction, size, payload)
                completion.retries = attempt
                if attempt and self.tracer.enabled:
                    self.tracer.complete(
                        "net.reliable", "net", span_start,
                        done - span_start,
                        {"qp": self.name, "op": direction,
                         "retries": attempt})
                self._finish(completion, on_complete)
                return completion

            # One failed attempt: count it, maybe fail over, back off.
            self._add("net.timeout" if failure == "timeout"
                      else "net.corrupt_detected")
            if self.tracer.enabled:
                self.tracer.instant(
                    f"net.{failure}", "net", detect,
                    {"qp": qp.name, "op": direction, "attempt": attempt})
            consecutive += 1
            if attempt + 1 >= policy.max_attempts:
                break
            if (consecutive >= policy.failover_after
                    and len(self._qps) > 1):
                self._active = (self._active + 1) % len(self._qps)
                consecutive = 0
                self._add("net.failover")
                if self.tracer.enabled:
                    self.tracer.instant(
                        "net.failover", "net", detect,
                        {"from": qp.name,
                         "to": self._qps[self._active].name})
            self._add("net.retry")
            at = detect + policy.backoff(attempt + 1)

        # Retry budget exhausted: surface the outage, charging the full
        # detection latency of the final attempt to the caller.
        self._add("net.giveup")
        if self.tracer.enabled:
            self.tracer.instant("net.giveup", "net", detect,
                                {"qp": self.name, "op": direction})
        self._clock.advance_to(detect)
        raise TransportError(
            f"{self.name}: {direction} of {size} B gave up after "
            f"{policy.max_attempts} attempts")

    # -- verbs ---------------------------------------------------------------

    def post_read(
        self,
        remote_offset: int,
        size: int,
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Reliable one-sided READ; mirrors ``QueuePair.post_read``."""
        return self._transact(
            "read", size, 1,
            reader=lambda: self._remote.read_bytes(remote_offset, size),
            writer=None, wire_payload=None, on_complete=on_complete,
            offset=remote_offset)

    def post_write(
        self,
        remote_offset: int,
        data: bytes,
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Reliable one-sided WRITE; the store is only touched by the
        attempt that actually gets through the wire."""
        return self._transact(
            "write", len(data), 1, reader=None,
            writer=lambda: self._remote.write_bytes(remote_offset, data),
            wire_payload=data, on_complete=on_complete,
            offset=remote_offset)

    def post_read_sg(
        self,
        segments: Sequence[Tuple[int, int]],
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Reliable scatter-gather READ (``[(remote_offset, size)]``)."""
        if not segments:
            raise ValueError("empty scatter-gather list")
        total = sum(size for _off, size in segments)

        def reader() -> bytes:
            return b"".join(self._remote.read_bytes(off, size)
                            for off, size in segments)

        return self._transact("read", total, len(segments), reader=reader,
                              writer=None, wire_payload=None,
                              on_complete=on_complete,
                              offset=segments[0][0])

    def post_write_sg(
        self,
        segments: Sequence[Tuple[int, bytes]],
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> Completion:
        """Reliable scatter-gather WRITE (``[(remote_offset, data)]``)."""
        if not segments:
            raise ValueError("empty scatter-gather list")
        total = sum(len(data) for _off, data in segments)

        def writer() -> None:
            for off, data in segments:
                self._remote.write_bytes(off, data)

        return self._transact(
            "write", total, len(segments), reader=None, writer=writer,
            wire_payload=b"".join(data for _off, data in segments),
            on_complete=on_complete, offset=segments[0][0])

    # -- waiting -------------------------------------------------------------

    def wait(self, completion: Completion) -> Completion:
        """Block (advance simulated time) until ``completion`` arrives;
        raises :class:`~repro.mem.remote.NodeFailedError` if the node
        died with the operation in flight."""
        self._clock.advance_to(completion.time)
        if completion.failed:
            raise NodeFailedError(
                f"{self.name}: remote node failed with {completion.op} "
                "in flight")
        return completion
