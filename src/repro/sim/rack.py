"""Rack-scale tenancy: hundreds of tenants on a pooled, contended fabric.

:class:`~repro.sim.tenancy.ComputeCluster` interleaves tenants on one
shared backend but leaves *where* pages land and *what the wire costs*
implicit — every tenant sees the same flat fabric. :class:`RackCluster`
closes the loop between the three rack-scale layers this package grew:

* a :class:`~repro.net.topology.RackTopology` (per-link bandwidth, ToR
  oversubscription) every tenant's QP verbs are charged against;
* a :class:`~repro.mem.pool.PooledMemory` the tenants draw slots from
  through per-tenant :class:`~repro.mem.pool.PoolClient` views, so the
  placement policy — not a fixed address map — decides which links each
  page's traffic crosses;
* the open-loop serving frontend, whose p99 now depends on both.

Each enrolled tenant becomes one *compute node*: it gets a fabric port
bound to its compute id (routed by ``PooledMemory.node_of``) and a pool
client homed on the topology's home memory node for that id. The merged
cluster snapshot carries the canonical ``topo.*`` (link bytes, queueing
delay, trunk crossings) and ``pool.*`` (spills, stranding,
fragmentation imbalance) metrics alongside the usual ``tenant.*`` and
``serve.*`` families, and digests deterministically like every other
snapshot.

:func:`make_rack` builds the standard preset — N redis service tenants
striped round-robin across the compute nodes, an open-loop serve spec —
and scales to hundreds of tenants. :func:`run_rack_cell` is the
module-level (picklable) worker behind ``repro sweep rack --jobs``: one
placement-policy × oversubscription cell per call, byte-identical
whether run serially or fanned out.

The locality-vs-load tradeoff the sweep reproduces: ``locality``
placement keeps traffic on direct chassis links — immune to ToR
oversubscription but stranding free capacity on other nodes — while
``load`` placement balances occupancy at the price of crossing the
(possibly oversubscribed) trunk, where queueing delay lands straight in
the serving tail.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Union

from repro.common.clock import Clock
from repro.common.units import KIB, MIB, PAGE_SIZE, align_up
from repro.core.spec import SystemSpec, make_topology
from repro.mem.pool import PooledMemory
from repro.mem.remote import MemoryNode
from repro.net.topology import RackTopology
from repro.obs import MetricsSnapshot
from repro.sim.tenancy import ComputeCluster, Tenant, WorkloadFactory

#: The default rack preset fabric: 4 compute nodes, 4 pooled memory
#: nodes, 100 Gbit/s edge links, non-blocking trunk.
DEFAULT_RACK = "rack:compute=4,mem=4,link=100,oversub=1"

#: The default open-loop serve spec for :func:`make_rack` presets.
DEFAULT_RACK_SERVE = ("poisson:rate=400k,clients=1m,slo=2ms,"
                      "requests=2000,seed=29,balance=round_robin")


class RackCluster(ComputeCluster):
    """A :class:`ComputeCluster` whose tenants live on an explicit rack.

    Args:
        topology: the fabric — a ``"rack:..."`` spec string or a ready
            :class:`~repro.net.topology.RackTopology`. (``"flat"`` is
            rejected: a flat cluster is just :class:`ComputeCluster`.)
        placement: pool placement policy name (``"locality"``,
            ``"load"``, ``"pack"``, ``"interleave"``) or a ready
            :class:`~repro.mem.pool.PlacementPolicy`.
        remote_mem_bytes: total pooled capacity, split equally over the
            topology's memory nodes.
        quantum_us / clock / serve: as in :class:`ComputeCluster`.
    """

    def __init__(self, topology: Union[str, RackTopology] = DEFAULT_RACK,
                 placement: Any = "locality",
                 remote_mem_bytes: int = 512 * MIB,
                 quantum_us: float = 1_000.0,
                 clock: Optional[Clock] = None,
                 serve: Optional[Any] = None) -> None:
        topo = make_topology(topology)
        if not isinstance(topo, RackTopology):
            raise ValueError(
                "RackCluster needs a rack topology (e.g. "
                f"{DEFAULT_RACK!r}); for the flat fabric use "
                "ComputeCluster")
        node_bytes = align_up(max(1, -(-remote_mem_bytes // topo.mem)),
                              PAGE_SIZE)
        pool = PooledMemory(
            [MemoryNode(node_bytes, name=f"pool{m}")
             for m in range(topo.mem)],
            policy=placement)
        super().__init__(backend=pool, remote_mem_bytes=remote_mem_bytes,
                         quantum_us=quantum_us, clock=clock, serve=serve)
        self.topology = topo
        self.pool = pool
        self.backend_label = f"pool:{topo.mem}/{pool.policy.name}"
        self._next_compute = 0

    # -- enrollment ----------------------------------------------------------

    def add_tenant(self, name: str, spec: SystemSpec,
                   workload: WorkloadFactory,
                   share_backend: bool = True,
                   compute_id: Optional[int] = None) -> Tenant:
        """Enroll ``spec`` as one compute node of the rack.

        The tenant's backend becomes a pool client homed on the
        topology's home memory node for its compute id, and its QPs are
        charged through a fabric port bound to that id (round-robin over
        compute nodes when ``compute_id`` is not given). The
        ``share_backend`` flag is accepted for interface compatibility
        but every rack tenant shares the pool through its client view.
        """
        if spec.kind.startswith("aifm"):
            raise ValueError(
                "AIFM tenants bump-allocate the remote heap from offset 0 "
                "and cannot share the rack's slot-allocated pool")
        cid = self._next_compute if compute_id is None else compute_id
        if not 0 <= cid < self.topology.compute:
            raise ValueError(f"no compute node {cid} in {self.topology!r}")
        if compute_id is None:
            self._next_compute = (cid + 1) % self.topology.compute
        client = self.pool.client(name, home=self.topology.home(cid))
        port = self.topology.port(cid, resolver=self.pool.node_of)
        bound = replace(spec, backend=client, topology=port)
        # share_backend=False: keep our client view as the tenant's
        # backend (the base class would swap in the raw shared pool).
        tenant = super().add_tenant(name, bound, workload,
                                    share_backend=False)
        tenant.extra["compute_id"] = cid
        return tenant

    # -- merged observability ------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """The cluster snapshot plus the fabric's ``topo.*`` family.

        (The pool's ``pool.*`` family arrives through the backend's own
        registry, like any cluster backend's metrics.)
        """
        merged = super().metrics()
        for key, value in self.topology.metrics().counters.items():
            merged.counters.setdefault(key, value)
        merged.extra["topology"] = self.topology.spec()
        merged.extra["placement"] = self.pool.policy.name
        return merged

    def link_report(self) -> Dict[str, Dict[str, float]]:
        """Per-link ``{bytes, queue_us, util}`` at the current time."""
        return self.topology.link_report(self.clock.now)


# -- the standard preset -----------------------------------------------------

def make_rack(tenants: int = 8,
              topology: Union[str, RackTopology] = DEFAULT_RACK,
              placement: Any = "locality",
              kind: str = "dilos-readahead",
              local_mem_bytes: int = 192 * KIB,
              remote_mem_bytes: int = 256 * MIB,
              serve: Optional[str] = DEFAULT_RACK_SERVE,
              n_keys: int = 64,
              value_bytes: int = 4096) -> RackCluster:
    """The rack serving preset: N redis tenants striped over the rack.

    Tenant ``t<i>`` lands on compute node ``i % compute`` (so homes
    repeat once tenants outnumber compute nodes); each keeps a small
    local cache so its keyspace lives in the pool and every request
    pays fabric traffic. Scales to hundreds of tenants — per-tenant
    state is one small booted kernel plus ``n_keys`` values.
    """
    if tenants < 1:
        raise ValueError("need at least one tenant")
    cluster = RackCluster(topology=topology, placement=placement,
                          remote_mem_bytes=remote_mem_bytes, serve=serve)
    spec = SystemSpec(kind=kind, local_mem_bytes=local_mem_bytes,
                      remote_mem_bytes=remote_mem_bytes)
    for i in range(tenants):
        cluster.add_service(f"t{i}", spec, "redis",
                            n_keys=n_keys, value_bytes=value_bytes)
    return cluster


# -- the sweep cell ----------------------------------------------------------

def run_rack_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """One placement × oversubscription cell of ``repro sweep rack``.

    Module-level and pure in its ``cell`` dict, so ``--jobs`` can ship
    it to pool workers; raises only ``Exception`` subclasses (a
    ``BaseException`` would kill the worker and hang the map). Returns
    a flat row: serving tail, SLO accounting, and the ``topo.*`` /
    ``pool.*`` placement-outcome metrics plus both determinism digests.
    """
    placement = cell["placement"]
    oversub = cell["oversub"]
    topology = (f"rack:compute={cell.get('compute', 4)},"
                f"mem={cell.get('mem', 4)},"
                f"link={cell.get('link', 100)},oversub={oversub:g}")
    cluster = make_rack(tenants=cell.get("tenants", 8),
                        topology=topology, placement=placement,
                        kind=cell.get("kind", "dilos-readahead"),
                        serve=cell.get("serve", DEFAULT_RACK_SERVE),
                        n_keys=cell.get("n_keys", 64))
    report = cluster.serve()
    snap = report.snapshot
    return {
        "placement": placement,
        "oversub": float(oversub),
        "p50_us": report.latency.get("p50", 0.0),
        "p99_us": report.latency.get("p99", 0.0),
        "violation_rate": report.violation_rate,
        "goodput_rps": report.goodput_rps,
        "trunk_crossings": snap.value("topo.trunk_crossings"),
        "trunk_queue_us": snap.value("topo.trunk_queue_us"),
        "fabric_queue_us": snap.value("topo.queue_us"),
        "pool_spills": snap.value("pool.spills"),
        "stranded_slots": snap.value("pool.stranded_slots"),
        "frag_imbalance": snap.value("pool.frag_imbalance"),
        "trace_digest": report.trace_digest,
        "metrics_digest": snap.digest(),
    }


def sweep_rack(placements: List[str], oversubs: List[float],
               jobs: Optional[int] = None,
               **fixed: Any) -> List[Dict[str, Any]]:
    """The placement × oversubscription grid, optionally fanned out.

    Rows come back in grid order (placements outer, oversubs inner)
    regardless of ``jobs`` — a parallel run is byte-identical to the
    serial one, which the rack smoke gate asserts.
    """
    from repro.harness.parallel import fanout

    cells = [dict(fixed, placement=p, oversub=o)
             for p in placements for o in oversubs]
    return fanout(run_rack_cell, cells, jobs=jobs)


__all__ = [
    "DEFAULT_RACK",
    "DEFAULT_RACK_SERVE",
    "RackCluster",
    "make_rack",
    "run_rack_cell",
    "sweep_rack",
]
