"""Deterministic multi-tenant scheduling on shared memory backends.

A disaggregated memory pool is only interesting when more than one
computing node leans on it. :class:`ComputeCluster` interleaves N tenant
(system, workload) pairs on **one shared clock** and **one shared
backend** in round-robin quanta of simulated time: tenant A's page
evictions land in the same sharded pool tenant B is faulting from, and
every interleaving is a pure function of the specs and the quantum — the
same configuration always produces the same final metrics digest.

Tenants boot through :class:`repro.core.spec.SystemSpec` with the
cluster's clock and backend injected; each keeps its own
:class:`~repro.obs.Observability` bundle so per-tenant counters stay
separable. ``metrics()`` merges everything into one snapshot: tenant
counters re-keyed under ``tenant.<name>.<counter>``, plus aggregate
backend pressure and fairness instruments from the cluster's own
registry.

Workloads are generators over the booted system (the
:mod:`repro.sim.workers` convention): each ``next()`` runs one operation
and advances the shared clock; the scheduler rotates tenants whenever a
tenant's time slice is spent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.common.clock import Clock
from repro.common.units import MIB
from repro.core.spec import (
    BackendLike,
    BackendSpec,
    SystemSpec,
    backend_label,
    make_backend,
)
from repro.mem.repair import RepairManager
from repro.obs import MetricsSnapshot
from repro.obs.registry import MetricsRegistry

#: Tenant names become metric-name segments (``tenant.<name>.fault.major``),
#: so they must be valid canonical-name segments.
_TENANT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: A workload factory: booted system -> operation generator.
WorkloadFactory = Callable[[Any], Iterator[Any]]


@dataclass
class Tenant:
    """One computing node scheduled by a :class:`ComputeCluster`."""

    name: str
    spec: SystemSpec
    system: Any
    workload: Iterator[Any]
    #: Simulated µs consumed while this tenant held the CPU.
    run_us: float = 0.0
    #: Time slices this tenant has been scheduled for.
    quanta: int = 0
    #: Workload operations completed.
    ops: int = 0
    done: bool = False
    #: Shared-clock time when the workload finished (``None`` = running).
    finish_us: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def metrics(self) -> MetricsSnapshot:
        """This tenant's own (un-namespaced) metrics snapshot."""
        return self.system.metrics()


class ComputeCluster:
    """Round-robin scheduler for tenants over one shared memory backend.

    Args:
        backend: backend spec string (``"sharded:2"``, ...) or a ready
            backend object every tenant shares.
        remote_mem_bytes: pool capacity used when ``backend`` is a spec
            string.
        quantum_us: simulated time slice per scheduling turn. A tenant
            runs whole operations until its slice is spent, then the next
            live tenant runs — cooperative, deterministic round-robin.
        clock: shared timeline (``None`` boots a fresh one).
        max_slice_ops: safety valve — a slice that completes this many
            operations without spending its quantum raises rather than
            spinning forever on a zero-cost workload.
        repair: a :class:`~repro.mem.repair.RepairPolicy` (or spec
            string) attaching the online resilver/scrub manager to the
            shared cluster backend; rebuild traffic then paces on the
            cluster's clock, interleaved with the tenants.
        serve: default open-loop serving configuration for
            :meth:`serve` — a :class:`~repro.serve.ServeSpec` or a spec
            string such as ``"poisson:rate=5k,clients=1m,slo=2ms"``.
    """

    def __init__(self, backend: BackendSpec = "sharded:2",
                 remote_mem_bytes: int = 512 * MIB,
                 quantum_us: float = 1_000.0,
                 clock: Optional[Clock] = None,
                 max_slice_ops: int = 1_000_000,
                 repair: Optional[Any] = None,
                 serve: Optional[Any] = None) -> None:
        if quantum_us <= 0:
            raise ValueError("quantum must be positive")
        if serve is not None:
            # Deferred import: repro.serve drives *this* class, so a
            # top-level import would cycle.
            from repro.serve.spec import coerce_serve_spec
            serve = coerce_serve_spec(serve)
        self.serve_spec = serve
        self.clock = clock or Clock()
        self.backend: BackendLike = make_backend(backend, remote_mem_bytes)
        self.backend_label = backend_label(backend)
        self.repair = None
        if repair is not None:
            if not callable(getattr(self.backend, "attach_repair", None)):
                raise ValueError(
                    "repair= needs a cluster backend, not "
                    f"{self.backend_label!r}")
            self.repair = RepairManager(self.backend, self.clock,
                                        policy=repair)
        self.quantum_us = quantum_us
        self.max_slice_ops = max_slice_ops
        self.tenants: List[Tenant] = []
        self._by_name: Dict[str, Tenant] = {}
        self.registry = MetricsRegistry()
        self.registry.counter("cluster.quanta")
        self.registry.counter("cluster.ops")
        self.registry.counter("cluster.tenants_finished")
        self.registry.gauge("cluster.fairness_jain", self._jain_index)
        self.registry.gauge("backend.capacity_bytes",
                            lambda: float(getattr(self.backend,
                                                  "capacity", 0)))
        self.registry.gauge("backend.total_slots",
                            lambda: float(getattr(self.backend,
                                                  "total_slots", 0)))
        self.registry.gauge("backend.free_slots",
                            lambda: float(getattr(self.backend,
                                                  "free_slots", 0)))

    # -- tenant management ---------------------------------------------------

    def add_tenant(self, name: str, spec: SystemSpec,
                   workload: WorkloadFactory,
                   share_backend: bool = True) -> Tenant:
        """Boot ``spec`` on the shared clock/backend and enroll it.

        ``workload`` receives the booted system and returns the tenant's
        operation generator. ``share_backend=False`` gives the tenant a
        private backend built from its own spec (it still shares the
        clock) — required for AIFM tenants, whose bump allocator would
        scribble over the slot allocations of co-tenants.
        """
        if not _TENANT_NAME_RE.match(name):
            raise ValueError(
                f"tenant name {name!r} must match {_TENANT_NAME_RE.pattern} "
                "(it becomes a metric-name segment)")
        if name in self._by_name:
            raise ValueError(f"duplicate tenant name {name!r}")
        if share_backend and spec.kind.startswith("aifm"):
            raise ValueError(
                "AIFM tenants bump-allocate the remote heap from offset 0 "
                "and cannot share a slot-allocated backend; add them with "
                "share_backend=False")
        if share_backend:
            bound = spec.with_shared(self.clock, self.backend)
        else:
            bound = replace(spec, clock=self.clock)
        system = bound.boot()
        tenant = Tenant(name=name, spec=bound, system=system,
                        workload=iter(workload(system)))
        self.tenants.append(tenant)
        self._by_name[name] = tenant
        self.registry.counter(f"tenant.{name}.quanta")
        self.registry.counter(f"tenant.{name}.ops")
        self.registry.gauge(f"tenant.{name}.run_us",
                            lambda t=tenant: t.run_us)
        return tenant

    def add_service(self, name: str, spec: SystemSpec,
                    service: Any = "redis",
                    share_backend: bool = True,
                    **service_kwargs: Any) -> Tenant:
        """Boot ``spec`` and enroll it as a request-driven *service*.

        ``service`` is a kind name from the
        :data:`repro.apps.api.SERVICES` registry (``"redis"``,
        ``"taxi"``, ...) built over the booted system with
        ``service_kwargs``, or a ready
        :class:`~repro.apps.api.Service` object. Service tenants have no
        workload generator — the open-loop frontend
        (:meth:`serve`) drives their ``handle()`` directly; round-robin
        :meth:`run` treats them as already finished.
        """
        from repro.apps.api import SERVICES, Service

        tenant = self.add_tenant(name, spec, lambda system: iter(()),
                                 share_backend=share_backend)
        system = tenant.system
        if isinstance(service, str):
            service = SERVICES.build(service, system, **service_kwargs)
        elif service_kwargs:
            raise ValueError("service_kwargs only apply when building a "
                             "service by kind name")
        if not isinstance(service, Service):
            raise TypeError(f"{service!r} does not implement the Service "
                            "protocol (name + handle)")
        tenant.done = True  # no workload generator to round-robin
        tenant.extra["service"] = service
        return tenant

    def serve(self, spec: Optional[Any] = None,
              sampler: Optional[Any] = None):
        """Run one open-loop serving pass over the service tenants.

        ``spec`` (a :class:`~repro.serve.ServeSpec` or spec string)
        defaults to the cluster's ``serve=`` configuration, then to the
        first service tenant's ``SystemSpec.serve``, then to a plain
        poisson :class:`~repro.serve.ServeSpec`. Returns the
        :class:`~repro.serve.ServeReport`.
        """
        from repro.serve.frontend import ServeFrontend
        from repro.serve.spec import ServeSpec, coerce_serve_spec

        resolved = coerce_serve_spec(spec) or self.serve_spec
        if resolved is None:
            for tenant in self.tenants:
                tenant_serve = getattr(tenant.spec, "serve", None)
                if tenant_serve is not None and "service" in tenant.extra:
                    resolved = tenant_serve
                    break
        if resolved is None:
            resolved = ServeSpec()
        return ServeFrontend(self, resolved, sampler=sampler).run()

    def tenant(self, name: str) -> Tenant:
        """Lookup by name; raises ``KeyError`` with the valid names."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no tenant {name!r}; have "
                           f"{sorted(self._by_name)}") from None

    # -- scheduling ----------------------------------------------------------

    def _live(self) -> List[Tenant]:
        return [t for t in self.tenants if not t.done]

    def _run_slice(self, tenant: Tenant) -> None:
        start = self.clock.now
        deadline = start + self.quantum_us
        tenant.quanta += 1
        self.registry.add("cluster.quanta")
        self.registry.add(f"tenant.{tenant.name}.quanta")
        slice_ops = 0
        while self.clock.now < deadline:
            try:
                next(tenant.workload)
            except StopIteration:
                tenant.done = True
                tenant.finish_us = self.clock.now
                self.registry.add("cluster.tenants_finished")
                break
            tenant.ops += 1
            slice_ops += 1
            self.registry.add("cluster.ops")
            self.registry.add(f"tenant.{tenant.name}.ops")
            if slice_ops >= self.max_slice_ops:
                raise RuntimeError(
                    f"tenant {tenant.name!r} ran {slice_ops} operations "
                    "without consuming its time slice; the workload is not "
                    "advancing the clock")
        tenant.run_us += self.clock.now - start

    def run(self, max_quanta: Optional[int] = None) -> MetricsSnapshot:
        """Schedule round-robin until every workload finishes.

        ``max_quanta`` bounds the total number of time slices (across all
        tenants) — useful for open-loop workloads. Returns the merged
        cluster snapshot (also available any time via :meth:`metrics`).
        """
        if not self.tenants:
            raise RuntimeError("no tenants enrolled")
        issued = 0
        while True:
            live = self._live()
            if not live:
                break
            for tenant in live:
                if tenant.done:
                    continue
                if max_quanta is not None and issued >= max_quanta:
                    return self.metrics()
                self._run_slice(tenant)
                issued += 1
        return self.metrics()

    # -- merged observability ------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """One snapshot for the whole cluster.

        The cluster registry's aggregates (``cluster.*``, ``backend.*``,
        ``tenant.<name>.quanta/ops/run_us``) merge with every tenant's
        own counters, breakdowns and histograms re-keyed under
        ``tenant.<name>.<canonical>``. The result digests like any other
        snapshot, so two runs of the same configuration are
        metrics-identical iff their digests match.
        """
        merged = self.registry.snapshot("cluster", self.clock.now)
        backend_metrics = getattr(self.backend, "metrics", None)
        if callable(backend_metrics):
            # Cluster backends report their own redundancy/repair state
            # (``cluster.*``, ``repair.*``, ``scrub.*``); surface it in
            # the merged snapshot so tenancy pressure metrics can assert
            # on degraded-mode behaviour.
            for key, value in backend_metrics().counters.items():
                merged.counters.setdefault(key, value)
        for tenant in self.tenants:
            snap = tenant.metrics()
            prefix = f"tenant.{tenant.name}."
            for key, value in snap.counters.items():
                merged.counters[prefix + key] = value
            for key, value in snap.breakdowns.items():
                merged.breakdowns[prefix + key] = value
            for key, value in snap.breakdown_counts.items():
                merged.breakdown_counts[prefix + key] = value
            for key, value in snap.histograms.items():
                merged.histograms[prefix + key] = value
        merged.extra["backend"] = self.backend_label
        merged.extra["tenants"] = [t.name for t in self.tenants]
        return merged

    def _jain_index(self) -> float:
        """Jain's fairness index over per-tenant scheduled time.

        1.0 = perfectly even CPU-time split; 1/N = one tenant hogged the
        whole timeline. 1.0 by convention before anything has run.
        """
        shares = [t.run_us for t in self.tenants]
        total = sum(shares)
        if not shares or total <= 0:
            return 1.0
        squares = sum(s * s for s in shares)
        return min(1.0, (total * total) / (len(shares) * squares))


__all__ = ["ComputeCluster", "Tenant", "WorkloadFactory"]
