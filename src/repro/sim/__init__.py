"""Simulation utilities beyond the core machine model."""

from repro.sim.workers import Op, Workers, cpu, read, touch, write

__all__ = ["Op", "Workers", "cpu", "read", "touch", "write"]
