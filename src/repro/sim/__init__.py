"""Simulation utilities beyond the core machine model."""

from repro.sim.rack import RackCluster, make_rack, run_rack_cell, sweep_rack
from repro.sim.tenancy import ComputeCluster, Tenant
from repro.sim.workers import Op, Workers, cpu, read, touch, write

__all__ = [
    "ComputeCluster",
    "Op",
    "RackCluster",
    "Tenant",
    "Workers",
    "cpu",
    "make_rack",
    "read",
    "run_rack_cell",
    "sweep_rack",
    "touch",
    "write",
]
