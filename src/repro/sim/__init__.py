"""Simulation utilities beyond the core machine model."""

from repro.sim.tenancy import ComputeCluster, Tenant
from repro.sim.workers import Op, Workers, cpu, read, touch, write

__all__ = [
    "ComputeCluster",
    "Op",
    "Tenant",
    "Workers",
    "cpu",
    "read",
    "touch",
    "write",
]
