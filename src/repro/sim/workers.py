"""Cooperative multi-worker execution over one simulated machine.

The simulator's application normally runs as one thread. Real deployments
run many (§5.2: DiLOS supports pthreads across cores), and the §4.2 fault
handler has a dedicated path for it: a core faulting on a page another
core is already fetching finds a FETCHING PTE and *waits* instead of
issuing a duplicate RDMA read.

:class:`Workers` models threads as generators of memory operations and
interleaves them round-robin, one operation per turn, on the shared clock.
The quantum is one memory access — coarse, but exactly the granularity at
which paging-subsystem interactions (duplicate-fetch suppression, shared
prefetch benefit, cache contention) occur.

Ops are built with the helpers::

    def worker(base):
        yield write(base, b"hello")
        yield cpu(1.5)
        data = yield read(base, 5)
        assert data == b"hello"

    Workers([worker(r1.base), worker(r2.base)]).run(system)

``yield read(...)`` evaluates to the loaded bytes, so workers can make
data-dependent accesses (pointer chasing, tree walks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, List, Optional

from repro.core.api import BaseSystem


@dataclass(frozen=True)
class Op:
    """One worker operation."""

    kind: str  # "read" | "write" | "touch" | "cpu"
    va: int = 0
    size: int = 0
    data: bytes = b""
    us: float = 0.0


def read(va: int, size: int) -> Op:
    """A load op; ``yield read(...)`` evaluates to the bytes."""
    return Op("read", va=va, size=size)


def write(va: int, data: bytes) -> Op:
    """A store op."""
    return Op("write", va=va, data=data)


def touch(va: int, size: int) -> Op:
    """Fault a range in without moving bytes."""
    return Op("touch", va=va, size=size)


def cpu(us: float) -> Op:
    """Charge compute time between memory operations."""
    return Op("cpu", us=us)


WorkerGen = Generator[Op, Any, None]


class Workers:
    """Round-robin interleaving of worker generators on one system."""

    def __init__(self, workers: Iterable[WorkerGen]) -> None:
        self._workers: List[Optional[WorkerGen]] = list(workers)
        if not self._workers:
            raise ValueError("need at least one worker")
        self.ops_executed = 0

    def run(self, system: BaseSystem) -> float:
        """Drive all workers to completion; returns elapsed simulated us."""
        start = system.clock.now
        memory = system.memory
        pending: List[Any] = [None] * len(self._workers)
        live = len(self._workers)
        while live:
            for index, worker in enumerate(self._workers):
                if worker is None:
                    continue
                try:
                    op = worker.send(pending[index])
                except StopIteration:
                    self._workers[index] = None
                    live -= 1
                    continue
                pending[index] = self._execute(system, memory, op)
                self.ops_executed += 1
        return system.clock.now - start

    @staticmethod
    def _execute(system: BaseSystem, memory, op: Op):
        if op.kind == "read":
            return memory.read(op.va, op.size)
        if op.kind == "write":
            memory.write(op.va, op.data)
            return None
        if op.kind == "touch":
            memory.touch(op.va, op.size)
            return None
        if op.kind == "cpu":
            system.cpu(op.us)
            return None
        raise ValueError(f"unknown op kind {op.kind!r}")
