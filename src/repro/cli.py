"""Command-line runner: single experiments without writing a script.

Examples::

    python -m repro systems
    python -m repro seqrw --system dilos-readahead --ratio 0.125 --mode read
    python -m repro quicksort --system fastswap --ratio 0.25
    python -m repro taxi --system aifm --ratio 0.5
    python -m repro redis-lrange --system dilos-readahead --app-aware
    python -m repro bc --system dilos-readahead --guide

Every command boots a fresh simulated machine, runs one workload, and
prints the headline number plus the paging-subsystem counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.common.units import MIB
from repro.core.spec import BACKEND_SPEC_EXAMPLES, make_backend
from repro.harness import SYSTEM_KINDS, format_table, local_bytes_for, make_system
from repro.net.faults import FaultPlan
from repro.alloc import Mimalloc
from repro.apps.dataframe import TaxiAnalyticsWorkload
from repro.apps.gapbs import (
    BcFrontierGuide,
    BetweennessWorkload,
    CsrGraph,
    PageRankWorkload,
    generate_power_law_graph,
)
from repro.apps.kmeans import KMeansWorkload
from repro.apps.quicksort import QuicksortWorkload
from repro.apps.redis import (
    GetWorkload,
    LRangeWorkload,
    RedisPrefetchGuide,
    RedisServer,
)
from repro.apps.seqrw import SequentialWorkload
from repro.apps.snappy import SnappyWorkload


def _print_metrics(headline: str, metrics: Dict) -> None:
    print(headline)
    interesting = ("major_faults", "minor_faults", "first_touch_faults",
                   "prefetches_issued", "direct_reclaims", "pages_evicted",
                   "pages_cleaned", "net_bytes_read", "net_bytes_written",
                   "derefs", "object_misses", "objects_evacuated")
    rows = [[key, metrics[key]] for key in interesting if key in metrics]
    print(format_table("paging counters", ["counter", "value"], rows))


def _fault_plan(spec: str) -> FaultPlan:
    """argparse type for --net-faults: parse errors exit 2 cleanly."""
    try:
        return FaultPlan.from_spec(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _backend_spec(spec: str) -> str:
    """argparse type for --backend: validate the spec, return the string
    (systems are sized per command, so the real backend is built later)."""
    try:
        make_backend(spec, 1 * MIB)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return spec


def _boot(args, footprint: int):
    return make_system(args.system, local_bytes_for(footprint, args.ratio),
                       backend=getattr(args, "backend", "node"),
                       net_faults=getattr(args, "net_faults", None))


def cmd_trace(args) -> int:
    """Run one workload with event tracing on, print a Fig.-6-style fault
    breakdown computed from the recorded spans, and export the trace as
    Chrome ``trace_event`` JSON (Perfetto-loadable) and/or JSONL."""
    from repro.obs import (
        Observability,
        fault_breakdown_from_spans,
        write_chrome_trace,
        write_jsonl,
    )

    builders = {
        "seqrw": lambda: SequentialWorkload(args.ws_mib * MIB),
        "quicksort": lambda: QuicksortWorkload(count=args.size or (1 << 14)),
        "kmeans": lambda: KMeansWorkload(n_points=args.size or (1 << 13)),
        "taxi": lambda: TaxiAnalyticsWorkload(rows=args.size or (1 << 14)),
    }
    workload = builders[args.workload]()
    if args.system.startswith("aifm") and args.workload != "taxi":
        print("error: only the taxi workload has an AIFM port",
              file=sys.stderr)
        return 2
    if args.capacity <= 0:
        print("error: --capacity must be a positive event count",
              file=sys.stderr)
        return 2
    obs = Observability.tracing(capacity=args.capacity)
    system = make_system(
        args.system, local_bytes_for(workload.footprint_bytes, args.ratio),
        obs=obs, backend=getattr(args, "backend", "node"),
        net_faults=getattr(args, "net_faults", None))
    if args.workload == "seqrw":
        workload.run(system, args.mode, verify=(args.mode == "read"))
    elif args.system.startswith("aifm"):
        workload.run_aifm(system)
    else:
        workload.run(system)

    tracer = obs.tracer
    print(f"{system.name}: {args.workload} recorded {len(tracer)} trace "
          f"events ({tracer.dropped} dropped at the ring buffer) over "
          f"{system.clock.now / 1000:.2f} simulated ms")
    breakdown = fault_breakdown_from_spans(tracer)
    if breakdown["count"]:
        rows = [[component, f"{avg_us:.3f}"]
                for component, avg_us in sorted(
                    breakdown["components"].items())]
        rows.append(["total (avg span)", f"{breakdown['avg_total_us']:.3f}"])
        print(format_table(
            f"fault.major breakdown from {breakdown['count']} spans (us)",
            ["component", "avg_us"], rows))
    if args.out:
        write_chrome_trace(tracer, args.out, process_name=system.name)
        print(f"wrote Chrome trace to {args.out} "
              "(load it at https://ui.perfetto.dev)")
    if args.jsonl:
        count = write_jsonl(tracer, args.jsonl)
        print(f"wrote {count} events to {args.jsonl}")
    return 0


def _sweep_workload(name: str, size):
    """Build one sweep workload instance (module-level so the --jobs
    fan-out can rebuild it inside pool workers)."""
    if name == "quicksort":
        return QuicksortWorkload(count=size or (1 << 16))
    if name == "kmeans":
        return KMeansWorkload(n_points=size or (1 << 15))
    if name == "taxi":
        return TaxiAnalyticsWorkload(rows=size or (1 << 16))
    raise KeyError(name)


class _SweepRunner:
    """Picklable per-cell runner for ``repro sweep``.

    Each cell boots a fresh system and runs a fresh workload, so cells
    are independent; ``--jobs`` ships instances of this class to pool
    workers, which a closure over ``args`` could not do.
    """

    def __init__(self, workload: str, size) -> None:
        self.workload = workload
        self.size = size

    def __call__(self, kind, ratio, backend="node"):
        from repro.harness.experiment import Measurement

        workload = _sweep_workload(self.workload, self.size)
        system = make_system(
            kind, local_bytes_for(workload.footprint_bytes, ratio),
            backend=backend)
        if kind.startswith("aifm"):
            if self.workload != "taxi":
                # A plain exception, not SystemExit: BaseException inside
                # a --jobs pool worker kills the worker and hangs the
                # map; cmd_sweep rejects this combination up front.
                raise ValueError(
                    "only the taxi workload has an AIFM port")
            result = workload.run_aifm(system)
        else:
            result = workload.run(system)
        return Measurement("", "", 0.0, value=result.elapsed_us / 1000.0,
                           unit="ms").record_metrics(system)


def _sweep_llm(args) -> int:
    """The llm sweep grid: P:D split x local-memory ratio on one kernel.

    All validation happens here, before any pool worker is spawned — a
    bad kernel/split surfaces as a clear exit-2 message, never as a
    SystemExit inside a ``--jobs`` worker (which would hang the map).
    """
    from repro.apps.llm import (PdSweepRunner, best_split_per_ratio,
                                parse_pd_split)
    from repro.harness import ratio_table
    from repro.harness.experiment import sweep_ratios
    from repro.harness.results import save_json

    if any(kind.startswith("aifm") for kind in args.systems):
        print("error: the llm sweep disaggregates prefill/decode across "
              "a shared cluster backend, which AIFM tenants cannot join "
              "(bump allocation); pick a paging kernel, or run the "
              "single-node AIFM port via 'repro llm --system aifm'",
              file=sys.stderr)
        return 2
    if len(args.systems) != 1:
        print("error: the llm sweep grid is P:D split x ratio on one "
              "kernel; pass exactly one --systems kind", file=sys.stderr)
        return 2
    splits = args.pd_splits or ["3:1", "2:2", "1:3"]
    try:
        for split in splits:
            parse_pd_split(split)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ratios = args.ratios or [0.25, 0.5, 1.0, 1.5]

    runner = PdSweepRunner(args.systems[0], n_requests=args.size or 12)
    measurements = sweep_ratios("llm", runner, splits, ratios,
                                backend=args.backend, jobs=args.jobs)
    print(ratio_table(
        f"llm prefill/decode makespan on {args.systems[0]}", measurements))
    best = best_split_per_ratio(measurements)
    print(format_table(
        "best P:D split per local-memory ratio",
        ["ratio", "split"],
        [[f"{ratio:g}", split] for ratio, split in best.items()]))
    if len(set(best.values())) > 1:
        print("regime crossover: the best split changes with the "
              "local-memory ratio")
    if args.save:
        save_json(measurements, args.save)
        print(f"saved {len(measurements)} measurements to {args.save}")
    return 0


def _sweep_rack(args) -> int:
    """The rack sweep grid: placement policy x ToR oversubscription.

    Every cell boots a fresh rack (same tenants, same arrival stream)
    and reports the serving tail next to the fabric/pool metrics that
    explain it — the locality-vs-load tradeoff in one table. All
    validation happens here, before any ``--jobs`` pool worker spawns.
    """
    import json

    from repro.mem.pool import placement_kinds
    from repro.sim.rack import sweep_rack

    placements = args.placements or ["locality", "load"]
    unknown = [p for p in placements if p not in placement_kinds()]
    if unknown:
        print(f"error: unknown placement policies {unknown}; pick from "
              f"{list(placement_kinds())}", file=sys.stderr)
        return 2
    oversubs = args.oversubs or [1.0, 4.0]
    if any(o < 1.0 for o in oversubs):
        print("error: oversubscription factors must be >= 1",
              file=sys.stderr)
        return 2
    if args.systems == ["fastswap", "dilos-readahead"]:
        # The parser default (meant for the ratio sweeps); the rack
        # grid is placement x oversubscription on one kernel.
        args.systems = ["dilos-readahead"]
    if len(args.systems) != 1:
        print("error: the rack sweep grid is placement x oversubscription "
              "on one kernel; pass exactly one --systems kind",
              file=sys.stderr)
        return 2
    if args.systems[0].startswith("aifm"):
        print("error: AIFM tenants cannot share the rack's pooled backend "
              "(bump allocation); pick a paging kernel", file=sys.stderr)
        return 2

    rows = sweep_rack(placements, oversubs, jobs=args.jobs,
                      kind=args.systems[0],
                      tenants=args.size or 8)
    print(format_table(
        f"rack serving tail on {args.systems[0]} "
        f"({args.size or 8} tenants)",
        ["placement", "oversub", "p99_us", "viol_rate", "trunk_xing",
         "trunk_q_us", "spills", "stranded", "frag"],
        [[r["placement"], f"{r['oversub']:g}", f"{r['p99_us']:.2f}",
          f"{r['violation_rate']:.4f}", int(r["trunk_crossings"]),
          f"{r['trunk_queue_us']:.1f}", int(r["pool_spills"]),
          int(r["stranded_slots"]), f"{r['frag_imbalance']:.3f}"]
         for r in rows]))
    if args.save:
        with open(args.save, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
        print(f"saved {len(rows)} cells to {args.save}")
    return 0


def cmd_sweep(args) -> int:
    """Sweep one workload across systems and local-memory ratios, printing
    a Figure 7/8-style table (optionally saving JSON for plotting)."""
    from repro.harness import ratio_table
    from repro.harness.experiment import sweep_ratios
    from repro.harness.results import save_json

    if args.workload not in ("quicksort", "kmeans", "taxi", "llm", "rack"):
        print("error: sweep supports ['kmeans', 'llm', 'quicksort', "
              "'rack', 'taxi']", file=sys.stderr)
        return 2
    if args.pd_splits and args.workload != "llm":
        print("error: --pd-splits only applies to the llm sweep",
              file=sys.stderr)
        return 2
    if (args.placements or args.oversubs) and args.workload != "rack":
        print("error: --placements/--oversubs only apply to the rack "
              "sweep", file=sys.stderr)
        return 2
    if args.workload == "llm":
        return _sweep_llm(args)
    if args.workload == "rack":
        return _sweep_rack(args)
    if args.workload != "taxi" and any(
            kind.startswith("aifm") for kind in args.systems):
        print("error: only the taxi workload has an AIFM port",
              file=sys.stderr)
        return 2

    runner = _SweepRunner(args.workload, args.size)
    measurements = sweep_ratios(args.workload, runner, args.systems,
                                args.ratios or [0.125, 0.5, 1.0],
                                backend=args.backend, jobs=args.jobs)
    print(ratio_table(f"{args.workload} completion time", measurements))
    if args.save:
        save_json(measurements, args.save)
        print(f"saved {len(measurements)} measurements to {args.save}")
    return 0


def cmd_systems(_args) -> int:
    """List the available system keys."""
    print(format_table("available systems", ["key"],
                       [[kind] for kind in SYSTEM_KINDS]))
    return 0


def cmd_seqrw(args) -> int:
    """Sequential read/write microbenchmark (Tables 1-3, Figure 6)."""
    workload = SequentialWorkload(args.ws_mib * MIB)
    system = _boot(args, workload.footprint_bytes)
    result = workload.run(system, args.mode, verify=(args.mode == "read"))
    _print_metrics(
        f"{system.name}: sequential {args.mode} {result.gb_per_s:.2f} GB/s "
        f"({result.elapsed_us / 1000:.2f} simulated ms)", result.metrics)
    return 0


def cmd_quicksort(args) -> int:
    """Quicksort over a far-memory array (Figure 7(a))."""
    workload = QuicksortWorkload(count=args.count)
    system = _boot(args, workload.footprint_bytes)
    result = workload.run(system, verify=True)
    _print_metrics(
        f"{system.name}: sorted {result.count:,} ints in "
        f"{result.elapsed_us / 1000:.2f} simulated ms", result.metrics)
    return 0


def cmd_kmeans(args) -> int:
    """K-means clustering (Figure 7(b))."""
    workload = KMeansWorkload(n_points=args.points)
    system = _boot(args, workload.footprint_bytes)
    result = workload.run(system)
    _print_metrics(
        f"{system.name}: k-means ({result.points:,} pts, "
        f"{result.iterations} iters) in {result.elapsed_us / 1000:.2f} ms, "
        f"inertia {result.inertia:,.0f}", result.metrics)
    return 0


def cmd_snappy(args) -> int:
    """Snappy-like compression/decompression (Figures 7(c,d))."""
    workload = SnappyWorkload()
    system = _boot(args, workload.footprint_bytes)
    if args.system.startswith("aifm"):
        runner = (workload.run_compress_aifm if args.mode == "compress"
                  else workload.run_decompress_aifm)
    else:
        runner = (workload.run_compress if args.mode == "compress"
                  else workload.run_decompress)
    result = runner(system, verify=True)
    _print_metrics(
        f"{args.system}: snappy {result.mode} "
        f"{result.input_bytes // 1024} KiB in "
        f"{result.elapsed_us / 1000:.2f} ms", result.metrics)
    return 0


def cmd_taxi(args) -> int:
    """NYC-taxi DataFrame analytics (Figure 8)."""
    workload = TaxiAnalyticsWorkload(rows=args.rows)
    system = _boot(args, workload.footprint_bytes)
    result = (workload.run_aifm(system) if args.system.startswith("aifm")
              else workload.run(system))
    _print_metrics(
        f"{args.system}: taxi analytics over {result.rows:,} rows in "
        f"{result.elapsed_us / 1000:.2f} ms", result.metrics)
    print(format_table("answers", ["query", "value"],
                       [[k, v] for k, v in result.answers.items()]))
    return 0


def _build_graph(args):
    offsets, edges = generate_power_law_graph(n=args.nodes,
                                              target_m=args.edges)
    footprint = (len(offsets) + len(edges)) * 8
    system = _boot(args, footprint)
    return system, CsrGraph(system, offsets, edges)


def cmd_pagerank(args) -> int:
    """GAPBS PageRank (Figure 9(a))."""
    system, graph = _build_graph(args)
    result = PageRankWorkload().run(system, graph)
    _print_metrics(
        f"{args.system}: PageRank (n={result.n:,}, m={result.m:,}) in "
        f"{result.elapsed_us / 1000:.2f} ms; top vertex {result.top_vertex}",
        result.metrics)
    return 0


def cmd_bc(args) -> int:
    """GAPBS betweenness centrality (Figure 9(b)), optionally guided."""
    system, graph = _build_graph(args)
    guide = None
    if args.guide:
        if not args.system.startswith("dilos"):
            print("error: --guide requires a DiLOS system", file=sys.stderr)
            return 2
        guide = BcFrontierGuide(graph)
        guide.bind(system)
    workload = BetweennessWorkload(n_sources=args.sources)
    result = workload.run(system, graph, guide=guide)
    _print_metrics(
        f"{args.system}: betweenness (n={result.n:,}, "
        f"{result.sources} sources{', app-aware guide' if guide else ''}) "
        f"in {result.elapsed_us / 1000:.2f} ms; top vertex "
        f"{result.top_vertex}", result.metrics)
    return 0


def _redis_server(args, footprint: int):
    guide = RedisPrefetchGuide() if args.app_aware else None
    if args.app_aware and not args.system.startswith("dilos"):
        print("error: --app-aware requires a DiLOS system", file=sys.stderr)
        return None
    system = make_system(args.system, local_bytes_for(footprint, args.ratio),
                         remote_bytes=512 * MIB,
                         backend=getattr(args, "backend", "node"),
                         net_faults=getattr(args, "net_faults", None))
    return RedisServer(system, Mimalloc(system, arena_bytes=256 * MIB),
                       guide=guide)


def cmd_redis_get(args) -> int:
    """Redis GET serving throughput (Figures 10(a-c))."""
    size = "mixed" if args.value_size == "mixed" else int(args.value_size)
    workload = GetWorkload(value_size=size, n_keys=args.keys,
                           n_queries=args.queries)
    server = _redis_server(args, workload.footprint_bytes)
    if server is None:
        return 2
    workload.populate(server)
    server.system.clock.advance(5000)
    stats = workload.drive(server, verify=True)
    _print_metrics(
        f"{args.system}: GET({args.value_size}) "
        f"{stats.requests_per_second:,.0f} req/s, "
        f"p99 {stats.latencies.pct(99):.1f} us", stats.metrics)
    return 0


def cmd_redis_lrange(args) -> int:
    """Redis LRANGE throughput (Figure 10(d))."""
    workload = LRangeWorkload(n_queries=args.queries)
    server = _redis_server(args, workload.footprint_bytes)
    if server is None:
        return 2
    workload.populate(server)
    server.system.clock.advance(5000)
    stats = workload.drive(server, verify=True)
    _print_metrics(
        f"{args.system}: LRANGE {stats.requests_per_second:,.0f} req/s, "
        f"p99 {stats.latencies.pct(99):.1f} us", stats.metrics)
    return 0


def cmd_tenants(args) -> int:
    """Run a multi-tenant scenario: N kernels round-robin on one shared
    clock and memory backend, reporting per-tenant and aggregate metrics
    plus the final deterministic digest."""
    from repro.harness.scenarios import SCENARIOS, build_scenario

    if args.list:
        print(format_table("preset scenarios", ["name", "description"],
                           [[name, desc]
                            for name, (desc, _) in sorted(SCENARIOS.items())]))
        return 0
    try:
        cluster = build_scenario(args.scenario, backend=args.backend,
                                 quantum_us=args.quantum_us,
                                 kind=args.system)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    snapshot = cluster.run(max_quanta=args.max_quanta)
    print(f"{args.scenario} on {cluster.backend_label}: "
          f"{len(cluster.tenants)} tenants, "
          f"{int(snapshot.value('cluster.quanta'))} quanta, "
          f"{cluster.clock.now / 1000:.2f} simulated ms, "
          f"fairness {snapshot.value('cluster.fairness_jain'):.3f}")
    rows = []
    for tenant in cluster.tenants:
        rows.append([
            tenant.name,
            tenant.ops,
            tenant.quanta,
            f"{tenant.run_us / 1000:.2f}",
            int(snapshot.value(f"tenant.{tenant.name}.fault.major")),
            int(snapshot.value(f"tenant.{tenant.name}.prefetch.issued")),
            int(snapshot.value(f"tenant.{tenant.name}.net.bytes_read")),
            "yes" if tenant.done else "no",
        ])
    print(format_table(
        "tenants",
        ["tenant", "ops", "quanta", "run_ms", "major_faults", "prefetches",
         "net_rd_bytes", "done"], rows))
    used = (snapshot.value("backend.total_slots")
            - snapshot.value("backend.free_slots"))
    print(format_table("shared backend", ["metric", "value"], [
        ["slots used", f"{int(used)}/{int(snapshot.value('backend.total_slots'))}"],
        ["capacity (MiB)", f"{snapshot.value('backend.capacity_bytes') / MIB:.0f}"],
    ]))
    print(f"metrics digest: {snapshot.digest()}")
    return 0


def _serve_spec(spec: str) -> str:
    """argparse type for --spec: validate the serve spec, return it."""
    from repro.serve import coerce_serve_spec
    try:
        coerce_serve_spec(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return spec


def cmd_serve(args) -> int:
    """Run an open-loop serving preset: deterministic arrivals through
    admission control and the load balancer into service tenants, with
    SLO accounting in canonical ``serve.*`` metrics. The preset runs
    twice; any drift in the request-trace or metrics digest is a
    determinism failure (non-zero exit). A contrast run with the naive
    configuration (no admission / load-blind routing) prints alongside."""
    from repro.harness.scenarios import SERVE_SCENARIOS, build_serve_scenario

    if args.list:
        print(format_table(
            "serving presets", ["name", "description"],
            [[name, desc] for name, (desc, _, _, _)
             in sorted(SERVE_SCENARIOS.items())]))
        return 0

    def one(naive: bool = False):
        cluster = build_serve_scenario(args.preset, backend=args.backend,
                                       kind=args.system, naive=naive)
        if args.spec is not None:
            from repro.serve import coerce_serve_spec
            cluster.serve_spec = coerce_serve_spec(args.spec)
        return cluster, cluster.serve()

    try:
        cluster, report = one()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = report.spec
    snap = report.snapshot
    hist = snap.histograms.get("serve.latency_us", {})
    completed = snap.value("serve.completed")
    violation_rate = (snap.value("serve.slo_violations") / completed
                      if completed else 0.0)
    print(f"{args.preset} on {cluster.backend_label}: "
          f"{len(cluster.tenants)} service tenants, {spec.to_spec()}")
    print(format_table("serve.* (canonical metrics)", ["metric", "value"], [
        ["offered", int(snap.value("serve.offered"))],
        ["admitted", int(snap.value("serve.admitted"))],
        ["shed", int(snap.value("serve.shed"))],
        ["completed", int(completed)],
        ["errors", int(snap.value("serve.errors"))],
        ["goodput (in-SLO ok)", int(snap.value("serve.goodput"))],
        ["SLO violations", int(snap.value("serve.slo_violations"))],
        ["violation rate", f"{violation_rate:.4f}"],
        ["p50 latency (us)", f"{hist.get('p50', 0.0):.2f}"],
        ["p99 latency (us)", f"{hist.get('p99', 0.0):.2f}"],
        ["p999 latency (us)", f"{hist.get('p999', 0.0):.2f}"],
        ["offered rps", f"{snap.value('serve.offered_rps'):,.0f}"],
        ["goodput rps", f"{snap.value('serve.goodput_rps'):,.0f}"],
    ] + ([
        ["TTFT p99 (us)", f"{report.ttft.get('p99', 0.0):.2f}"],
        ["TPOT p99 (us)", f"{report.tpot.get('p99', 0.0):.2f}"],
    ] if report.ttft else [])))
    print(format_table(
        "requests routed per tenant", ["tenant", "served"],
        [[name, served] for name, served in report.per_tenant.items()]))

    drifted = False
    if not args.once:
        _, repeat = one()
        drifted = (repeat.trace_digest != report.trace_digest
                   or repeat.snapshot.digest() != snap.digest())

    if not args.no_contrast:
        _, _, _, contrast_label = SERVE_SCENARIOS[args.preset]
        _, naive_report = one(naive=True)
        naive_hist = naive_report.snapshot.histograms.get(
            "serve.latency_us", {})
        print(format_table(
            f"preset vs naive ({contrast_label})",
            ["metric", "preset", "naive"], [
                ["p50 (us)", f"{hist.get('p50', 0.0):.2f}",
                 f"{naive_hist.get('p50', 0.0):.2f}"],
                ["p99 (us)", f"{hist.get('p99', 0.0):.2f}",
                 f"{naive_hist.get('p99', 0.0):.2f}"],
                ["p999 (us)", f"{hist.get('p999', 0.0):.2f}",
                 f"{naive_hist.get('p999', 0.0):.2f}"],
                ["violation rate", f"{violation_rate:.4f}",
                 f"{naive_report.violation_rate:.4f}"],
                ["shed", report.shed, naive_report.shed],
                ["goodput rps", f"{report.goodput_rps:,.0f}",
                 f"{naive_report.goodput_rps:,.0f}"],
            ] + ([
                ["TTFT p99 (us)", f"{report.ttft.get('p99', 0.0):.2f}",
                 f"{naive_report.ttft.get('p99', 0.0):.2f}"],
            ] if report.ttft else [])))

    print(f"request-trace digest: {report.trace_digest}")
    print(f"metrics digest: {snap.digest()}")
    if drifted:
        print("error: determinism drift — the repeated run produced a "
              "different request trace or metrics digest", file=sys.stderr)
        return 1
    if not args.once:
        print("determinism: OK (two runs, identical digests)")
    return 0


def cmd_llm(args) -> int:
    """LLM inference with the KV cache in far memory — single-node
    closed-loop by default, or prefill/decode disaggregation across
    cluster tenants with ``--pd-split P:D``. Both modes decode the
    identical token stream (the compatibility invariant)."""
    from repro.apps.llm import PD_CONFIG, LlmWorkload, run_pd

    if args.pd_split is not None:
        try:
            result = run_pd(kind=args.system, ratio=args.ratio,
                            split=args.pd_split, backend=args.backend,
                            n_requests=args.requests,
                            net_faults=args.net_faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{args.system} P:D {result.split} on {result.backend}: "
              f"{result.decoded_tokens} tokens decoded across "
              f"{result.requests} requests in "
              f"{result.makespan_us / 1000:.2f} simulated ms "
              f"({result.kv_transfer_bytes // 1024} KiB KV transferred)")
        print(format_table(
            "per-tenant", ["tenant", "ops", "run_ms", "major_faults"],
            [[name, int(row["ops"]), f"{row['run_us'] / 1000:.2f}",
              int(row["major_faults"])]
             for name, row in sorted(result.per_tenant.items())]))
        print(f"token digest: {result.token_digest}")
        print(f"kv digest: {result.kv_digest}")
        return 0

    workload = LlmWorkload(n_requests=args.requests, config=PD_CONFIG,
                           prompt_min=24, prompt_max=56,
                           out_min=8, out_max=16)
    system = _boot(args, workload.footprint_bytes)
    result = (workload.run_aifm(system) if args.system.startswith("aifm")
              else workload.run(system))
    mean_ttft = sum(result.ttft_us) / len(result.ttft_us)
    mean_tpot = sum(result.tpot_us) / len(result.tpot_us)
    _print_metrics(
        f"{system.name}: {result.decoded_tokens} tokens decoded "
        f"({result.prefill_tokens} prefilled) across {result.requests} "
        f"requests in {result.elapsed_us / 1000:.2f} simulated ms, "
        f"mean TTFT {mean_ttft:.1f} us, mean TPOT {mean_tpot:.1f} us",
        result.metrics)
    print(f"token digest: {result.token_digest}")
    print(f"kv digest: {result.kv_digest}")
    return 0


def cmd_repair(args) -> int:
    """Run the node-rejoin repair demo: degraded writes while a member
    is down, journal-protected rejoin, paced resilver, at-rest scrub
    repair, then a second failure with a full byte-exact verification."""
    from repro.harness.scenarios import repair_demo

    try:
        result = repair_demo(backend=args.backend, kind=args.system,
                             repair=args.repair)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{result['kind']} on {result['backend']}: "
          f"{result['verified_pages']} pages verified byte-exact after "
          f"rejoin + second failure ({result['time_us'] / 1000:.2f} "
          "simulated ms)")
    print(format_table("repair lifecycle", ["phase", "value"], [
        ["pages journaled while down", result["stale_after_degraded"]],
        ["resilver time (ms)", f"{result['resilver_us'] / 1000:.2f}"],
        ["scrub detect+repair time (ms)", f"{result['scrub_us'] / 1000:.2f}"],
    ]))
    rows = [[key, int(value)]
            for key, value in sorted(result["counters"].items())]
    print(format_table("cluster/repair/scrub counters",
                       ["counter", "value"], rows))
    print(f"metrics digest: {result['digest']}")
    return 0


def cmd_kv(args) -> int:
    """Run the replicated KV failover preset: two KV tenants over a
    redundant backend with a lossy wire, the lease-holding member killed
    mid-run and rejoined while serving continues. Prints the serving
    tail plus the availability/consistency ledger; the run replays once
    and any digest drift is a determinism failure."""
    from repro.harness.scenarios import kv_failover

    def one():
        return kv_failover(backend=args.backend, kind=args.system,
                           requests=args.requests, lease_us=args.lease_us,
                           kill_at_us=args.kill_at,
                           rejoin_at_us=args.rejoin_at)

    try:
        cluster, report = one()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    snap = cluster.metrics()
    lost = int(snap.value("kv.lost_updates"))
    print(f"kv over {args.backend} ({args.system}): "
          f"{report.completed}/{report.offered} requests, "
          f"{int(snap.value('kv.failovers'))} failovers, "
          f"{lost} lost updates")
    print(format_table("serving tail", ["metric", "value"], [
        ["offered", report.offered],
        ["completed", report.completed],
        ["p50 latency (us)", f"{report.latency.get('p50', 0.0):.2f}"],
        ["p99 latency (us)", f"{report.latency.get('p99', 0.0):.2f}"],
        ["goodput rps", f"{report.goodput_rps:,.0f}"],
    ]))
    print(format_table("availability / consistency", ["metric", "value"], [
        ["gets / sets / deletes",
         f"{int(snap.value('kv.gets'))} / {int(snap.value('kv.sets'))} / "
         f"{int(snap.value('kv.deletes'))}"],
        ["failovers", int(snap.value("kv.failovers"))],
        ["failover latency (us)", int(snap.value("kv.failover_us"))],
        ["unavailability (us)", int(snap.value("kv.unavail_us"))],
        ["rejects while unavailable", int(snap.value("kv.unavail_rejects"))],
        ["rejected writes", int(snap.value("kv.rejected_writes"))],
        ["lease renewals", int(snap.value("kv.lease_renewals"))],
        ["stale candidates skipped",
         int(snap.value("kv.stale_candidates_skipped"))],
        ["pages resilvered", int(snap.value("repair.pages_resilvered"))],
        ["lost updates", lost],
    ]))
    print(f"request-trace digest: {report.trace_digest}")
    print(f"metrics digest: {snap.digest()}")
    if lost:
        print("error: lost updates detected — acknowledged writes were "
              "not durable across the failover", file=sys.stderr)
        return 1
    if not args.once:
        repeat_cluster, repeat = one()
        if (repeat.trace_digest != report.trace_digest
                or repeat_cluster.metrics().digest() != snap.digest()):
            print("error: determinism drift — the repeated run produced a "
                  "different request trace or metrics digest",
                  file=sys.stderr)
            return 1
        print("determinism: OK (two runs, identical digests)")
    return 0


def cmd_rack(args) -> int:
    """Run one rack-scale serving pass: tenants striped over an explicit
    topology (per-link bandwidth, ToR oversubscription) drawing pages
    from the placement-aware pool. Prints the serving tail, the fabric
    link report and the pool's placement-outcome metrics; the run
    replays once and any digest drift is a determinism failure."""
    from repro.mem.pool import placement_kinds
    from repro.sim.rack import DEFAULT_RACK, make_rack

    if args.topology is None:
        args.topology = DEFAULT_RACK
    if args.placement not in placement_kinds():
        print(f"error: unknown placement {args.placement!r}; pick from "
              f"{list(placement_kinds())}", file=sys.stderr)
        return 2
    if args.system.startswith("aifm"):
        print("error: AIFM tenants cannot share the rack's pooled backend "
              "(bump allocation); pick a paging kernel", file=sys.stderr)
        return 2

    def one():
        kwargs = {}
        if args.spec is not None:
            kwargs["serve"] = args.spec
        cluster = make_rack(tenants=args.tenants, topology=args.topology,
                            placement=args.placement, kind=args.system,
                            **kwargs)
        return cluster, cluster.serve()

    try:
        cluster, report = one()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    snap = report.snapshot
    topo = cluster.topology
    print(f"{topo.spec()} / {cluster.backend_label}: "
          f"{len(cluster.tenants)} tenants, {report.spec.to_spec()}")
    print(format_table("serving tail", ["metric", "value"], [
        ["offered", report.offered],
        ["completed", report.completed],
        ["p50 latency (us)", f"{report.latency.get('p50', 0.0):.2f}"],
        ["p99 latency (us)", f"{report.latency.get('p99', 0.0):.2f}"],
        ["violation rate", f"{report.violation_rate:.4f}"],
        ["goodput rps", f"{report.goodput_rps:,.0f}"],
    ]))
    print(format_table("pool placement outcome", ["metric", "value"], [
        ["allocations", int(snap.value("pool.alloc"))],
        ["spills (off-home)", int(snap.value("pool.spills"))],
        ["stranded slots", int(snap.value("pool.stranded_slots"))],
        ["fragmentation imbalance",
         f"{snap.value('pool.frag_imbalance'):.3f}"],
    ]))
    interesting = [(name, row) for name, row
                   in cluster.link_report().items() if row["bytes"] > 0]
    print(format_table(
        "fabric links (nonzero traffic)",
        ["link", "MiB", "queue_us", "util"],
        [[name, f"{row['bytes'] / MIB:.1f}", f"{row['queue_us']:.1f}",
          f"{row['util']:.3f}"] for name, row in interesting]))
    print(f"request-trace digest: {report.trace_digest}")
    print(f"metrics digest: {snap.digest()}")
    if not args.once:
        _, repeat = one()
        if (repeat.trace_digest != report.trace_digest
                or repeat.snapshot.digest() != snap.digest()):
            print("error: determinism drift — the repeated run produced a "
                  "different request trace or metrics digest",
                  file=sys.stderr)
            return 1
        print("determinism: OK (two runs, identical digests)")
    return 0


def cmd_perf(args) -> int:
    """Wall-clock perf suite: run hot kernels, write BENCH_perf.json,
    exit non-zero past the regression threshold."""
    from repro.harness.perf import main as perf_main
    return perf_main(args.perf_args)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run one DiLOS-reproduction experiment.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, default_system="dilos-readahead"):
        p.add_argument("--system", default=default_system,
                       choices=SYSTEM_KINDS)
        p.add_argument("--ratio", type=float, default=0.125,
                       help="local memory as a fraction of the working set")
        p.add_argument("--net-faults", default=None, metavar="SPEC",
                       type=_fault_plan,
                       help="inject network faults and route IO through the "
                            "reliable transport; SPEC like "
                            "'drop=0.01,corrupt=0.005,seed=7' "
                            "(see docs/RELIABILITY.md)")
        p.add_argument("--backend", default="node", metavar="SPEC",
                       type=_backend_spec,
                       help="remote memory backend: one of "
                            f"{', '.join(BACKEND_SPEC_EXAMPLES)} "
                            "(default: node)")

    sub.add_parser("systems", help="list system keys").set_defaults(
        func=cmd_systems)

    # All flags are owned by repro.harness.perf's own parser; REMAINDER
    # forwards them (including --help) untouched.
    p = sub.add_parser("perf", add_help=False,
                       help="wall-clock perf suite -> BENCH_perf.json")
    p.add_argument("perf_args", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("sweep", help="system x ratio grid for one workload")
    p.add_argument("workload", choices=("quicksort", "kmeans", "taxi",
                                        "llm", "rack"))
    p.add_argument("--systems", nargs="+",
                   default=["fastswap", "dilos-readahead"],
                   choices=SYSTEM_KINDS)
    p.add_argument("--ratios", nargs="+", type=float, default=None,
                   help="local-memory ratios (default: 0.125 0.5 1.0; "
                        "llm: 0.25 0.5 1.0 1.5)")
    p.add_argument("--pd-splits", nargs="+", default=None, metavar="P:D",
                   help="llm only: prefill:decode tenant splits forming "
                        "the grid's second axis (default: 3:1 2:2 1:3)")
    p.add_argument("--placements", nargs="+", default=None,
                   metavar="POLICY",
                   help="rack only: pool placement policies forming the "
                        "grid's first axis (default: locality load)")
    p.add_argument("--oversubs", nargs="+", type=float, default=None,
                   metavar="X",
                   help="rack only: ToR oversubscription factors forming "
                        "the grid's second axis (default: 1 4)")
    p.add_argument("--size", type=int, default=None,
                   help="workload size override (elements/rows)")
    p.add_argument("--save", default=None, help="write results JSON here")
    p.add_argument("--backend", default="node", metavar="SPEC",
                   type=_backend_spec,
                   help="remote memory backend for every booted system: "
                        f"one of {', '.join(BACKEND_SPEC_EXAMPLES)}")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="fan grid cells out across N worker processes "
                        "(results are identical to a serial run)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "tenants",
        help="co-schedule tenant workloads on one shared backend")
    p.add_argument("scenario", nargs="?", default="kmeans+redis",
                   help="preset scenario name (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list preset scenarios and exit")
    p.add_argument("--system", default=None, choices=SYSTEM_KINDS,
                   help="kernel kind for every tenant "
                        "(default: the preset's choice)")
    p.add_argument("--backend", default=None, metavar="SPEC",
                   type=_backend_spec,
                   help="shared backend override: one of "
                        f"{', '.join(BACKEND_SPEC_EXAMPLES)}")
    p.add_argument("--quantum-us", type=float, default=None,
                   help="scheduling time slice in simulated us")
    p.add_argument("--max-quanta", type=int, default=None,
                   help="stop after this many total time slices")
    p.set_defaults(func=cmd_tenants)

    p = sub.add_parser(
        "serve",
        help="open-loop serving preset with SLO metrics + determinism gate")
    p.add_argument("--preset", default="flash_crowd",
                   help="serving preset name (see --list; "
                        "default: flash_crowd)")
    p.add_argument("--list", action="store_true",
                   help="list serving presets and exit")
    p.add_argument("--system", default=None, choices=SYSTEM_KINDS,
                   help="kernel kind for every service tenant "
                        "(default: the preset's choice)")
    p.add_argument("--backend", default=None, metavar="SPEC",
                   type=_backend_spec,
                   help="shared backend override: one of "
                        f"{', '.join(BACKEND_SPEC_EXAMPLES)}")
    p.add_argument("--spec", default=None, metavar="SERVESPEC",
                   type=_serve_spec,
                   help="replace the preset's serve spec, e.g. "
                        "'poisson:rate=5k,clients=1m,slo=2ms' "
                        "(see docs/SERVING.md)")
    p.add_argument("--no-contrast", action="store_true",
                   help="skip the naive contrast run")
    p.add_argument("--once", action="store_true",
                   help="skip the determinism re-run (faster, ungated)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "rack",
        help="rack-scale serving: pooled memory + link contention")
    p.add_argument("--tenants", type=int, default=8,
                   help="service tenants striped over the compute nodes")
    p.add_argument("--topology", default=None, metavar="SPEC",
                   help="rack topology spec, e.g. "
                        "'rack:compute=4,mem=4,link=100,oversub=4' "
                        "(see docs/TOPOLOGY.md)")
    p.add_argument("--placement", default="locality",
                   help="pool placement policy: locality, load, pack or "
                        "interleave (default: locality)")
    p.add_argument("--system", default="dilos-readahead",
                   choices=SYSTEM_KINDS)
    p.add_argument("--spec", default=None, metavar="SERVESPEC",
                   type=_serve_spec,
                   help="replace the preset's serve spec "
                        "(see docs/SERVING.md)")
    p.add_argument("--once", action="store_true",
                   help="skip the determinism re-run (faster, ungated)")
    p.set_defaults(func=cmd_rack)

    p = sub.add_parser(
        "kv",
        help="replicated KV failover: lease election, kill + resilver")
    p.add_argument("--system", default="dilos-readahead",
                   choices=SYSTEM_KINDS)
    p.add_argument("--backend", default="replicated:3", metavar="SPEC",
                   type=_backend_spec,
                   help="redundant backend: replicated:N or parity:K+1 "
                        "(default: replicated:3)")
    p.add_argument("--requests", type=int, default=700,
                   help="open-loop requests offered across the tenants")
    p.add_argument("--lease-us", type=float, default=120.0,
                   help="primary lease length in simulated us")
    p.add_argument("--kill-at", type=float, default=500.0, metavar="US",
                   help="simulated time at which the lease holder dies")
    p.add_argument("--rejoin-at", type=float, default=800.0, metavar="US",
                   help="simulated time at which the dead member rejoins")
    p.add_argument("--once", action="store_true",
                   help="skip the determinism re-run (faster, ungated)")
    p.set_defaults(func=cmd_kv)

    p = sub.add_parser(
        "repair",
        help="node-rejoin demo: degraded writes, resilver, scrub, verify")
    p.add_argument("--system", default="dilos-readahead",
                   choices=SYSTEM_KINDS)
    p.add_argument("--backend", default="replicated:2", metavar="SPEC",
                   type=_backend_spec,
                   help="redundant backend: replicated:N or parity:K+1 "
                        "(default: replicated:2)")
    p.add_argument("--repair", default=("resilver_period=200,"
                                        "resilver_batch=32,"
                                        "scrub_period=1000,scrub_batch=128"),
                   metavar="SPEC",
                   help="repair policy spec, e.g. 'resilver_period=200,"
                        "scrub_period=1000' (see docs/RELIABILITY.md)")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser(
        "trace", help="run a workload with event tracing; export the trace")
    common(p)
    p.add_argument("workload",
                   choices=("seqrw", "quicksort", "kmeans", "taxi"))
    p.add_argument("--mode", choices=("read", "write"), default="read",
                   help="seqrw access mode")
    p.add_argument("--ws-mib", type=int, default=4,
                   help="seqrw working-set size in MiB")
    p.add_argument("--size", type=int, default=None,
                   help="workload size override (elements/rows)")
    p.add_argument("--capacity", type=int, default=1 << 18,
                   help="tracer ring-buffer capacity (events)")
    p.add_argument("--out", default=None,
                   help="write Chrome trace_event JSON here")
    p.add_argument("--jsonl", default=None, help="write JSONL events here")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("seqrw", help="sequential read/write microbenchmark")
    common(p)
    p.add_argument("--mode", choices=("read", "write"), default="read")
    p.add_argument("--ws-mib", type=int, default=16)
    p.set_defaults(func=cmd_seqrw)

    p = sub.add_parser("quicksort", help="Figure 7(a)")
    common(p)
    p.add_argument("--count", type=int, default=1 << 16)
    p.set_defaults(func=cmd_quicksort)

    p = sub.add_parser("kmeans", help="Figure 7(b)")
    common(p)
    p.add_argument("--points", type=int, default=1 << 15)
    p.set_defaults(func=cmd_kmeans)

    p = sub.add_parser("snappy", help="Figures 7(c,d)")
    common(p)
    p.add_argument("--mode", choices=("compress", "decompress"),
                   default="compress")
    p.set_defaults(func=cmd_snappy)

    p = sub.add_parser("taxi", help="Figure 8")
    common(p)
    p.add_argument("--rows", type=int, default=1 << 16)
    p.set_defaults(func=cmd_taxi)

    for name, func in (("pagerank", cmd_pagerank), ("bc", cmd_bc)):
        p = sub.add_parser(name, help="Figure 9")
        common(p)
        p.add_argument("--nodes", type=int, default=8192)
        p.add_argument("--edges", type=int, default=120_000)
        if name == "bc":
            p.add_argument("--sources", type=int, default=2)
            p.add_argument("--guide", action="store_true",
                           help="use the app-aware frontier guide")
        p.set_defaults(func=func)

    p = sub.add_parser(
        "llm", help="LLM inference: KV cache tiered over far memory")
    common(p)
    p.add_argument("--requests", type=int, default=12,
                   help="inference requests in the seeded stream")
    p.add_argument("--pd-split", default=None, metavar="P:D",
                   help="disaggregate: P prefill + D decode tenants on "
                        "a shared cluster (e.g. 3:1)")
    p.set_defaults(func=cmd_llm)

    p = sub.add_parser("redis-get", help="Figure 10(a-c)")
    common(p)
    p.add_argument("--value-size", default="mixed",
                   help="'mixed' or bytes (e.g. 4096)")
    p.add_argument("--keys", type=int, default=300)
    p.add_argument("--queries", type=int, default=800)
    p.add_argument("--app-aware", action="store_true")
    p.set_defaults(func=cmd_redis_get)

    p = sub.add_parser("redis-lrange", help="Figure 10(d)")
    common(p)
    p.add_argument("--queries", type=int, default=700)
    p.add_argument("--app-aware", action="store_true")
    p.set_defaults(func=cmd_redis_lrange)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    # ``perf`` owns its flag surface (repro.harness.perf); dispatch before
    # argparse so its options are never half-parsed here (REMAINDER does
    # not capture leading optionals under subparsers).
    args_in = sys.argv[1:] if argv is None else list(argv)
    if args_in and args_in[0] == "perf":
        from repro.harness.perf import main as perf_main
        return perf_main(args_in[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
