"""Fixed-size bitmaps with run iteration.

The §4.4 allocator guide tracks live object chunks with one bitmap per
4 KiB page at 16-byte granularity (256 bits); ``runs()`` turns the set bits
back into the byte ranges the scatter-gather path transfers.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class Bitmap:
    """A simple bit vector over ``nbits`` bits."""

    def __init__(self, nbits: int) -> None:
        if nbits <= 0:
            raise ValueError("bitmap needs at least one bit")
        self.nbits = nbits
        self._bits = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range [0, {self.nbits})")

    def set(self, index: int) -> None:
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        self._check(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits >> index & 1)

    def set_range(self, start: int, count: int) -> None:
        if count < 0:
            raise ValueError("negative count")
        if count == 0:
            return
        self._check(start)
        self._check(start + count - 1)
        self._bits |= ((1 << count) - 1) << start

    def clear_range(self, start: int, count: int) -> None:
        if count < 0:
            raise ValueError("negative count")
        if count == 0:
            return
        self._check(start)
        self._check(start + count - 1)
        self._bits &= ~(((1 << count) - 1) << start)

    def popcount(self) -> int:
        return bin(self._bits).count("1")

    def any(self) -> bool:
        return self._bits != 0

    def all(self) -> bool:
        return self._bits == (1 << self.nbits) - 1

    def find_first_clear(self) -> int:
        """Index of the lowest clear bit, or -1 if full."""
        inverted = ~self._bits & ((1 << self.nbits) - 1)
        if inverted == 0:
            return -1
        return (inverted & -inverted).bit_length() - 1

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Yield maximal ``(start, count)`` runs of set bits, in order."""
        bits = self._bits
        index = 0
        while bits:
            # Skip clear bits (count trailing zeros).
            tz = (bits & -bits).bit_length() - 1
            index += tz
            bits >>= tz
            # Count trailing ones: bits+1 flips exactly the trailing-one run.
            run = (~bits & (bits + 1)).bit_length() - 1
            yield index, run
            index += run
            bits >>= run

    def as_ranges(self, granule: int) -> List[Tuple[int, int]]:
        """Set-bit runs scaled to byte ranges of ``granule`` bytes/bit."""
        return [(start * granule, count * granule) for start, count in self.runs()]
