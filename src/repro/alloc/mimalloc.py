"""A mimalloc-style user-level allocator over disaggregated memory.

Mirrors the structure DiLOS' allocator guide relies on (§4.4, §5):

* small allocations come from size-class pages — one 4 KiB page serves one
  size class through a per-page free list (mimalloc's "free list sharding");
* every page carries a live-chunk bitmap at 16-byte granularity; this is
  the bitmap the paper added to mimalloc (951 modified LoC) so the cleaner
  can transfer only live bytes;
* large allocations (> 2048 B) take dedicated page spans whose bitmaps are
  set exactly over the allocated bytes.

Allocator *metadata* (free lists, size tables) lives off-page, so page
contents are purely application data; freed chunks therefore come back as
zeros after a guided round trip, which tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import OutOfMemoryError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE, align_up
from repro.alloc.bitmap import Bitmap
from repro.core.guides import AllocatorGuide

#: Live-chunk tracking granularity (bits per 16 bytes: 256 bits/page).
GRANULE = 16
_BITS_PER_PAGE = PAGE_SIZE // GRANULE

#: Small-object size classes, mimalloc-flavoured.
SIZE_CLASSES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048)
_LARGE_THRESHOLD = SIZE_CLASSES[-1]


def size_class_for(size: int) -> int:
    """Smallest size class holding ``size`` bytes."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    raise ValueError(f"{size} is not a small allocation")


class _ClassPage:
    """One 4 KiB page dedicated to a single size class."""

    def __init__(self, base_va: int, size_class: int) -> None:
        self.base_va = base_va
        self.size_class = size_class
        self.slots = PAGE_SIZE // size_class
        self.free_slots = list(range(self.slots - 1, -1, -1))

    @property
    def full(self) -> bool:
        return not self.free_slots

    @property
    def empty(self) -> bool:
        return len(self.free_slots) == self.slots


class Mimalloc:
    """Size-class allocator over a DDC arena region."""

    def __init__(self, system, arena_bytes: int, name: str = "mimalloc-arena") -> None:
        self._system = system
        self.region = system.mmap(arena_bytes, ddc=True, name=name)
        self._bump = self.region.base
        self._free_pages: List[int] = []
        self._class_pages: Dict[int, List[_ClassPage]] = {c: [] for c in SIZE_CLASSES}
        self._page_of: Dict[int, _ClassPage] = {}
        #: va -> requested size, for free() and introspection.
        self._allocations: Dict[int, int] = {}
        #: vpn -> live-chunk bitmap (the guide's input).
        self._bitmaps: Dict[int, Bitmap] = {}
        self.allocated_bytes = 0

    # -- page provisioning ----------------------------------------------------

    def _take_page(self) -> int:
        """A fresh (or recycled) page VA from the arena."""
        if self._free_pages:
            return self._free_pages.pop()
        if self._bump + PAGE_SIZE > self.region.end:
            raise OutOfMemoryError("allocator arena exhausted")
        va = self._bump
        self._bump += PAGE_SIZE
        return va

    def _bitmap(self, vpn: int) -> Bitmap:
        bitmap = self._bitmaps.get(vpn)
        if bitmap is None:
            bitmap = Bitmap(_BITS_PER_PAGE)
            self._bitmaps[vpn] = bitmap
        return bitmap

    def _mark(self, va: int, size: int, live: bool) -> None:
        """Flip the live bits covering ``[va, va+size)``."""
        cursor = va
        remaining = size
        while remaining > 0:
            vpn = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            length = min(PAGE_SIZE - offset, remaining)
            first_bit = offset // GRANULE
            nbits = (offset + length + GRANULE - 1) // GRANULE - first_bit
            bitmap = self._bitmap(vpn)
            if live:
                bitmap.set_range(first_bit, nbits)
            else:
                bitmap.clear_range(first_bit, nbits)
            cursor += length
            remaining -= length

    # -- public API ------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes of disaggregated memory; returns the VA."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size <= _LARGE_THRESHOLD:
            va = self._malloc_small(size)
        else:
            va = self._malloc_large(size)
        self._allocations[va] = size
        self.allocated_bytes += size
        self._mark(va, size, live=True)
        return va

    def _malloc_small(self, size: int) -> int:
        cls = size_class_for(size)
        pages = self._class_pages[cls]
        page = next((p for p in pages if not p.full), None)
        if page is None:
            page = _ClassPage(self._take_page(), cls)
            pages.append(page)
            self._page_of[page.base_va >> PAGE_SHIFT] = page
        slot = page.free_slots.pop()
        return page.base_va + slot * cls

    def _malloc_large(self, size: int) -> int:
        npages = align_up(size) >> PAGE_SHIFT
        # Large spans must be contiguous; take them from the bump frontier.
        if self._bump + npages * PAGE_SIZE > self.region.end:
            raise OutOfMemoryError("allocator arena exhausted")
        va = self._bump
        self._bump += npages * PAGE_SIZE
        return va

    def free(self, va: int) -> None:
        """Release an allocation made by :meth:`malloc`."""
        size = self._allocations.pop(va, None)
        if size is None:
            raise ValueError(f"free of unallocated address {va:#x}")
        self.allocated_bytes -= size
        self._mark(va, size, live=False)
        if size <= _LARGE_THRESHOLD:
            vpn = va >> PAGE_SHIFT
            page = self._page_of[vpn]
            slot = (va - page.base_va) // page.size_class
            page.free_slots.append(slot)
            if page.empty:
                self._class_pages[page.size_class].remove(page)
                del self._page_of[vpn]
                self._free_pages.append(page.base_va)
        else:
            npages = align_up(size) >> PAGE_SHIFT
            for i in range(npages):
                self._free_pages.append(va + i * PAGE_SIZE)

    def allocation_size(self, va: int) -> Optional[int]:
        return self._allocations.get(va)

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)

    # -- the guide's view ----------------------------------------------------------

    def live_ranges(self, vpn: int) -> Optional[List[Tuple[int, int]]]:
        """Live byte ranges of an arena page; None for foreign pages."""
        first = self.region.base >> PAGE_SHIFT
        last = (self.region.end - 1) >> PAGE_SHIFT
        if not first <= vpn <= last:
            return None
        bitmap = self._bitmaps.get(vpn)
        if bitmap is None:
            return []
        return bitmap.as_ranges(GRANULE)


class MimallocGuide(AllocatorGuide):
    """The §4.4 allocator guide: exposes the bitmaps to the page manager."""

    def __init__(self, allocator: Mimalloc) -> None:
        self._allocator = allocator

    def live_ranges(self, vpn: int) -> Optional[List[Tuple[int, int]]]:
        return self._allocator.live_ranges(vpn)
