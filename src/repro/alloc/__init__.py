"""User-level memory allocation: bitmap-tracking mimalloc (§4.4 guide base)."""

from repro.alloc.bitmap import Bitmap
from repro.alloc.mimalloc import (
    GRANULE,
    Mimalloc,
    MimallocGuide,
    SIZE_CLASSES,
    size_class_for,
)

__all__ = [
    "Bitmap",
    "GRANULE",
    "Mimalloc",
    "MimallocGuide",
    "SIZE_CLASSES",
    "size_class_for",
]
