"""Chaos property tests for the replicated KV service.

The acceptance sequence from ROADMAP item 4, driven by hypothesis: a
seeded write burst, the lease-holding member killed at a random point
mid-burst, the split-brain blackout ridden out until the lease provably
lapses, failover to a clean member, the victim rejoined and resilvered
to promotion — and at the end the audit must find **zero** lost
updates: every acknowledged write reads back byte-exact straight off
the backend, on ``replicated:N`` and ``parity:K+1`` alike. Responses
the service rejected (no quorum, no lease) must leave no trace at all.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.api import Request
from repro.apps.kvstore import build_kv_service
from repro.common.units import MIB
from repro.harness import make_system

pytestmark = pytest.mark.slow

LEASE_US = 150.0


def build(backend_spec):
    system = make_system("dilos-stride", local_bytes=1 * MIB,
                         remote_bytes=16 * MIB, backend=backend_spec,
                         repair="resilver_period=200,resilver_batch=16")
    service = build_kv_service(system, n_keys=24, value_bytes=96,
                               lease_us=LEASE_US, seed=11)
    return system, service


def value_for(rng):
    return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 96)))


def drive(rng, service, shadow, steps):
    """A GET/SET/DEL burst; the shadow tracks only *acknowledged* state,
    and any successful GET must match it byte-for-byte."""
    for _ in range(steps):
        key = b"kv:%d" % rng.randrange(service.n_keys)
        roll = rng.random()
        if roll < 0.5:
            value = value_for(rng)
            if service.handle(Request("set", key=key, value=value)).ok:
                shadow[key] = value
        elif roll < 0.6:
            response = service.handle(Request("del", key=key))
            if response.ok and response.value is True:
                shadow.pop(key, None)
        else:
            response = service.handle(Request("get", key=key))
            if response.ok:
                assert response.value == shadow[key], \
                    f"acked GET of {key!r} returned bytes never acked"


def resilver_to_promotion(system, backend):
    guard = 0
    while backend.degraded:
        system.clock.advance(1000)
        guard += 1
        assert guard < 5000, "resilver never converged"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend_spec=st.sampled_from(["replicated:3", "replicated:4",
                                     "parity:2+1", "parity:3+1"]),
       kill_point=st.floats(min_value=0.2, max_value=0.7))
def test_kill_failover_rejoin_resilver_loses_nothing(
        seed, backend_spec, kill_point):
    system, service = build(backend_spec)
    backend = service.backend
    rng = random.Random(seed)
    shadow = {key: None for key in ()}
    # Seed the shadow with the factory's population (all acked SETs).
    population = random.Random(11)
    from repro.apps.kvstore import _value
    for i in range(service.n_keys):
        shadow[b"kv:%d" % i] = _value(population, service.value_bytes)

    steps = 300
    crash_step = int(steps * kill_point)
    drive(rng, service, shadow, crash_step)
    victim_member = service._primary
    assert victim_member is not None
    victim = backend.member_nodes()[victim_member]
    victim.fail()
    # Mid-blackout traffic: everything must be cleanly rejected or,
    # after the lease lapses, served by the failover primary.
    drive(rng, service, shadow, 30)
    system.clock.advance(2 * LEASE_US)
    drive(rng, service, shadow, steps - crash_step)
    assert service._primary is not None
    assert service._primary != victim_member
    assert backend.registry.value("kv.failovers") >= 1

    assert backend.rejoin(victim) is False  # async resilver
    drive(rng, service, shadow, 50)  # keep writing while it syncs
    resilver_to_promotion(system, backend)
    assert backend.stale_slots == 0

    # The end-of-run audit: every acknowledged write, straight off the
    # backend, byte-exact — and the canonical counter reads 0.
    assert service.verify() == 0
    assert backend.registry.value("kv.lost_updates") == 0
    for key, value in sorted(shadow.items()):
        response = service.handle(Request("get", key=key))
        assert response.ok and response.value == value, \
            f"{backend_spec}: {key!r} lost after failover+resilver"
    assert backend.registry.value("kv.lost_updates") == 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend_spec=st.sampled_from(["replicated:3", "parity:2+1"]))
def test_chaos_wire_never_surfaces_unacked_writes(seed, backend_spec):
    """With a lossy, corrupting replication wire the service may reject
    requests (transport give-up) but a rejected SET must leave the old
    record intact and an acked one must be durable — the no-partial-
    effect contract end to end."""
    system = make_system("dilos-stride", local_bytes=1 * MIB,
                         remote_bytes=16 * MIB, backend=backend_spec,
                         repair="resilver_period=200,resilver_batch=16")
    service = build_kv_service(
        system, n_keys=16, value_bytes=80, lease_us=LEASE_US, seed=seed,
        net_faults=f"drop=0.02,corrupt=0.01,seed={seed}")
    rng = random.Random(seed)
    shadow = {}
    population = random.Random(seed)
    from repro.apps.kvstore import _value
    for i in range(service.n_keys):
        shadow[b"kv:%d" % i] = _value(population, service.value_bytes)
    drive(rng, service, shadow, 250)
    assert service.verify() == 0
    assert service.backend.registry.value("kv.lost_updates") == 0
