"""Unit tests for the experiment harness and report formatting."""

import pytest

from repro.common.units import MIB
from repro.baselines.aifm import AifmRuntime
from repro.baselines.fastswap import FastswapSystem
from repro.core import DilosSystem
from repro.harness import (
    Measurement,
    format_table,
    local_bytes_for,
    make_system,
    ratio_table,
    sweep_ratios,
)
from repro.harness.experiment import pick


class TestFactories:
    def test_all_kinds_boot(self):
        assert isinstance(make_system("fastswap", 2 * MIB), FastswapSystem)
        assert isinstance(make_system("dilos-none", 2 * MIB), DilosSystem)
        assert isinstance(make_system("dilos-trend", 2 * MIB), DilosSystem)
        assert isinstance(make_system("aifm", 2 * MIB), AifmRuntime)

    def test_dilos_flavors(self):
        assert make_system("dilos-readahead", 2 * MIB).config.prefetcher == \
            "readahead"
        tcp = make_system("dilos-tcp", 2 * MIB)
        assert tcp.config.tcp_emulation
        assert tcp.name == "DiLOS-TCP"
        assert make_system("aifm-rdma", 2 * MIB).config.transport == "rdma"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_system("linux", 2 * MIB)

    def test_local_bytes_scaling(self):
        assert local_bytes_for(100 * MIB, 0.125) == int(12.5 * MIB)
        # 100% gets watermark headroom.
        assert local_bytes_for(100 * MIB, 1.0) > 100 * MIB
        # Tiny footprints hit the floor.
        assert local_bytes_for(100, 0.125) >= 64 * 1024

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            local_bytes_for(MIB, 0.0)


class TestSweep:
    def test_grid_covered(self):
        runs = []

        def runner(kind, ratio):
            runs.append((kind, ratio))
            return Measurement("", "", 0.0, value=1.0, unit="x")

        out = sweep_ratios("wl", runner, ["fastswap", "dilos-none"],
                           ratios=[0.5, 1.0])
        assert len(out) == 4
        assert ("fastswap", 0.5) in runs
        assert out[0].workload == "wl"

    def test_pick(self):
        ms = [Measurement("a", "w", 0.5, 1.0, "x"),
              Measurement("a", "w", 1.0, 2.0, "x")]
        assert pick(ms, "a", 1.0).value == 2.0
        with pytest.raises(LookupError):
            pick(ms, "b")


class TestReport:
    def test_format_table_aligns(self):
        out = format_table("Title", ["sys", "val"],
                           [["fastswap", 1.234], ["dilos", 10.5]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "fastswap" in out
        assert "1.23" in out
        assert "10.5" in out

    def test_ratio_table_layout(self):
        ms = [Measurement("fastswap", "w", 0.125, 1.0, "GB/s"),
              Measurement("fastswap", "w", 1.0, 2.0, "GB/s"),
              Measurement("dilos-none", "w", 0.125, 3.0, "GB/s"),
              Measurement("dilos-none", "w", 1.0, 4.0, "GB/s")]
        out = ratio_table("Seq read", ms)
        assert "12.5%" in out
        assert "100%" in out
        assert "GB/s" in out
        # Missing cells render as '-'.
        ms.append(Measurement("aifm", "w", 1.0, 9.0, "GB/s"))
        out = ratio_table("Seq read", ms)
        assert "-" in out
