"""Tests for trace record/replay and result persistence."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.harness import Measurement, make_system
from repro.harness.results import load_csv, load_json, save_csv, save_json
from repro.harness.trace import Trace, TraceEvent, TraceRecorder


def record_sequential(ws_mib=2):
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=32 * MIB))
    recorder = TraceRecorder(system)
    region = system.mmap(ws_mib * MIB, name="traced")
    pages = region.size // PAGE_SIZE
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE, b"w" * 64)
        system.cpu(0.5)
    for i in range(pages):
        system.memory.read(region.base + i * PAGE_SIZE, 64)
    return recorder.finish(), pages


class TestRecording:
    def test_captures_all_accesses(self):
        trace, pages = record_sequential()
        assert len(trace) == 2 * pages
        assert trace.bytes_accessed == 2 * pages * 64
        assert trace.events[0].op == "write"
        assert trace.events[-1].op == "read"

    def test_gaps_reflect_compute(self):
        trace, pages = record_sequential()
        write_gaps = [e.gap_us for e in trace.events[1:pages]]
        # Each write was preceded by 0.5 us of compute (plus fault time
        # excluded, since gaps measure time *between* accesses).
        assert all(g >= 0.5 for g in write_gaps)

    def test_recorder_detaches(self):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=32 * MIB))
        recorder = TraceRecorder(system)
        region = system.mmap(1 * MIB)
        system.memory.write(region.base, b"x")
        trace = recorder.finish()
        system.memory.write(region.base, b"y")  # not recorded
        assert len(trace) == 1

    def test_regions_recorded(self):
        trace, _ = record_sequential(ws_mib=3)
        assert trace.regions == [(3 * MIB, True, "traced")]


class TestReplay:
    def test_replay_reproduces_fault_behaviour(self):
        trace, pages = record_sequential()
        replay_system = make_system("dilos-readahead", 1 * MIB)
        metrics = trace.replay(replay_system)
        # Same layout + same accesses => same first-touch count; majors
        # appear because the read pass follows eviction, as originally.
        assert metrics["first_touch_faults"] == pages
        assert metrics["major_faults"] > 0
        assert metrics["replay_us"] > 0

    def test_replay_is_deterministic(self):
        trace, _ = record_sequential()
        a = trace.replay(make_system("fastswap", 1 * MIB))
        b = trace.replay(make_system("fastswap", 1 * MIB))
        for key in ("major_faults", "minor_faults", "replay_us"):
            assert a[key] == b[key]

    def test_cross_kernel_comparison(self):
        """The tool's purpose: same trace, different kernels."""
        trace, _ = record_sequential()
        dilos = trace.replay(make_system("dilos-readahead", 1 * MIB))
        fast = trace.replay(make_system("fastswap", 1 * MIB))
        assert dilos["replay_us"] < fast["replay_us"]

    def test_bad_op_rejected(self):
        trace = Trace([(PAGE_SIZE, True, "r")],
                      [TraceEvent("jump", 0x10000000, 8, 0.0)])
        with pytest.raises(ValueError):
            trace.replay(make_system("dilos-none", 1 * MIB))


class TestTracePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace, _ = record_sequential()
        path = tmp_path / "seq.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.regions == trace.regions
        assert loaded.events == trace.events

    def test_loaded_trace_replays(self, tmp_path):
        trace, _ = record_sequential()
        path = tmp_path / "seq.trace"
        trace.save(path)
        metrics = Trace.load(path).replay(make_system("dilos-none", 1 * MIB))
        assert metrics["major_faults"] > 0


class TestResultsPersistence:
    @staticmethod
    def sample():
        return [Measurement("fastswap", "seq", 0.125, 0.98, "GB/s",
                            extra={"note": "paper"}),
                Measurement("dilos-readahead", "seq", 0.125, 3.74, "GB/s")]

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "results.json"
        save_json(self.sample(), path)
        loaded = load_json(path)
        assert loaded == self.sample()

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "results.csv"
        save_csv(self.sample(), path)
        loaded = load_csv(path)
        assert loaded[0].system == "fastswap"
        assert loaded[1].value == pytest.approx(3.74)
        assert loaded[0].ratio == pytest.approx(0.125)
