"""Unit tests for the paged array/byte views."""

import numpy as np
import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.apps.views import PagedArray, PagedBytes


@pytest.fixture()
def system():
    return DilosSystem(DilosConfig(local_mem_bytes=2 * MIB,
                                   remote_mem_bytes=64 * MIB))


class TestPagedArray:
    def test_store_load_roundtrip(self, system):
        arr = PagedArray(system, 1000, np.int64)
        values = np.arange(1000, dtype=np.int64)
        arr.store(0, values)
        assert np.array_equal(arr.load(0, 1000), values)

    def test_partial_windows(self, system):
        arr = PagedArray(system, 100, np.float64)
        arr.store(10, np.full(5, 2.5))
        assert np.array_equal(arr.load(10, 15), np.full(5, 2.5))
        assert np.array_equal(arr.load(0, 5), np.zeros(5))

    def test_get_set(self, system):
        arr = PagedArray(system, 10, np.int64)
        arr.set(3, 42)
        assert arr.get(3) == 42

    def test_bounds(self, system):
        arr = PagedArray(system, 10, np.int64)
        with pytest.raises(IndexError):
            arr.load(5, 11)
        with pytest.raises(IndexError):
            arr.store(9, np.zeros(2, dtype=np.int64))

    def test_chunks_cover_exactly(self, system):
        arr = PagedArray(system, 1000, np.int64)
        windows = list(arr.chunks(300))
        assert windows == [(0, 300), (300, 600), (600, 900), (900, 1000)]

    def test_dtype_sizes(self, system):
        arr = PagedArray(system, 8, np.float32)
        assert arr.nbytes == 32
        arr.store(0, np.arange(8, dtype=np.float32))
        assert arr.load(0, 8)[7] == pytest.approx(7.0)

    def test_survives_eviction(self, system):
        arr = PagedArray(system, 1 * MIB // 8, np.int64)  # 4x local memory
        values = np.arange(arr.count, dtype=np.int64)
        for start, stop in arr.chunks():
            arr.store(start, values[start:stop])
        spill = PagedArray(system, 1 * MIB // 8, np.int64, name="spill")
        for start, stop in spill.chunks():
            spill.store(start, values[start:stop])
        for start, stop in arr.chunks():
            assert np.array_equal(arr.load(start, stop), values[start:stop])


class TestPagedBytes:
    def test_roundtrip(self, system):
        buf = PagedBytes(system, 3 * PAGE_SIZE)
        buf.write(PAGE_SIZE - 2, b"span")
        assert buf.read(PAGE_SIZE - 2, 4) == b"span"

    def test_bounds(self, system):
        buf = PagedBytes(system, 100)
        with pytest.raises(IndexError):
            buf.read(90, 20)
        with pytest.raises(IndexError):
            buf.write(99, b"ab")

    def test_chunks(self, system):
        buf = PagedBytes(system, 100_000)
        spans = list(buf.chunks(65536))
        assert spans == [(0, 65536), (65536, 100_000)]
