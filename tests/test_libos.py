"""Tests for the assembled LibOS facade (§5 compatibility layer)."""

import pytest

from repro.common.units import MIB
from repro.core import DilosConfig
from repro.core.libos import LibOS


def make_libos(local_mib=1, **kwargs):
    return LibOS(DilosConfig(local_mem_bytes=int(local_mib * MIB),
                             remote_mem_bytes=64 * MIB, **kwargs),
                 arena_bytes=32 * MIB)


class TestDdcApi:
    def test_malloc_free_roundtrip(self):
        libos = make_libos()
        va = libos.ddc_malloc(1024)
        libos.memory.write(va, b"ddc bytes")
        assert libos.memory.read(va, 9) == b"ddc bytes"
        libos.ddc_free(va)

    def test_allocations_page_out_and_back(self):
        libos = make_libos(local_mib=1)
        vas = [libos.ddc_malloc(4096) for _ in range(1024)]  # 4 MiB
        for i, va in enumerate(vas):
            libos.memory.write(va, bytes([i % 251]) * 64)
        libos.clock.advance(5000)
        assert libos.metrics()["pages_evicted"] > 0
        for i, va in enumerate(vas):
            assert libos.memory.read(va, 64) == bytes([i % 251]) * 64

    def test_metrics_include_heap(self):
        libos = make_libos()
        libos.ddc_malloc(100)
        metrics = libos.metrics()
        assert metrics["heap_live_allocations"] == 1
        assert metrics["heap_allocated_bytes"] == 100


class TestBinaryCompat:
    def test_unmodified_binary_runs_on_far_memory(self):
        """The headline compatibility flow: a 'binary' that only knows
        malloc/free/memcpy-by-address runs with its heap disaggregated."""
        libos = make_libos(local_mib=1)

        def app_main(binary, memory):
            nodes = []
            for i in range(3000):  # ~ 3000 * 1 KiB: 3x local memory
                va = binary.call("malloc", 1024)
                memory.write(va, i.to_bytes(4, "little") * 4)
                nodes.append((va, i))
            errors = 0
            for va, i in nodes:
                if memory.read(va, 16) != i.to_bytes(4, "little") * 4:
                    errors += 1
            for va, _ in nodes:
                binary.call("free", va)
            return errors

        binary = libos.load({
            "malloc": lambda size: pytest.fail("libc malloc leaked through"),
            "free": lambda va: pytest.fail("libc free leaked through"),
        })
        assert app_main(binary, libos.memory) == 0
        assert libos.metrics()["patched_symbols"] == 2
        assert libos.metrics()["heap_live_allocations"] == 0

    def test_hooking_through_facade(self):
        libos = make_libos()
        binary = libos.load({"step": lambda x: x + 1})
        seen = []
        libos.hook(binary, "step",
                   lambda orig: (lambda x: (seen.append(x), orig(x))[1]))
        assert binary.call("step", 41) == 42
        assert seen == [41]


class TestGuidesThroughFacade:
    def test_enable_guided_paging(self):
        libos = make_libos(local_mib=0.5)
        libos.enable_guided_paging()
        vas = [libos.ddc_malloc(128) for _ in range(8000)]
        for va in vas:
            libos.memory.write(va, b"g" * 128)
        for va in vas[::2]:
            libos.ddc_free(va)
        libos.clock.advance(8000)
        for va in vas[1::2]:
            assert libos.memory.read(va, 128) == b"g" * 128
        assert libos.system.kernel.counters.get("action_fetches") > 0

    def test_attach_prefetch_guide(self):
        from repro.core.guides import GuideContext, PrefetchGuide

        class CountingGuide(PrefetchGuide):
            def __init__(self):
                self.faults = 0

            def on_fault(self, ctx: GuideContext, va: int) -> bool:
                self.faults += 1
                return False  # fall through to the default prefetcher

        libos = make_libos(local_mib=0.5)
        guide = CountingGuide()
        libos.attach_prefetch_guide(guide)
        vas = [libos.ddc_malloc(4096) for _ in range(512)]
        for va in vas:
            libos.memory.write(va, b"x")
        libos.clock.advance(5000)
        for va in vas:
            libos.memory.read(va, 1)
        assert guide.faults > 0
