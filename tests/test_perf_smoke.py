"""Tier-1 smoke coverage for the wall-clock perf suite.

Runs the ``benchmarks/perf`` harness in 1-iteration mode over its two
cheapest kernels so harness bitrot (an import break, a renamed metric, a
kernel that stopped being deterministic) surfaces in the default test
tier without paying full benchmark wall-clock, and validates the
``BENCH_perf.json`` schema the perf trajectory depends on.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import perf

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Every benchmark row must carry at least these keys.
ROW_KEYS = {"name", "wall_us", "sim_us", "ops", "checksum"}

#: Cheapest kernels — enough to prove the harness end to end.
SMOKE_CASES = ["seqread_dilos", "quicksort_dilos"]


def test_case_registry_is_well_formed():
    names = [case.name for case in perf.CASES]
    assert len(names) == len(set(names)), "duplicate benchmark names"
    assert len(names) >= 6, "acceptance floor: at least 6 hot-path benchmarks"
    headliners = [case.name for case in perf.CASES if case.headline]
    assert headliners == ["seqread_dilos"]
    for name in SMOKE_CASES:
        assert perf.case_by_name(name).name == name


def test_run_case_smoke_is_deterministic():
    case = perf.case_by_name("seqread_dilos")
    first = perf.run_case(case, iterations=1)
    second = perf.run_case(case, iterations=1)
    assert first.checksum == second.checksum
    assert first.sim_us == second.sim_us
    assert first.ops == second.ops > 0
    assert first.wall_us > 0


def test_perf_main_smoke_writes_schema_valid_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    # Point at an absent baseline: tier-1 validates the harness and the
    # report schema; wall-clock gating against the committed reference
    # belongs to `python -m repro perf` runs, not to (noisy, shared) test
    # hosts. The gate logic itself is covered below.
    rc = perf.main(["--smoke", "--out", str(out),
                    "--baseline", str(tmp_path / "absent.json"),
                    "--only", *SMOKE_CASES])
    assert rc == 0, "smoke run with no reference cannot regress"
    report = json.loads(out.read_text())
    assert report["schema"] == perf.SCHEMA
    assert report["suite"] == "benchmarks/perf"
    assert report["iterations"] == 1
    rows = report["benchmarks"]
    assert [row["name"] for row in rows] == SMOKE_CASES
    for row in rows:
        assert ROW_KEYS <= set(row), f"missing keys in {row}"
        assert row["wall_us"] > 0
        assert row["sim_us"] > 0
        assert row["ops"] > 0
        assert len(row["checksum"]) == 64
        int(row["checksum"], 16)  # hex digest
        if "reference_wall_us" in row:
            assert isinstance(row["regressed"], bool)


def test_perf_main_exits_nonzero_on_regression(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "schema": perf.BASELINE_SCHEMA,
        "pre_pr": {},
        # An impossible reference: any real run regresses past it.
        "reference": {"quicksort_dilos": 0.001},
        "tolerance": 1.0,
    }))
    rc = perf.main(["--smoke", "--out", str(out),
                    "--baseline", str(baseline),
                    "--only", "quicksort_dilos"])
    assert rc == 1
    report = json.loads(out.read_text())
    assert report["benchmarks"][0]["regressed"] is True


def test_committed_baseline_is_loadable():
    baseline = perf.load_baseline(perf.DEFAULT_BASELINE)
    assert baseline["schema"] == perf.BASELINE_SCHEMA
    assert set(baseline["pre_pr"]) == {case.name for case in perf.CASES}
    assert baseline["tolerance"] >= 1.0


def test_committed_bench_report_claims_headline_speedup():
    """The acceptance contract: the committed BENCH_perf.json carries the
    headline seq-read speedup over the pre-PR baseline."""
    path = REPO_ROOT / "BENCH_perf.json"
    if not path.exists():
        pytest.skip("BENCH_perf.json not generated yet")
    report = json.loads(path.read_text())
    assert report["schema"] == perf.SCHEMA
    assert len(report["benchmarks"]) >= 6
    by_name = {row["name"]: row for row in report["benchmarks"]}
    headline = by_name["seqread_dilos"]
    assert headline["speedup_vs_baseline"] >= 1.5, (
        "headline seq-read speedup claim regressed: "
        f"{headline['speedup_vs_baseline']}x")


#: App-level benchmarks (whole workloads through the batch engine, not
#: raw access-loop microbenchmarks).
APP_LEVEL_CASES = {"quicksort_dilos", "seqscan_aifm", "redis_get_dilos",
                   "redis_get_fastswap", "kmeans_dilos", "dataframe_dilos"}


def test_app_level_cases_covered_by_baseline():
    """Schema coverage for the app-level entries: every one is a
    registered case and carries both a frozen pre-PR wall time and a
    rolling reference in the committed baseline."""
    names = {case.name for case in perf.CASES}
    assert APP_LEVEL_CASES <= names
    baseline = perf.load_baseline(perf.DEFAULT_BASELINE)
    assert APP_LEVEL_CASES <= set(baseline["pre_pr"])
    assert APP_LEVEL_CASES <= set(baseline["reference"])


def test_injected_slowdown_in_batch_benchmark_fires_gate(
        tmp_path, monkeypatch):
    """Red-green for the regression gate on a batch-engine benchmark:
    the same reference passes an honest run (green) and catches an
    injected slowdown (red)."""
    import time as _time

    case = perf.case_by_name("kmeans_dilos")
    honest = perf.run_case(case, iterations=1)

    baseline = tmp_path / "baseline.json"
    # Reference far above the honest measurement so a noisy host cannot
    # turn the green half red; the injected sleep then overshoots it.
    reference_us = honest.wall_us * 10
    baseline.write_text(json.dumps({
        "schema": perf.BASELINE_SCHEMA,
        "pre_pr": {"kmeans_dilos": round(honest.wall_us, 1)},
        "reference": {"kmeans_dilos": round(reference_us, 1)},
        "tolerance": 1.5,
    }))
    args = ["--smoke", "--out", str(tmp_path / "BENCH_perf.json"),
            "--baseline", str(baseline), "--only", "kmeans_dilos"]

    assert perf.main(args) == 0, "honest run must pass the gate"

    slow_s = reference_us * 1.5 * 2 / 1e6
    orig_fn = case.fn

    def slowed():
        _time.sleep(slow_s)
        return orig_fn()

    monkeypatch.setattr(case, "fn", slowed)
    assert perf.main(args) == 1, "injected slowdown must trip the gate"
    report = json.loads((tmp_path / "BENCH_perf.json").read_text())
    row = report["benchmarks"][0]
    assert row["name"] == "kmeans_dilos"
    assert row["regressed"] is True


def test_committed_bench_report_claims_app_level_speedups():
    """Acceptance contract: at least two app-level benchmarks beat the
    frozen pre-PR baseline by >= 10x in the committed report."""
    path = REPO_ROOT / "BENCH_perf.json"
    if not path.exists():
        pytest.skip("BENCH_perf.json not generated yet")
    report = json.loads(path.read_text())
    by_name = {row["name"]: row for row in report["benchmarks"]}
    tenfold = [name for name in APP_LEVEL_CASES
               if by_name.get(name, {}).get("speedup_vs_baseline", 0) >= 10]
    assert len(tenfold) >= 2, (
        "fewer than two app-level benchmarks hold a 10x speedup over "
        f"the pre-PR baseline: {sorted(tenfold)}")


@pytest.mark.slow
def test_cli_perf_subcommand_smoke(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "perf", "--smoke",
         "--out", str(out), "--only", "quicksort_dilos",
         # Absent baseline: a 1-iteration run on a loaded CI host must
         # never trip the wall-clock gate from inside tier-1.
         "--baseline", str(tmp_path / "absent.json")],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    assert out.exists()
