"""Unit tests for guide plumbing: range coalescing and subpage fetches."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem, coalesce_ranges


class TestCoalesce:
    def test_empty(self):
        assert coalesce_ranges([], 3) == []

    def test_single(self):
        assert coalesce_ranges([(0, 16)], 3) == [(0, 16)]

    def test_under_limit_untouched(self):
        ranges = [(0, 16), (100, 16), (200, 16)]
        assert coalesce_ranges(ranges, 3) == ranges

    def test_adjacent_merged(self):
        assert coalesce_ranges([(0, 16), (16, 16)], 3) == [(0, 32)]

    def test_overlapping_merged(self):
        assert coalesce_ranges([(0, 32), (16, 32)], 3) == [(0, 48)]

    def test_unsorted_input(self):
        assert coalesce_ranges([(100, 16), (0, 16)], 3) == [(0, 16), (100, 16)]

    def test_merges_smallest_gap_first(self):
        ranges = [(0, 16), (32, 16), (1000, 16), (2000, 16)]
        out = coalesce_ranges(ranges, 3)
        assert out == [(0, 48), (1000, 16), (2000, 16)]

    def test_covers_all_live_bytes(self):
        ranges = [(0, 16), (500, 16), (1000, 16), (2000, 16), (3000, 96)]
        out = coalesce_ranges(ranges, 3)
        assert len(out) == 3
        for start, length in ranges:
            assert any(s <= start and start + length <= s + l
                       for s, l in out), "live byte not covered"

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            coalesce_ranges([(0, 0)], 3)
        with pytest.raises(ValueError):
            coalesce_ranges([(4090, 100)], 3)
        with pytest.raises(ValueError):
            coalesce_ranges([(0, 16)], 0)


class TestSubpageFetch:
    def make(self):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=64 * MIB))
        region = system.mmap(4 * MIB, name="data")
        return system, region

    def test_local_page_immediate(self):
        system, region = self.make()
        system.memory.write(region.base, b"local-bytes")
        got = []
        ok = system.kernel.guide_subpage_fetch(region.base, 11, got.append)
        assert ok
        assert got == [b"local-bytes"]

    def test_remote_page_arrives_earlier_than_full_fetch(self):
        system, region = self.make()
        # Populate 512 pages (>256 frames) to force eviction of the head.
        for i in range(512):
            system.memory.write(region.base + i * PAGE_SIZE, b"\x42" * 64)
        system.clock.advance(500)  # let the manager clean and evict
        got = []
        ok = system.kernel.guide_subpage_fetch(region.base, 64, got.append)
        assert ok
        assert got == []  # async: not yet arrived
        t0 = system.clock.now
        model = system.model
        system.clock.advance(model.rdma_read_latency(64) + 1.0)
        assert got == [b"\x42" * 64]
        # Arrived well inside a 4 KiB fetch window.
        assert (model.rdma_read_latency(PAGE_SIZE)
                - model.rdma_read_latency(64)) > 0.4

    def test_unmapped_page_unreachable(self):
        system, _region = self.make()
        assert not system.kernel.guide_subpage_fetch(0x10, 8, lambda d: None)

    def test_cross_page_subpage(self):
        system, region = self.make()
        va = region.base + PAGE_SIZE - 4
        system.memory.write(va, b"ABCDEFGH")  # spans two pages
        for i in range(512):
            system.memory.write(region.base + i * PAGE_SIZE, b"\x42" * 64)
        system.memory.write(va, b"ABCDEFGH")
        got = []
        assert system.kernel.guide_subpage_fetch(va, 8, got.append)
        system.clock.advance(10)
        assert got == [b"ABCDEFGH"]

    def test_bad_size_rejected(self):
        system, region = self.make()
        with pytest.raises(ValueError):
            system.kernel.guide_subpage_fetch(region.base, 0, lambda d: None)


class TestPeekLocal:
    def test_peek_resident(self):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=16 * MIB))
        region = system.mmap(1 * MIB)
        system.memory.write(region.base, b"xyz")
        assert system.kernel.peek_local(region.base, 3) == b"xyz"

    def test_peek_nonresident_none(self):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=16 * MIB))
        region = system.mmap(1 * MIB)
        assert system.kernel.peek_local(region.base, 3) is None
