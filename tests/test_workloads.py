"""Integration tests for the §6.2 workloads: correctness of results and
the paper's qualitative performance orderings at small scale."""

import numpy as np
import pytest

from repro.common.units import MIB
from repro.harness import local_bytes_for, make_system
from repro.apps.seqrw import SequentialWorkload
from repro.apps.quicksort import QuicksortWorkload
from repro.apps.kmeans import KMeansWorkload
from repro.apps.snappy import (
    SnappyWorkload,
    compress_block,
    decompress_block,
    generate_loglike,
)
from repro.apps.dataframe import TaxiAnalyticsWorkload, generate_taxi
from repro.apps.gapbs import (
    BetweennessWorkload,
    CsrGraph,
    PageRankWorkload,
    generate_power_law_graph,
)


def boot(kind, workload, ratio):
    return make_system(kind, local_bytes_for(workload.footprint_bytes, ratio))


class TestSequential:
    def test_read_verifies(self):
        wl = SequentialWorkload(4 * MIB)
        result = wl.run(boot("dilos-readahead", wl, 0.125), "read", verify=True)
        assert result.gb_per_s > 0.5

    def test_bad_mode_rejected(self):
        wl = SequentialWorkload(1 * MIB)
        with pytest.raises(ValueError):
            wl.run(boot("dilos-none", wl, 1.0), "flush")


class TestQuicksort:
    def test_sorts_correctly_on_both_systems(self):
        for kind in ("dilos-readahead", "fastswap"):
            wl = QuicksortWorkload(count=1 << 14)
            result = wl.run(boot(kind, wl, 0.25), verify=True)
            assert result.elapsed_us > 0

    def test_sorts_with_duplicates(self):
        wl = QuicksortWorkload(count=1 << 13, seed=5)
        system = boot("dilos-none", wl, 1.0)
        # Force massive duplication by seeding a tiny value range.
        from repro.apps.views import PagedArray
        arr = PagedArray(system, wl.count, np.int64, name="qsort-data")
        scratch = PagedArray(system, wl.count, np.int64, name="qsort-scratch")
        rng = np.random.default_rng(5)
        for start, stop in arr.chunks():
            arr.store(start, rng.integers(0, 3, stop - start, dtype=np.int64))
        wl._quicksort(system, arr, scratch)
        values = arr.load(0, wl.count)
        assert np.array_equal(values, np.sort(values))

    def test_memory_pressure_slows_completion(self):
        wl = QuicksortWorkload(count=1 << 14)
        tight = wl.run(boot("dilos-readahead", wl, 0.125)).elapsed_us
        roomy = wl.run(boot("dilos-readahead", wl, 1.0)).elapsed_us
        assert tight > roomy


class TestKMeans:
    def test_converges_to_real_clusters(self):
        wl = KMeansWorkload(n_points=4096, iterations=6)
        result = wl.run(boot("dilos-readahead", wl, 1.0))
        # Inertia of a converged fit: far below the random-assignment level.
        per_point = result.inertia / wl.n_points
        assert per_point < 3 * wl.dim  # ~unit noise per dimension

    def test_dilos_beats_fastswap_under_pressure(self):
        """The Figure 7(b) headline at 12.5% local memory."""
        times = {}
        for kind in ("fastswap", "dilos-readahead"):
            wl = KMeansWorkload(n_points=1 << 14, iterations=3)
            times[kind] = wl.run(boot(kind, wl, 0.125)).elapsed_us
        assert times["dilos-readahead"] < times["fastswap"]


class TestSnappyCodec:
    def test_roundtrip_loglike(self):
        blob = generate_loglike(50_000, 1)
        assert decompress_block(compress_block(blob)) == blob

    def test_roundtrip_random(self):
        rng = np.random.default_rng(2)
        blob = rng.integers(0, 256, 10_000, dtype=np.uint8).tobytes()
        assert decompress_block(compress_block(blob)) == blob

    def test_roundtrip_pathological(self):
        for blob in [b"", b"a", b"a" * 100_000, b"ab" * 500,
                     bytes(range(256)) * 4]:
            assert decompress_block(compress_block(blob)) == blob

    def test_compresses_runs(self):
        blob = generate_loglike(100_000, 3)
        assert len(compress_block(blob)) < 0.5 * len(blob)

    def test_corrupt_stream_rejected(self):
        with pytest.raises(ValueError):
            decompress_block(b"\x07\x01\x00x")


class TestSnappyWorkload:
    def test_compress_verifies_on_paging(self):
        wl = SnappyWorkload(n_files=2, file_bytes=128 * 1024)
        result = wl.run_compress(boot("dilos-readahead", wl, 0.25), verify=True)
        assert result.output_bytes < result.input_bytes

    def test_decompress_verifies_on_paging(self):
        wl = SnappyWorkload(n_files=2, file_bytes=128 * 1024)
        result = wl.run_decompress(boot("fastswap", wl, 0.25), verify=True)
        assert result.input_bytes == 2 * 128 * 1024

    def test_aifm_ports_verify(self):
        wl = SnappyWorkload(n_files=2, file_bytes=128 * 1024)
        wl.run_compress_aifm(boot("aifm", wl, 0.25), verify=True)
        wl.run_decompress_aifm(boot("aifm", wl, 0.25), verify=True)


class TestDataFrame:
    def test_operators_match_numpy(self):
        system = make_system("dilos-none", 8 * MIB)
        df = generate_taxi(system, rows=5000)
        fares = np.concatenate([df.column("fare").load(s, e)
                                for s, e in df.column("fare").chunks()])
        assert df.mean("fare") == pytest.approx(fares.mean())
        assert df.max("fare") == pytest.approx(fares.max())
        assert df.filter_count("fare", lambda f: f > 10.0) == (fares > 10).sum()

    def test_derive_and_covariance(self):
        system = make_system("dilos-none", 8 * MIB)
        df = generate_taxi(system, rows=4000)
        df.derive("duration", ["dropoff_ts", "pickup_ts"],
                  lambda d, p: d - p, dtype=np.int64)
        durations = df.column("duration").load(0, 4000)
        assert (durations > 0).all()
        cov = df.covariance("trip_distance", "fare")
        assert cov > 0  # fares rise with distance by construction

    def test_aifm_answers_match_paging(self):
        wl = TaxiAnalyticsWorkload(rows=1 << 13)
        paging = wl.run(boot("dilos-readahead", wl, 0.5))
        aifm = wl.run_aifm(boot("aifm", wl, 0.5))
        for key, value in paging.answers.items():
            assert aifm.answers[key] == pytest.approx(value, rel=1e-9), key

    def test_aifm_slower_at_full_memory(self):
        """Figure 8 at 100%: deref checks cost AIFM 50-83%."""
        wl = TaxiAnalyticsWorkload(rows=1 << 13)
        paging = wl.run(boot("dilos-readahead", wl, 1.0)).elapsed_us
        aifm = wl.run_aifm(boot("aifm", wl, 1.0)).elapsed_us
        assert aifm > 1.2 * paging


class TestGapbs:
    @staticmethod
    def small_graph():
        return generate_power_law_graph(n=2048, target_m=20_000, seed=7)

    def test_generator_is_valid_csr(self):
        offsets, edges = self.small_graph()
        assert offsets[0] == 0
        assert offsets[-1] == len(edges)
        assert (np.diff(offsets) >= 0).all()
        assert edges.min() >= 0
        assert edges.max() < 2048

    def test_generator_power_law_tail(self):
        offsets, _ = self.small_graph()
        degrees = np.diff(offsets)
        assert degrees.max() > 20 * np.median(degrees)

    def test_pagerank_deterministic_across_systems(self):
        offsets, edges = self.small_graph()
        tops = set()
        for kind in ("fastswap", "dilos-readahead"):
            system = make_system(kind, 2 * MIB)
            graph = CsrGraph(system, offsets, edges)
            tops.add(PageRankWorkload(iterations=3).run(system, graph).top_vertex)
        assert len(tops) == 1

    def test_pagerank_finds_hub(self):
        offsets, edges = self.small_graph()
        system = make_system("dilos-readahead", 8 * MIB)
        graph = CsrGraph(system, offsets, edges)
        result = PageRankWorkload(iterations=5).run(system, graph)
        # Destinations are Zipf over ids: low ids are the hubs.
        assert result.top_vertex < 20

    def test_bc_matches_networkx(self):
        import networkx as nx
        offsets, edges = generate_power_law_graph(n=120, target_m=400, seed=9)
        system = make_system("dilos-none", 8 * MIB)
        graph = CsrGraph(system, offsets, edges)
        source = 0
        wl = BetweennessWorkload(n_sources=1)
        ours = wl.run(system, graph, sources=[source])
        g = nx.DiGraph()
        g.add_nodes_from(range(120))
        for u in range(120):
            for v in edges[offsets[u]:offsets[u + 1]]:
                g.add_edge(u, int(v))
        # Single-source Brandes equals nx betweenness restricted to s.
        sigma_nx = nx.betweenness_centrality_subset(
            g, sources=[source], targets=list(range(120)), normalized=False)
        # Compare the top vertex rather than raw floats (ties possible).
        top_nx = max(sigma_nx, key=lambda v: sigma_nx[v])
        assert ours.top_vertex == top_nx or \
            sigma_nx[ours.top_vertex] == pytest.approx(sigma_nx[top_nx])

    def test_graph_neighbors_roundtrip(self):
        offsets, edges = self.small_graph()
        system = make_system("dilos-readahead", 1 * MIB)
        graph = CsrGraph(system, offsets, edges)
        for u in (0, 100, 2047):
            expect = edges[offsets[u]:offsets[u + 1]]
            assert np.array_equal(graph.neighbors(u), expect)

    def test_scan_vertices_covers_all_edges(self):
        offsets, edges = self.small_graph()
        system = make_system("dilos-readahead", 8 * MIB)
        graph = CsrGraph(system, offsets, edges)
        seen = 0
        for _u, neighbors in graph.scan_vertices():
            seen += len(neighbors)
        assert seen == len(edges)


class TestBfs:
    def test_reaches_what_networkx_reaches(self):
        import networkx as nx
        from repro.apps.gapbs import BfsWorkload
        offsets, edges = generate_power_law_graph(n=300, target_m=1500,
                                                  seed=4)
        system = make_system("dilos-readahead", 2 * MIB)
        graph = CsrGraph(system, offsets, edges)
        result = BfsWorkload(source=0).run(system, graph)
        g = nx.DiGraph()
        g.add_nodes_from(range(300))
        for u in range(300):
            for v in edges[offsets[u]:offsets[u + 1]]:
                g.add_edge(u, int(v))
        lengths = nx.single_source_shortest_path_length(g, 0)
        assert result.reached == len(lengths)
        assert result.max_depth == max(lengths.values())

    def test_bfs_under_memory_pressure(self):
        from repro.apps.gapbs import BfsWorkload
        offsets, edges = generate_power_law_graph(n=4096, target_m=50_000)
        footprint = (len(offsets) + len(edges)) * 8
        baseline = None
        for kind in ("fastswap", "dilos-readahead"):
            system = make_system(kind, local_bytes_for(footprint, 0.125))
            graph = CsrGraph(system, offsets, edges)
            result = BfsWorkload(source=0).run(system, graph)
            if baseline is None:
                baseline = result.reached
            assert result.reached == baseline  # kernels agree


class TestConnectedComponents:
    def test_matches_networkx_weakly_connected(self):
        import networkx as nx
        from repro.apps.gapbs import ConnectedComponentsWorkload
        offsets, edges = generate_power_law_graph(n=200, target_m=800,
                                                  seed=11)
        system = make_system("dilos-readahead", 4 * MIB)
        graph = CsrGraph(system, offsets, edges)
        result = ConnectedComponentsWorkload().run(system, graph)
        g = nx.Graph()
        g.add_nodes_from(range(200))
        for u in range(200):
            for v in edges[offsets[u]:offsets[u + 1]]:
                g.add_edge(u, int(v))
        assert result.components == nx.number_connected_components(g)

    def test_converges_and_is_deterministic(self):
        from repro.apps.gapbs import ConnectedComponentsWorkload
        offsets, edges = generate_power_law_graph(n=2048, target_m=10_000)
        counts = set()
        for kind in ("fastswap", "dilos-none"):
            system = make_system(kind, 2 * MIB)
            graph = CsrGraph(system, offsets, edges)
            result = ConnectedComponentsWorkload().run(system, graph)
            assert result.iterations < 64  # converged, not capped
            counts.add(result.components)
        assert len(counts) == 1
