"""Differential suite: batch execution vs scalar, byte-exact.

The vectorized batch engine (:mod:`repro.mem.batch`) promises that
splitting an access run into TLB-hit spans and executing each span as a
single numpy gather/scatter changes *nothing observable in the
simulation*: every byte returned, the simulated clock, every counter,
the TLB's LRU order, and the canonical metrics digest must all match the
scalar per-page loops exactly. This suite checks that promise three
ways:

* a Hypothesis property over twin ``VirtualMemory`` stacks (tiny TLB,
  tiny frame pool, a FIFO-evicting pager) driving one through the batch
  APIs (``read_batch``/``write_batch``/``apply_trace``/``read_into``/
  ``write_from``) and the other through scalar ``read``/``write`` loops,
  with evictions and shootdowns interleaved so batches cross page,
  fault, and span-threshold boundaries;
* booted-kernel differentials for all three kernels (DiLOS, Fastswap,
  AIFM) comparing data, final clock, and metrics digests;
* the same kernel differential under a ``net_faults`` plan, where every
  remote transfer rides the reliable transport's drop/corrupt/delay
  schedule.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MIB, PAGE_SIZE
from repro.harness import make_system
from repro.mem import batch
from repro.mem.vm import VirtualMemory
from repro.net.faults import RetryPolicy
from tests.test_vm_differential import N_PAGES, SimplePager, _build

_SPAN = N_PAGES * PAGE_SIZE
#: Element sizes straddle ``batch.SPAN_THRESHOLD`` (2 pages) so every
#: run exercises both the numpy span path and the scalar fallback.
_MAX_ELEM = 3 * PAGE_SIZE


def _clamp(va: int, size: int) -> int:
    return min(size, _SPAN - va)


_elem = st.tuples(st.integers(0, _SPAN - 1), st.integers(1, _MAX_ELEM))

_op = st.one_of(
    st.tuples(st.just("read_batch"), st.lists(_elem, min_size=1, max_size=4)),
    st.tuples(st.just("write_batch"),
              st.lists(_elem, min_size=1, max_size=4),
              st.integers(0, 255)),
    st.tuples(st.just("trace"),
              st.lists(st.tuples(st.booleans(), _elem), min_size=1,
                       max_size=5),
              st.integers(0, 255)),
    st.tuples(st.just("read_into"), _elem),
    st.tuples(st.just("write_from"), _elem, st.integers(0, 255)),
    st.tuples(st.just("shootdown"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("evict"), st.integers(0, N_PAGES - 1)),
)


def _payload(fill: int, size: int) -> bytes:
    return bytes((fill + i) & 0xFF for i in range(size))


def _apply_batch(op, vm, pager):
    kind = op[0]
    if kind == "read_batch":
        cells = [(va, _clamp(va, size)) for va, size in op[1]]
        return vm.read_batch([c[0] for c in cells], [c[1] for c in cells])
    if kind == "write_batch":
        cells = [(va, _clamp(va, size)) for va, size in op[1]]
        vm.write_batch([c[0] for c in cells],
                       [_payload(op[2], c[1]) for c in cells])
        return None
    if kind == "trace":
        ops = []
        for is_write, (va, size) in op[1]:
            size = _clamp(va, size)
            if is_write:
                ops.append(("w", va, _payload(op[2], size)))
            else:
                ops.append(("r", va, size))
        return vm.apply_trace(ops)
    if kind == "read_into":
        va, size = op[1]
        size = _clamp(va, size)
        out = np.empty(size, dtype=np.uint8)
        vm.read_into(va, out)
        return out.tobytes()
    if kind == "write_from":
        va, size = op[1]
        size = _clamp(va, size)
        vm.write_from(va, np.frombuffer(_payload(op[2], size),
                                        dtype=np.uint8))
        return None
    if kind == "shootdown":
        pager.shootdown(op[1])
        return None
    pager.evict_vpn(op[1])
    return None


def _apply_scalar(op, vm, pager):
    kind = op[0]
    if kind == "read_batch":
        return [vm.read(va, _clamp(va, size)) for va, size in op[1]]
    if kind == "write_batch":
        for va, size in op[1]:
            vm.write(va, _payload(op[2], _clamp(va, size)))
        return None
    if kind == "trace":
        results = []
        for is_write, (va, size) in op[1]:
            size = _clamp(va, size)
            if is_write:
                vm.write(va, _payload(op[2], size))
                results.append(None)
            else:
                results.append(vm.read(va, size))
        return results
    if kind == "read_into":
        va, size = op[1]
        return vm.read(va, _clamp(va, size))
    if kind == "write_from":
        va, size = op[1]
        size = _clamp(va, size)
        vm.write(va, _payload(op[2], size))
        return None
    if kind == "shootdown":
        pager.shootdown(op[1])
        return None
    pager.evict_vpn(op[1])
    return None


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=40))
def test_batch_vm_matches_scalar_vm(ops):
    """Twin VM stacks: batch APIs vs scalar loops, exact equality on
    bytes, clock, TLB state (including LRU order), counters, and page
    contents — with faults, evictions, and shootdowns interleaved."""
    b_vm, b_pager, b_clock = _build(VirtualMemory)
    s_vm, s_pager, s_clock = _build(VirtualMemory)

    for op in ops:
        got = _apply_batch(op, b_vm, b_pager)
        want = _apply_scalar(op, s_vm, s_pager)
        assert got == want, f"returned bytes diverged on {op}"
        assert b_clock.now == s_clock.now, f"clock diverged on {op}"

    assert b_pager.faults == s_pager.faults
    assert b_vm.tlb.hits == s_vm.tlb.hits
    assert b_vm.tlb.misses == s_vm.tlb.misses
    assert list(b_vm.tlb.entries) == list(s_vm.tlb.entries)
    assert b_vm.counters.as_dict() == s_vm.counters.as_dict()
    for vpn in range(N_PAGES):
        assert b_pager.page_bytes(vpn) == s_pager.page_bytes(vpn), (
            f"page {vpn} contents diverged")
        assert b_vm._pt.get(vpn) == s_vm._pt.get(vpn), f"PTE {vpn} diverged"


# -- booted kernels ----------------------------------------------------------

_REGION = 1 * MIB
_LOCAL = 256 * 1024  # a quarter of the region: batches cross real faults

_kernel_op = st.tuples(
    st.booleans(),                        # write?
    st.integers(0, _REGION - 1),
    st.integers(1, _MAX_ELEM),
    st.integers(0, 255),
)


def _run_kernel(kind: str, ops, batched: bool, net_faults=None):
    extra = {}
    if net_faults is not None:
        extra = {"net_faults": net_faults,
                 "net_retry": RetryPolicy(max_attempts=10)}
    system = make_system(kind, _LOCAL, remote_bytes=16 * MIB, **extra)
    region = system.mmap(_REGION, name="batchdiff")
    trace = []
    for is_write, va, size, fill in ops:
        va += region.base
        size = min(size, region.base + _REGION - va)
        if is_write:
            trace.append(("w", va, _payload(fill, size)))
        else:
            trace.append(("r", va, size))
    if batched:
        with batch.force(True):
            results = system.memory.apply_trace(trace)
    else:
        results = []
        with batch.force(False):
            for op in trace:
                if op[0] == "r":
                    results.append(system.memory.read(op[1], op[2]))
                else:
                    system.memory.write(op[1], op[2])
                    results.append(None)
    return results, system.clock.now, system.metrics().digest()


@settings(max_examples=10, deadline=None)
@given(st.lists(_kernel_op, min_size=1, max_size=25),
       st.sampled_from(["dilos-readahead", "fastswap"]))
def test_batch_matches_scalar_on_booted_kernels(ops, kind):
    """Full kernel stacks (fault handler, cleaner, remote backend):
    batch and scalar runs agree on data, clock, and metrics digest."""
    b_data, b_clock, b_digest = _run_kernel(kind, ops, batched=True)
    s_data, s_clock, s_digest = _run_kernel(kind, ops, batched=False)
    assert b_data == s_data, f"{kind}: data diverged"
    assert b_clock == s_clock, f"{kind}: simulated clock diverged"
    assert b_digest == s_digest, f"{kind}: metrics digest diverged"


@settings(max_examples=6, deadline=None)
@given(st.lists(_kernel_op, min_size=1, max_size=15),
       st.sampled_from(["dilos-readahead", "fastswap"]),
       st.integers(0, 2 ** 16))
def test_batch_matches_scalar_under_net_faults(ops, kind, seed):
    """Same differential with every remote transfer riding a faulty
    wire: the reliable transport's retries are part of the accounting
    the batch path must reproduce exactly."""
    plan = f"drop=0.02,corrupt=0.01,delay=0.02,delay_us=10,seed={seed}"
    b = _run_kernel(kind, ops, batched=True, net_faults=plan)
    s = _run_kernel(kind, ops, batched=False, net_faults=plan)
    assert b == s, f"{kind}: batch diverged from scalar under {plan}"


# -- AIFM --------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 511),
                          st.integers(0, 255)),
                min_size=1, max_size=60))
def test_aifm_batch_deref_matches_scalar(ops):
    """AIFM's batched dereference vs per-item get/set on twin runtimes
    sized to force evictions mid-batch."""
    from repro.baselines.aifm.arrays import RemArray

    def run(batched: bool):
        system = make_system("aifm", 64 * 1024, remote_bytes=4 * MIB)
        array = RemArray(system, count=512, item_size=64)
        out = []
        reads = [(i, idx) for i, (w, idx, _f) in enumerate(ops) if not w]
        writes = [(i, idx, _payload(f, 64))
                  for i, (w, idx, f) in enumerate(ops) if w]
        if batched:
            if writes:
                array.set_batch([w[1] for w in writes],
                                [w[2] for w in writes])
            if reads:
                out = array.get_batch([r[1] for r in reads])
        else:
            for _i, idx, data in writes:
                array.set(idx, data)
            out = [array.get(idx) for _i, idx in reads]
        return out, system.clock.now, system.metrics().digest()

    assert run(True) == run(False)
